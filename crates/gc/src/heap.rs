//! The heap: segment-backed storage, bump allocation per space ×
//! generation, roots, guardians' protected lists, and collection entry
//! points.
//!
//! # Safe points
//!
//! Unlike Chez Scheme, which may collect at any allocation, this embedding
//! collects **only** inside explicit [`Heap::collect`] /
//! [`Heap::maybe_collect`] calls. Allocation grows the heap instead. This
//! makes the API sound without a conservative stack scanner: a [`Value`]
//! in a Rust local is safe across any call except the two collection entry
//! points, across which it must be held in a [`Rooted`] cell or reachable
//! from one.

use crate::autotune::{
    AutotuneConfig, AutotuneMode, PolicyController, PolicyDecision, PolicySensors, PolicyUpdate,
};
use crate::collect;
use crate::config::{GcConfig, Promotion};
use crate::error::GcError;
use crate::guardian::Guardian;
use crate::header::{Header, ObjKind};
use crate::metrics::MetricsRegistry;
use crate::roots::{RootSet, Rooted, RootedVec};
use crate::stats::{CollectionReport, HeapStats};
use crate::trace::{GcEvent, SiteProfile, SiteStats, TraceConfig, TracedEvent, Tracer};
use crate::value::Value;
use guardians_segments::{SegIndex, SegmentPool, SegmentTable, Space, WordAddr, SEGMENT_WORDS};
use std::sync::Arc;

/// A guardian protected-list entry: the paper's "object/guardian pair",
/// extended with the Section 5 *agent* generalisation (`rep` is what gets
/// enqueued when `obj` is proven inaccessible; in the simple interface
/// `rep == obj`).
#[derive(Copy, Clone, Debug)]
pub(crate) struct GuardEntry {
    pub obj: Value,
    pub rep: Value,
    pub tconc: Value,
}

/// An entry for the Dickey-style `register-for-finalization` baseline.
#[derive(Copy, Clone, Debug)]
pub(crate) struct FinEntry {
    pub obj: Value,
    pub id: u64,
}

/// A generation-based copying heap with guardians and weak pairs.
pub struct Heap {
    pub(crate) segs: SegmentTable,
    pub(crate) config: GcConfig,
    /// Open allocation segment per (space, generation), as a flat table
    /// indexed `generation * 4 + space.index()`: the allocation fast path
    /// (mutator and collector copy loop alike) costs one array load, not
    /// a hash lookup.
    pub(crate) cursors: Vec<Option<SegIndex>>,
    pub(crate) roots: RootSet,
    /// Protected lists, one per generation (a single flat list when the
    /// `flat_protected` ablation is enabled).
    pub(crate) protected: Vec<Vec<GuardEntry>>,
    /// Dickey-baseline watch lists, one per generation.
    pub(crate) finalize_watch: Vec<Vec<FinEntry>>,
    /// When a collection is running, newly allocated (to-space) segments
    /// are logged here for the Cheney sweep. For an incremental
    /// collection it stays `Some` across all increments, so mutator
    /// allocations between increments are swept too.
    pub(crate) tospace_log: Option<Vec<SegIndex>>,
    /// A bounded-pause collection suspended between increments (see
    /// [`GcConfig::pause_budget`] and `collect::incremental`). Taken out
    /// of the heap while an increment runs, so accessor read/write
    /// barriers see `None` exactly when the collector itself is running.
    pub(crate) incremental: Option<Box<collect::incremental::IncrementalState>>,
    pub(crate) stats: HeapStats,
    last_report: Option<CollectionReport>,
    pub(crate) collections: u64,
    bytes_since_gc: usize,
    alloc_forbidden: bool,
    /// Lifetime count of segment acquisitions (runs count one per
    /// segment), compared against
    /// [`GcConfig::fail_acquisition_at`] by the fallible entry points.
    /// `pub(crate)` so the parallel engine can mirror the count through
    /// its table lock and write the final tally back at region end.
    pub(crate) acquisitions: u64,
    /// The event tracer; `None` (one null test per instrumentation site)
    /// unless [`Heap::enable_tracing`] was called.
    pub(crate) tracer: Option<Box<Tracer>>,
    /// The metrics registry; collection reports are folded in as they
    /// happen, mutator-side counters are synced on snapshot.
    metrics: MetricsRegistry,
    /// The allocation site the embedding last tagged (see
    /// [`Heap::set_alloc_site`]); attributed by the site profiler and
    /// allocation sampler.
    alloc_site: Option<&'static str>,
    /// Per-site allocation attribution; `None` unless
    /// [`Heap::enable_site_profile`] was called.
    site_profile: Option<Box<SiteProfile>>,
    /// The online policy controller; `None` (one null test per
    /// collection) unless [`Heap::enable_autotune`] was called — a heap
    /// that never enables autotuning is bit-identical to one predating
    /// it.
    autotune: Option<Box<PolicyController>>,
}

impl Heap {
    /// Creates a heap with the given configuration.
    pub fn new(config: GcConfig) -> Heap {
        let gens = config.generations as usize;
        let lists = if config.flat_protected { 1 } else { gens };
        Heap {
            segs: SegmentTable::new(),
            cursors: vec![None; gens * 4],
            roots: RootSet::default(),
            protected: (0..lists).map(|_| Vec::new()).collect(),
            finalize_watch: (0..gens).map(|_| Vec::new()).collect(),
            tospace_log: None,
            incremental: None,
            stats: HeapStats::default(),
            last_report: None,
            collections: 0,
            bytes_since_gc: 0,
            alloc_forbidden: false,
            acquisitions: 0,
            tracer: None,
            metrics: MetricsRegistry::default(),
            alloc_site: None,
            site_profile: None,
            autotune: None,
            config,
        }
    }

    /// Creates a heap whose segment storage comes from a shared
    /// [`SegmentPool`] — the multi-tenant configuration, where many heaps
    /// ("zones") draw on one fleet-level capacity budget. `max_segments`
    /// is this heap's watermark: a per-tenant quota that both bounds the
    /// tenant and, when the fleet's watermarks sum to at most the pool
    /// capacity, guarantees its `try_*` preflights stay race-free against
    /// concurrent tenants.
    ///
    /// Allocation behaviour (addresses, recycling, observables) is
    /// byte-identical to [`Heap::new`]; pool exhaustion and the watermark
    /// surface through the same budget discipline as acquisition faults —
    /// `try_*` entry points return [`GcError::Exhausted`], infallible
    /// paths treat an unpreflighted shortfall as a panic-worthy bug. All
    /// segments return to the pool when the heap drops.
    pub fn with_pool(
        config: GcConfig,
        pool: Arc<SegmentPool>,
        max_segments: Option<usize>,
    ) -> Heap {
        let mut heap = Heap::new(config);
        heap.segs = SegmentTable::with_pool(pool, max_segments);
        heap
    }

    /// The shared segment pool this heap draws from, if any.
    pub fn segment_pool(&self) -> Option<&Arc<SegmentPool>> {
        self.segs.pool()
    }

    /// Segments the heap's table can still acquire before its zone
    /// watermark or shared-pool capacity binds; `u64::MAX` when neither
    /// does (see [`SegmentTable::acquirable`] for the conservative
    /// contract). Quota sizing note: a copy collection transiently holds
    /// from-space and to-space at once, so a zone watermark must leave
    /// copy-reserve headroom (at least the live-data segment count)
    /// above the mutator's working set, or collection at the watermark
    /// trips the budget discipline.
    pub fn segs_acquirable(&self) -> u64 {
        self.segs.acquirable()
    }

    /// The heap's configuration.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Raw bump allocation of `words` words in (`space`, `gen`). Does not
    /// touch mutator accounting; used by both the mutator wrappers and the
    /// collector's to-space copying.
    pub(crate) fn alloc_words_internal(&mut self, space: Space, gen: u8, words: usize) -> WordAddr {
        debug_assert!(words > 0);
        if words > SEGMENT_WORDS {
            let nsegs = words.div_ceil(SEGMENT_WORDS);
            self.note_acquisitions(nsegs as u64);
            let head = self.segs.allocate_run(space, gen, nsegs);
            self.segs.info_mut(head).used = words as u32;
            if let Some(log) = self.tospace_log.as_mut() {
                log.push(head);
            }
            return self.segs.base_addr(head);
        }
        let key = gen as usize * 4 + space.index();
        if let Some(seg) = self.cursors[key] {
            let used = self.segs.info(seg).used as usize;
            if used + words <= SEGMENT_WORDS {
                self.segs.info_mut(seg).used = (used + words) as u32;
                return WordAddr::new(seg, used);
            }
        }
        if let Some(old) = self.cursors[key] {
            self.segs.info_mut(old).open_cursor = false;
        }
        self.note_acquisitions(1);
        let seg = self.segs.allocate(space, gen);
        if let Some(log) = self.tospace_log.as_mut() {
            log.push(seg);
        }
        self.cursors[key] = Some(seg);
        let info = self.segs.info_mut(seg);
        info.used = words as u32;
        info.open_cursor = true;
        WordAddr::new(seg, 0)
    }

    /// Mutator allocation: generation 0, with accounting and the
    /// allocation-forbidden check.
    fn alloc_mutator(&mut self, space: Space, words: usize) -> WordAddr {
        assert!(
            !self.alloc_forbidden,
            "heap allocation is forbidden here (e.g. inside a collector-invoked \
             finalization thunk — one of the restrictions guardians remove)"
        );
        self.bytes_since_gc += words * 8;
        self.stats.words_allocated += words as u64;
        // Observability off: two null tests, nothing else.
        if self.site_profile.is_some() || self.tracer.is_some() {
            self.note_mutator_alloc(space, words);
        }
        self.alloc_words_internal(space, 0, words)
    }

    /// The slow (observability-enabled) half of mutator-allocation
    /// accounting: site attribution and sampled allocation events.
    fn note_mutator_alloc(&mut self, space: Space, words: usize) {
        let site = self.alloc_site;
        if let Some(profile) = self.site_profile.as_mut() {
            let entry = profile
                .sites
                .entry(site.unwrap_or("<untagged>"))
                .or_default();
            entry.allocations += 1;
            entry.words += words as u64;
        }
        if let Some(t) = self.tracer.as_mut() {
            if t.cfg.alloc_sample_every > 0 {
                t.alloc_tick += 1;
                if t.alloc_tick >= t.cfg.alloc_sample_every {
                    t.alloc_tick = 0;
                    t.emit(GcEvent::AllocSample {
                        space: space_name(space),
                        words: words as u64,
                        site,
                    });
                }
            }
        }
    }

    /// Allocates a pair `(car . cdr)`.
    #[inline]
    pub fn cons(&mut self, car: Value, cdr: Value) -> Value {
        let addr = self.alloc_mutator(Space::Pair, 2);
        self.stats.pairs_allocated += 1;
        self.segs.set_word(addr, car.raw());
        self.segs.set_word(addr.add(1), cdr.raw());
        Value::pair_at(addr)
    }

    /// Allocates a weak pair: like [`Heap::cons`], but the car field holds
    /// a weak pointer (it is replaced by `#f` if its referent is reclaimed;
    /// see the paper's Section 4).
    pub fn weak_cons(&mut self, car: Value, cdr: Value) -> Value {
        let addr = self.alloc_mutator(Space::WeakPair, 2);
        self.stats.pairs_allocated += 1;
        self.segs.set_word(addr, car.raw());
        self.segs.set_word(addr.add(1), cdr.raw());
        Value::pair_at(addr)
    }

    fn alloc_typed(&mut self, header: Header) -> WordAddr {
        let space = space_for(&header);
        let addr = self.alloc_mutator(space, header.total_words());
        self.stats.objects_allocated += 1;
        self.segs.set_word(addr, header.encode());
        addr
    }

    /// Allocates a vector of `len` copies of `fill`.
    pub fn make_vector(&mut self, len: usize, fill: Value) -> Value {
        let addr = self.alloc_typed(Header::new(ObjKind::Vector, len));
        for i in 0..len {
            self.segs.set_word(addr.add(1 + i), fill.raw());
        }
        Value::obj_at(addr)
    }

    /// Allocates an immutable string.
    pub fn make_string(&mut self, s: &str) -> Value {
        let bytes = s.as_bytes();
        let addr = self.alloc_typed(Header::new(ObjKind::String, bytes.len()));
        write_bytes(&mut self.segs, addr.add(1), bytes);
        Value::obj_at(addr)
    }

    /// Allocates a bytevector of `len` copies of `fill`, writing the fill
    /// pattern one broadcast `u64` per word — no intermediate buffer.
    pub fn make_bytevector(&mut self, len: usize, fill: u8) -> Value {
        let addr = self.alloc_typed(Header::new(ObjKind::Bytevector, len));
        let payload = addr.add(1);
        let broadcast = u64::from_le_bytes([fill; 8]);
        for i in 0..len / 8 {
            self.segs.set_word(payload.add(i), broadcast);
        }
        let rem = len % 8;
        if rem > 0 {
            // Match `write_bytes`'s layout: trailing bytes of the last
            // word are zero padding.
            let mut last = [0u8; 8];
            last[..rem].fill(fill);
            self.segs
                .set_word(payload.add(len / 8), u64::from_le_bytes(last));
        }
        Value::obj_at(addr)
    }

    /// Allocates a box holding `v`.
    pub fn make_box(&mut self, v: Value) -> Value {
        let addr = self.alloc_typed(Header::new(ObjKind::Box, 1));
        self.segs.set_word(addr.add(1), v.raw());
        Value::obj_at(addr)
    }

    /// Allocates a flonum.
    pub fn make_flonum(&mut self, f: f64) -> Value {
        let addr = self.alloc_typed(Header::new(ObjKind::Flonum, 1));
        self.segs.set_word(addr.add(1), f.to_bits());
        Value::obj_at(addr)
    }

    /// Allocates an (uninterned) symbol with the given name. Interning is
    /// the runtime layer's job.
    pub fn make_symbol(&mut self, name: &str) -> Value {
        let name_v = self.make_string(name);
        let addr = self.alloc_typed(Header::new(ObjKind::Symbol, 2));
        self.segs.set_word(addr.add(1), name_v.raw());
        self.segs.set_word(addr.add(2), Value::FALSE.raw());
        Value::obj_at(addr)
    }

    /// Allocates a record of `n_fields` copies of `fill` — the
    /// no-intermediate-buffer constructor for environment frames and
    /// other fixed-shape records whose fields are set immediately after.
    #[inline]
    pub fn make_record_filled(&mut self, descriptor: Value, n_fields: usize, fill: Value) -> Value {
        let addr = self.alloc_typed(Header::new(ObjKind::Record, 1 + n_fields));
        self.segs.set_word(addr.add(1), descriptor.raw());
        for i in 0..n_fields {
            self.segs.set_word(addr.add(2 + i), fill.raw());
        }
        Value::obj_at(addr)
    }

    /// Allocates a record with a descriptor and fields.
    #[inline]
    pub fn make_record(&mut self, descriptor: Value, fields: &[Value]) -> Value {
        let addr = self.alloc_typed(Header::new(ObjKind::Record, 1 + fields.len()));
        self.segs.set_word(addr.add(1), descriptor.raw());
        for (i, f) in fields.iter().enumerate() {
            self.segs.set_word(addr.add(2 + i), f.raw());
        }
        Value::obj_at(addr)
    }

    /// Drops allocation cursors for the collected generations (their
    /// segments are about to be freed) and the target generation (so the
    /// Cheney scan sees only freshly copied objects in to-space segments).
    pub(crate) fn reset_cursors(&mut self, g: u8, target: u8) {
        for i in 0..self.cursors.len() {
            let gen = (i / 4) as u8;
            if gen <= g || gen == target {
                if let Some(seg) = self.cursors[i].take() {
                    self.segs.info_mut(seg).open_cursor = false;
                }
            }
        }
    }

    /// Whether `seg` is an open allocation cursor — the only segments
    /// whose `used` watermark can still advance without the segment being
    /// (re-)logged, so the only ones the Cheney sweep must re-check. An
    /// O(1) flag test ([`SegInfo::open_cursor`]) kept coherent with the
    /// cursor table by [`Heap::alloc_words_internal`] /
    /// [`Heap::reset_cursors`] (checked by [`Heap::verify`]).
    ///
    /// [`SegInfo::open_cursor`]: guardians_segments::SegInfo
    pub(crate) fn is_open_cursor(&self, seg: SegIndex) -> bool {
        self.segs.info(seg).open_cursor
    }

    /// Takes the to-space segments logged since the last drain.
    pub(crate) fn drain_tospace_log(&mut self) -> Vec<SegIndex> {
        self.tospace_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Whether the to-space log is empty.
    pub(crate) fn tospace_log_is_empty(&self) -> bool {
        self.tospace_log.as_ref().is_none_or(Vec::is_empty)
    }

    // ------------------------------------------------------------------
    // Fallible allocation and the segment-acquisition budget
    // ------------------------------------------------------------------
    //
    // The `try_*` entry points model a heap with a hard memory cap: they
    // compute the operation's full segment demand *up front* and fail with
    // a clean [`GcError::Exhausted`] — no partial mutation, heap still
    // `verify()`-valid — when the demand exceeds the remaining
    // [`GcConfig::fail_acquisition_at`] budget. The torture rig drives
    // these with the fault placed at every offset in a sweep.

    /// Records `n` segment acquisitions, enforcing the fault-injection
    /// tripwire: an infallible path must never be the one to cross the
    /// configured limit — a fallible entry point's preflight should have
    /// rejected the operation first. For a collection, tripping this
    /// panic would mean [`Heap::try_collect`]'s worst-case reservation
    /// was unsound.
    pub(crate) fn note_acquisitions(&mut self, n: u64) {
        if let Some(limit) = self.config.fail_acquisition_at {
            assert!(
                self.acquisitions + n <= limit,
                "segment-acquisition fault fired inside an infallible path: \
                 {} acquired, {n} more requested, limit {limit} — a fallible \
                 entry point's preflight should have rejected this operation",
                self.acquisitions,
            );
        }
        self.acquisitions += n;
        self.trace_emit(|| GcEvent::SegmentsAcquired { count: n });
    }

    /// Lifetime count of segment acquisitions (multi-segment runs count
    /// one per segment; free-pool recycling counts like a fresh mapping).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Segments still acquirable before the configured fault fires
    /// (`u64::MAX` when no fault is configured).
    pub fn acquisitions_remaining(&self) -> u64 {
        match self.config.fail_acquisition_at {
            Some(limit) => limit.saturating_sub(self.acquisitions),
            None => u64::MAX,
        }
    }

    /// Installs, moves, or clears the segment-acquisition fault at
    /// runtime (see [`GcConfig::fail_acquisition_at`]). The limit counts
    /// *lifetime* acquisitions, so a limit at or below
    /// [`Heap::acquisitions`] makes every further acquisition fail.
    pub fn set_acquisition_fault(&mut self, fail_at: Option<u64>) {
        self.config.fail_acquisition_at = fail_at;
    }

    /// Errors unless `segments` more segments can be acquired. Lets a
    /// caller preflight a *composite* operation (several allocations that
    /// must all succeed or none happen) against a conservative upper
    /// bound before performing any of them with the infallible
    /// constructors — the torture rig's all-or-nothing op application.
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] if the demand exceeds the remaining budget.
    #[must_use = "a dropped Exhausted error silently skips the fault-injection path; handle or propagate it"]
    pub fn try_reserve(&self, segments: u64) -> Result<(), GcError> {
        self.check_budget(segments)
    }

    /// Errors unless `needed` more segments can be acquired. The budget
    /// is the tightest of three bounds: the configured acquisition fault,
    /// the heap's `max_segments` watermark, and the shared pool's spare
    /// capacity (see [`SegmentTable::acquirable`] — deliberately
    /// conservative, so a passing preflight can never strand an
    /// infallible path on a tripwire).
    fn check_budget(&self, needed: u64) -> Result<(), GcError> {
        let remaining = self.acquisitions_remaining().min(self.segs.acquirable());
        if needed > remaining {
            return Err(GcError::Exhausted { needed, remaining });
        }
        Ok(())
    }

    /// Segments a generation-0 allocation of `words` words in `space`
    /// acquires: 0 if it fits the open cursor, 1 for a new segment, or the
    /// run length for a large object. Exact, not an estimate — the bump
    /// allocator's decision procedure evaluated against the current
    /// cursor.
    fn segments_needed(&self, space: Space, words: usize) -> u64 {
        if words > SEGMENT_WORDS {
            return words.div_ceil(SEGMENT_WORDS) as u64;
        }
        if let Some(seg) = self.cursors[space.index()] {
            if self.segs.info(seg).used as usize + words <= SEGMENT_WORDS {
                return 0;
            }
        }
        1
    }

    /// Fallible [`Heap::cons`].
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) if the pair would not fit
    /// in the remaining segment budget.
    pub fn try_cons(&mut self, car: Value, cdr: Value) -> Result<Value, GcError> {
        self.check_budget(self.segments_needed(Space::Pair, 2))?;
        Ok(self.cons(car, cdr))
    }

    /// Fallible [`Heap::weak_cons`].
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) on insufficient budget.
    pub fn try_weak_cons(&mut self, car: Value, cdr: Value) -> Result<Value, GcError> {
        self.check_budget(self.segments_needed(Space::WeakPair, 2))?;
        Ok(self.weak_cons(car, cdr))
    }

    /// Fallible [`Heap::make_vector`].
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) on insufficient budget.
    pub fn try_make_vector(&mut self, len: usize, fill: Value) -> Result<Value, GcError> {
        let header = Header::new(ObjKind::Vector, len);
        self.check_budget(self.segments_needed(space_for(&header), header.total_words()))?;
        Ok(self.make_vector(len, fill))
    }

    /// Fallible [`Heap::make_string`].
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) on insufficient budget.
    pub fn try_make_string(&mut self, s: &str) -> Result<Value, GcError> {
        let header = Header::new(ObjKind::String, s.len());
        self.check_budget(self.segments_needed(space_for(&header), header.total_words()))?;
        Ok(self.make_string(s))
    }

    /// Fallible [`Heap::make_bytevector`].
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) on insufficient budget.
    pub fn try_make_bytevector(&mut self, len: usize, fill: u8) -> Result<Value, GcError> {
        let header = Header::new(ObjKind::Bytevector, len);
        self.check_budget(self.segments_needed(space_for(&header), header.total_words()))?;
        Ok(self.make_bytevector(len, fill))
    }

    /// Fallible [`Heap::make_guardian`]: a guardian's tconc is two pairs,
    /// so the demand is that of one 4-word pair-space allocation.
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) on insufficient budget.
    pub fn try_make_guardian(&mut self) -> Result<Guardian, GcError> {
        self.check_budget(self.segments_needed(Space::Pair, 4))?;
        Ok(self.make_guardian())
    }

    /// The conservative worst-case segment reservation a collection of
    /// generations `0..=gen` would make right now — the amount
    /// [`Heap::try_collect`] checks against the remaining budget. Exposed
    /// so tests can arm the acquisition fault exactly at (or just past)
    /// the reservation boundary.
    pub fn collection_reservation(&self, gen: u8) -> u64 {
        assert!(gen < self.config.generations, "no such generation: {gen}");
        collect::estimate_worst_case(self, gen)
    }

    /// Fallible [`Heap::collect`]: reserves a conservative worst case for
    /// the whole collection — to-space copies, the guardian pass's tconc
    /// appends, everything — against the remaining segment budget
    /// *before the flip*, so a collection either runs to completion or
    /// fails before mutating anything (see
    /// `collect::estimate_worst_case` for the bound's derivation).
    /// This is the only way a collection can "run out of memory": the
    /// infallible [`Heap::collect`] under a configured fault would panic
    /// via the acquisition tripwire instead of corrupting the heap.
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched, no collection counted) if
    /// the reservation exceeds the remaining budget.
    #[must_use = "a dropped Exhausted error silently skips the fault-injection path; handle or propagate it"]
    pub fn try_collect(&mut self, gen: u8) -> Result<&CollectionReport, GcError> {
        assert!(gen < self.config.generations, "no such generation: {gen}");
        // When resuming a suspended incremental collection, the bound is
        // for *its* generation (`gen` applies to the next cycle).
        let g = self.incremental.as_ref().map_or(gen, |st| st.s.g);
        self.check_budget(collect::estimate_worst_case(self, g))?;
        Ok(self.collect(gen))
    }

    // ------------------------------------------------------------------
    // Roots
    // ------------------------------------------------------------------

    /// Registers `v` as a GC root; the returned handle tracks relocation.
    pub fn root(&mut self, v: Value) -> Rooted {
        self.roots.root(v)
    }

    /// Creates a rooted shadow stack (used by interpreters and tests that
    /// juggle many live values).
    pub fn root_vec(&mut self) -> RootedVec {
        self.roots.root_vec()
    }

    // ------------------------------------------------------------------
    // Guardians
    // ------------------------------------------------------------------

    /// Creates a guardian (the paper's `make-guardian`). The returned
    /// handle roots the guardian's tconc; dropping every handle (and every
    /// heap reference to the tconc) cancels finalization of the registered
    /// group, as described in the paper's introduction.
    pub fn make_guardian(&mut self) -> Guardian {
        let tconc = self.make_tconc();
        Guardian::new(self.roots.root(tconc))
    }

    /// Registers `obj` with the guardian represented by `tconc` (low-level
    /// interface; see [`Guardian::register`]). `rep` is the value enqueued
    /// when `obj` is proven inaccessible — pass `obj` itself for the
    /// paper's simple interface, or an *agent* for the Section 5
    /// generalisation.
    pub fn guardian_register(&mut self, tconc: Value, obj: Value, rep: Value) {
        assert!(
            self.is_pair(tconc),
            "guardian tconc must be a pair: {tconc:?}"
        );
        self.stats.guardian_registrations += 1;
        // "Each time an object is registered with a guardian, a new pair
        // (of the object and guardian) is added to the protected list for
        // generation 0."
        self.protected[0].push(GuardEntry { obj, rep, tconc });
    }

    /// Number of registered-but-not-yet-finalized entries watching
    /// objects for this tconc (diagnostic; O(total registrations)).
    pub fn guardian_watched(&self, tconc: Value) -> usize {
        self.protected
            .iter()
            .flatten()
            .filter(|e| e.tconc == tconc)
            .count()
    }

    // ------------------------------------------------------------------
    // Dickey-style finalization baseline
    // ------------------------------------------------------------------

    /// Registers `obj` for collector-invoked finalization (the baseline
    /// mechanism the paper's Section 2 attributes to Dickey). When a
    /// collection proves `obj` inaccessible it is **not** preserved; `id`
    /// is reported in [`CollectionReport::finalized_ids`] so an external
    /// table can run the associated thunk — under the allocation
    /// restriction the paper criticises (see
    /// [`Heap::set_allocation_forbidden`]).
    pub fn register_for_finalization(&mut self, obj: Value, id: u64) {
        self.finalize_watch[0].push(FinEntry { obj, id });
    }

    /// Forbids (or re-allows) mutator allocation. Used to enforce the
    /// "finalization thunks must not allocate" restriction of the
    /// collector-invoked baseline; guardians need no such restriction.
    pub fn set_allocation_forbidden(&mut self, forbidden: bool) {
        self.alloc_forbidden = forbidden;
    }

    // ------------------------------------------------------------------
    // Collection
    // ------------------------------------------------------------------

    /// Collects generations `0..=gen`, returning the report.
    ///
    /// # Panics
    ///
    /// Panics if `gen` is not a valid generation or if allocation is
    /// currently forbidden (a collection moves objects, which a
    /// collector-invoked finalizer must never trigger).
    pub fn collect(&mut self, gen: u8) -> &CollectionReport {
        assert!(gen < self.config.generations, "no such generation: {gen}");
        assert!(
            !self.alloc_forbidden,
            "cannot collect while allocation is forbidden"
        );
        if self.incremental.is_some() || self.config.pause_budget.is_some() {
            // Bounded-pause engine, run synchronously to completion. If a
            // collection is already in flight it is finished (its own
            // generation choice wins; `gen` applies to the next cycle).
            if self.incremental.is_none() {
                self.begin_incremental(gen);
            }
            while self.gc_step().is_none() {}
            return self.last_report.as_ref().expect("completing step set it");
        }
        self.collections += 1;
        self.autotune_note_begin(gen);
        let report = collect::run(self, gen);
        self.finish_collection(report)
    }

    /// Post-collection bookkeeping shared by every engine: fold the
    /// report into the cumulative stats and the metrics registry, reset
    /// the allocation trigger, take the end-of-collection census if the
    /// tracer asked for one, and publish the report.
    fn finish_collection(&mut self, report: CollectionReport) -> &CollectionReport {
        self.stats.absorb(&report);
        self.absorb_metrics(&report);
        // Captured before the reset: the young survivor-ratio denominator
        // the policy controller feeds on.
        let bytes_allocated = std::mem::take(&mut self.bytes_since_gc) as u64;
        if self
            .tracer
            .as_ref()
            .is_some_and(|t| t.cfg.census_at_collection_end)
        {
            self.emit_census_events();
        }
        if self.autotune.is_some() {
            self.autotune_step(&report, bytes_allocated);
        }
        self.last_report = Some(report);
        self.last_report.as_ref().expect("just set")
    }

    /// Collects if at least `trigger_bytes` have been allocated since the
    /// last collection, choosing the generation from the configured
    /// schedule. Call this at safe points (no unrooted live values).
    ///
    /// With [`GcConfig::pause_budget`] set this is the incremental
    /// engine's driver: an in-flight collection advances by one bounded
    /// increment per call (returning `Some` only on the completing one),
    /// and a newly triggered collection begins and runs its first
    /// increment.
    #[inline]
    pub fn maybe_collect(&mut self) -> Option<&CollectionReport> {
        if self.incremental.is_some() {
            return self.gc_step();
        }
        if self.bytes_since_gc < self.config.trigger_bytes {
            return None;
        }
        let gen = self.config.generation_for_collection(self.collections + 1);
        if self.config.pause_budget.is_some() {
            self.begin_incremental(gen);
            return self.gc_step();
        }
        Some(self.collect(gen))
    }

    /// Begins a bounded-pause collection of generations `0..=gen`
    /// without running any increment: the flip runs, the from-space is
    /// snapshotted, and the heap enters the between-increments regime
    /// (forwarded-on-read, write barrier logging). Drive it with
    /// [`Heap::gc_step`]. Ordinarily [`Heap::maybe_collect`] does both;
    /// this entry point exists for embeddings (and tests) that schedule
    /// increments themselves.
    ///
    /// # Panics
    ///
    /// Panics if `gen` is invalid, allocation is forbidden, or a
    /// collection is already in flight.
    pub fn begin_incremental(&mut self, gen: u8) {
        assert!(gen < self.config.generations, "no such generation: {gen}");
        assert!(
            !self.alloc_forbidden,
            "cannot collect while allocation is forbidden"
        );
        assert!(
            self.incremental.is_none(),
            "an incremental collection is already in flight"
        );
        self.collections += 1;
        self.autotune_note_begin(gen);
        let st = collect::incremental::begin(self, gen);
        self.incremental = Some(st);
    }

    /// Runs one increment of the in-flight bounded-pause collection:
    /// at least one work unit, then more until the
    /// [`GcConfig::pause_budget`] deadline passes. Returns the final
    /// report on the completing increment, `None` while work remains
    /// *or* when no collection is in flight.
    pub fn gc_step(&mut self) -> Option<&CollectionReport> {
        let mut st = self.incremental.take()?;
        let finished = collect::incremental::step(self, &mut st);
        if finished {
            let report = st.s.report;
            Some(self.finish_collection(report))
        } else {
            self.incremental = Some(st);
            None
        }
    }

    /// Fallible [`Heap::gc_step`]: preflights a conservative bound on
    /// the *remaining* collection's segment demand against the
    /// acquisition budget before running the increment. On
    /// [`GcError::Exhausted`] nothing ran — the collection stays
    /// suspended and resumable (lift the fault and keep stepping).
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] if the bound exceeds the remaining budget.
    #[must_use = "a dropped Exhausted error silently skips the fault-injection path; handle or propagate it"]
    pub fn try_gc_step(&mut self) -> Result<Option<&CollectionReport>, GcError> {
        if let Some(st) = self.incremental.as_ref() {
            let g = st.s.g;
            // `estimate_worst_case` stays a sound bound mid-collection:
            // the from-space segments are still in the table (freed only
            // by the terminal increment), remaining survivors are a
            // subset of from-space words, and protected entries are
            // untouched until the terminal increment.
            self.check_budget(collect::estimate_worst_case(self, g))?;
        }
        Ok(self.gc_step())
    }

    /// Whether a bounded-pause collection is suspended between
    /// increments.
    pub fn incremental_in_progress(&self) -> bool {
        self.incremental.is_some()
    }

    /// Number of collections performed so far.
    pub fn collection_count(&self) -> u64 {
        self.collections
    }

    /// The report of the most recent collection, if any.
    pub fn last_report(&self) -> Option<&CollectionReport> {
        self.last_report.as_ref()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Bytes allocated by the mutator since the last collection.
    pub fn bytes_since_collection(&self) -> usize {
        self.bytes_since_gc
    }

    /// Current heap capacity in bytes (allocated segments).
    pub fn capacity_bytes(&self) -> usize {
        self.segs.words_allocated() * 8
    }

    // ------------------------------------------------------------------
    // Online policy reconfiguration and the autotuner
    // ------------------------------------------------------------------
    //
    // Policy knobs (trigger, promotion, frequency, zone quota) may change
    // at runtime, but only *between* collections: every setter asserts no
    // incremental collection is suspended, so the engines never see a
    // policy flip mid-cycle — the collected generation, promotion target,
    // and budget preflight of one collection all come from one
    // configuration. `verify()` remains callable after any change (it
    // reads the live config, not a snapshot).

    /// Sets [`GcConfig::trigger_bytes`] at runtime.
    ///
    /// # Panics
    ///
    /// Panics if a bounded-pause collection is suspended between
    /// increments — policy changes apply only between collections.
    pub fn set_trigger_bytes(&mut self, bytes: usize) {
        assert!(
            self.incremental.is_none(),
            "policy changes apply only between collections"
        );
        self.config.trigger_bytes = bytes;
    }

    /// Sets [`GcConfig::promotion`] at runtime. Safe between collections
    /// because every promotion strategy moves *all* survivors of a
    /// collection uniformly — the remembered-set invariant (old-to-young
    /// pointers arise only from mutation) is preserved no matter when
    /// the strategy flips.
    ///
    /// # Panics
    ///
    /// Panics if a bounded-pause collection is suspended between
    /// increments.
    pub fn set_promotion(&mut self, promotion: Promotion) {
        assert!(
            self.incremental.is_none(),
            "policy changes apply only between collections"
        );
        self.config.promotion = promotion;
    }

    /// Replaces the [`GcConfig::frequency`] ladder at runtime. Affects
    /// only which generation [`Heap::maybe_collect`] picks for future
    /// collections.
    ///
    /// # Panics
    ///
    /// Panics if a bounded-pause collection is suspended between
    /// increments.
    pub fn set_frequency(&mut self, frequency: Vec<u64>) {
        assert!(
            self.incremental.is_none(),
            "policy changes apply only between collections"
        );
        self.config.frequency = frequency;
    }

    /// Resets this heap's segment-quota watermark (multi-tenant zones;
    /// see [`Heap::with_pool`]) at runtime — the zone layer's
    /// `rebalance_quotas` actuator. Emits a [`GcEvent::PolicyChange`]
    /// with knob `"max_segments"` (`0` encodes "unbounded").
    ///
    /// # Panics
    ///
    /// Panics if a bounded-pause collection is suspended between
    /// increments, or if the new watermark is below the segments the
    /// heap already holds (shrinking below occupancy would make the
    /// budget discipline retroactively unsound).
    pub fn set_max_segments(&mut self, max: Option<usize>) {
        assert!(
            self.incremental.is_none(),
            "policy changes apply only between collections"
        );
        let from = self.segs.max_segments().map_or(0, |m| m as u64);
        self.segs.set_max_segments(max);
        let to = max.map_or(0, |m| m as u64);
        let collection = self.collections;
        self.trace_emit(|| GcEvent::PolicyChange {
            knob: "max_segments",
            from,
            to,
            applied: true,
            collection,
            sensor: 0,
        });
    }

    /// Enables (or, with [`AutotuneMode::Off`], disables) the online
    /// policy controller. The controller runs at the end of every
    /// completed collection, feeding on the collection report and
    /// per-generation occupancy; in `Observe` mode it only logs and emits
    /// events, in `Active` mode its decisions retune the live
    /// configuration between collections. Enabling snapshots the current
    /// effective frequency ladder as the base the stretch factor
    /// multiplies.
    ///
    /// # Panics
    ///
    /// Panics if a bounded-pause collection is suspended between
    /// increments.
    pub fn enable_autotune(&mut self, cfg: AutotuneConfig) {
        assert!(
            self.incremental.is_none(),
            "policy changes apply only between collections"
        );
        if cfg.mode == AutotuneMode::Off {
            self.autotune = None;
            return;
        }
        self.autotune = Some(Box::new(PolicyController::new(cfg, &self.config)));
    }

    /// The controller's mode ([`AutotuneMode::Off`] when never enabled).
    pub fn autotune_mode(&self) -> AutotuneMode {
        self.autotune
            .as_ref()
            .map_or(AutotuneMode::Off, |c| c.mode())
    }

    /// The controller's cumulative decision log (empty when autotuning is
    /// off).
    pub fn autotune_decisions(&self) -> &[PolicyDecision] {
        self.autotune.as_ref().map_or(&[], |c| c.decisions())
    }

    /// Drains the controller's decision log — the `gcprof` decision-trace
    /// feed.
    pub fn take_autotune_decisions(&mut self) -> Vec<PolicyDecision> {
        self.autotune
            .as_mut()
            .map(|c| c.take_decisions())
            .unwrap_or_default()
    }

    /// Captures the collected *old* generations' (1..=`gen`) live words
    /// at collection start — the old-survival denominator. Generation 0
    /// is deliberately excluded: its occupancy at a trigger is mostly
    /// dead nursery churn, and counting it would dilute the ratio so far
    /// that the frequency knob could never see stable old data being
    /// recopied. Runs from both collection entry points
    /// ([`Heap::collect`] and [`Heap::begin_incremental`]), before the
    /// flip; costs nothing when autotuning is off.
    fn autotune_note_begin(&mut self, gen: u8) {
        if self.autotune.is_none() {
            return;
        }
        let pre: u64 = self
            .generation_usage()
            .iter()
            .take(gen as usize + 1)
            .skip(1)
            .map(|u| u.used_words as u64)
            .sum();
        self.autotune
            .as_mut()
            .expect("checked above")
            .note_collection_begin(pre);
    }

    /// One controller step after a completed collection: build the sensor
    /// snapshot, run the controller, emit decision events and metrics,
    /// and (in `Active` mode) apply the updates to the live config.
    fn autotune_step(&mut self, report: &CollectionReport, bytes_allocated: u64) {
        let Some(mut controller) = self.autotune.take() else {
            return;
        };
        let usage = self.generation_usage();
        let live_words: u64 = usage.iter().map(|u| u.used_words as u64).sum();
        // Drag sensor: protected entries parked beyond generation 1,
        // where only rare old-generation collections can prove their
        // objects dead. (Under the flat-protected ablation everything
        // reports in generation 0, so the sensor reads 0 and the tenure
        // knob stays quiet — correct, since there is nothing to park.)
        let parked_old_entries: u64 = usage
            .iter()
            .skip(2)
            .map(|u| u.protected_entries as u64)
            .sum();
        let sensors = PolicySensors {
            collection_index: self.collections,
            collected_generation: report.collected_generation,
            bytes_allocated,
            words_copied: report.words_copied,
            pre_used_words: 0, // the controller fills this from note_collection_begin
            guardian_visited: report.guardian_entries_visited,
            guardian_finalized: report.guardian_entries_finalized,
            guardian_held: report.guardian_entries_held,
            parked_old_entries,
            live_words,
            segments: self.segs.segments_allocated() as u64,
            pause_ns: report.duration.as_nanos() as u64,
        };
        let outcome = controller.step(&self.config, sensors);
        for d in &outcome.decisions {
            let (knob, from, to, applied, collection, sensor) = (
                d.knob,
                d.from,
                d.to,
                d.applied,
                d.collection_index,
                d.sensor,
            );
            self.trace_emit(|| GcEvent::PolicyChange {
                knob,
                from,
                to,
                applied,
                collection,
                sensor,
            });
        }
        let applied = outcome.decisions.iter().filter(|d| d.applied).count() as u64;
        self.metrics
            .add_counter("gc.autotune.decisions", outcome.decisions.len() as u64);
        self.metrics.add_counter("gc.autotune.applied", applied);
        for update in outcome.updates {
            match update {
                PolicyUpdate::TriggerBytes(b) => self.config.trigger_bytes = b,
                PolicyUpdate::Promotion(p) => self.config.promotion = p,
                PolicyUpdate::Frequency(f) => self.config.frequency = f,
            }
        }
        if applied > 0 {
            debug_assert!(
                self.verify().is_ok(),
                "heap invariants must survive a policy change"
            );
        }
        let cap = match self.config.promotion {
            Promotion::NextGeneration | Promotion::SameGeneration => {
                self.config.max_generation() as u64
            }
            Promotion::Capped(c) => c.min(self.config.max_generation()) as u64,
        };
        let scale = controller.frequency_scale();
        self.metrics.set_gauge(
            "gc.autotune.trigger_bytes",
            self.config.trigger_bytes as i64,
        );
        self.metrics
            .set_gauge("gc.autotune.frequency_scale", scale as i64);
        self.metrics.set_gauge("gc.autotune.tenure_cap", cap as i64);
        self.autotune = Some(controller);
    }

    // ------------------------------------------------------------------
    // Observability: event tracing, metrics, allocation-site profiling
    // ------------------------------------------------------------------

    /// Enables event tracing with the given configuration. Any events in
    /// a previously enabled tracer are discarded.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.tracer = Some(Box::new(Tracer::new(cfg)));
    }

    /// Disables tracing, returning whatever events remained in the ring.
    pub fn disable_tracing(&mut self) -> Vec<TracedEvent> {
        self.tracer
            .take()
            .map(|mut t| t.drain())
            .unwrap_or_default()
    }

    /// Whether tracing is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drains and returns the buffered events, leaving tracing enabled.
    pub fn drain_trace_events(&mut self) -> Vec<TracedEvent> {
        self.tracer.as_mut().map(|t| t.drain()).unwrap_or_default()
    }

    /// Events lost to ring overflow since tracing was enabled. Consumers
    /// that replay events into counters (parity checks) must see `0`
    /// here, or their replay is missing history.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map(|t| t.dropped()).unwrap_or(0)
    }

    /// Emits an event if tracing is enabled; the closure runs only then,
    /// so a disabled site costs one null test.
    #[inline]
    pub(crate) fn trace_emit(&mut self, event: impl FnOnce() -> GcEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.emit(event());
        }
    }

    /// Emits an application-level [`GcEvent::App`] marker — the hook the
    /// runtime layer uses to interleave port/transport lifecycle events
    /// with collector events on one timeline.
    pub fn trace_app_event(&mut self, name: &'static str) {
        self.trace_emit(|| GcEvent::App { name });
    }

    /// Takes a census and emits one [`GcEvent::CensusGen`] per
    /// generation.
    fn emit_census_events(&mut self) {
        let census = self.census();
        for g in &census.generations {
            let (generation, pairs, weak_pairs, objects, words, protected_entries) = (
                g.generation,
                g.pairs,
                g.weak_pairs,
                g.objects(),
                g.words(),
                g.protected_entries,
            );
            self.trace_emit(|| GcEvent::CensusGen {
                generation,
                pairs,
                weak_pairs,
                objects,
                words,
                protected_entries,
            });
        }
    }

    /// Folds one collection report into the metrics registry.
    fn absorb_metrics(&mut self, r: &CollectionReport) {
        let m = &mut self.metrics;
        m.add_counter("gc.collections", 1);
        m.add_counter("gc.words_copied", r.words_copied);
        m.add_counter("gc.pairs_copied", r.pairs_copied);
        m.add_counter("gc.objects_copied", r.objects_copied);
        m.add_counter("gc.roots_traced", r.roots_traced);
        m.add_counter("gc.dirty_segments_scanned", r.dirty_segments_scanned);
        m.add_counter("gc.pure_words_skipped", r.pure_words_skipped);
        m.add_counter("gc.segments_freed", r.segments_freed);
        m.add_counter("gc.segments_allocated", r.segments_allocated);
        m.add_counter("gc.guardian.visited", r.guardian_entries_visited);
        m.add_counter("gc.guardian.finalized", r.guardian_entries_finalized);
        m.add_counter("gc.guardian.held", r.guardian_entries_held);
        m.add_counter("gc.guardian.dropped", r.guardian_entries_dropped);
        m.add_counter("gc.guardian.loop_iterations", r.guardian_loop_iterations);
        m.add_counter("gc.weak.scanned", r.weak_pairs_scanned);
        m.add_counter("gc.weak.broken", r.weak_cars_broken);
        m.add_counter("gc.weak.forwarded", r.weak_cars_forwarded);
        if r.increments == 0 {
            // Stop-the-world: the whole collection is one pause. The
            // incremental engine records each increment's pause as it
            // happens ([`Heap::record_pause`]); recording the cumulative
            // duration here too would double-count it.
            m.histogram("gc.pause_ns")
                .record(r.duration.as_nanos() as u64);
        } else {
            m.add_counter("gc.increments", r.increments);
        }
        let p = &r.phases;
        for (name, d) in [
            ("gc.phase.flip_ns", p.flip),
            ("gc.phase.roots_ns", p.roots),
            ("gc.phase.remset_ns", p.remset),
            ("gc.phase.sweep_ns", p.sweep),
            ("gc.phase.guardian_ns", p.guardian),
            ("gc.phase.finalizer_ns", p.finalizer),
            ("gc.phase.weak_ns", p.weak),
            ("gc.phase.reclaim_ns", p.reclaim),
        ] {
            m.histogram(name).record(d.as_nanos() as u64);
        }
    }

    /// Records one mutator pause sample into the `gc.pause_ns`
    /// histogram; the incremental engine calls this once per increment.
    pub(crate) fn record_pause(&mut self, d: std::time::Duration) {
        self.metrics
            .histogram("gc.pause_ns")
            .record(d.as_nanos() as u64);
    }

    /// The metrics registry, with mutator-side counters and gauges
    /// synced to the current heap state. Collection counters and pause
    /// histograms accumulate as collections happen; this snapshot folds
    /// in everything else (allocation totals, guardian registrations and
    /// polls, heap shape gauges, the guardian queue-depth estimate).
    pub fn metrics(&mut self) -> &MetricsRegistry {
        let (pairs, objects, words, regs, polls) = (
            self.stats.pairs_allocated,
            self.stats.objects_allocated,
            self.stats.words_allocated,
            self.stats.guardian_registrations,
            self.stats.guardian_polls,
        );
        let (segments, capacity) = (self.segs.segments_allocated(), self.capacity_bytes());
        let m = &mut self.metrics;
        m.set_counter("alloc.pairs", pairs);
        m.set_counter("alloc.objects", objects);
        m.set_counter("alloc.words", words);
        m.set_counter("guardian.registrations", regs);
        m.set_counter("guardian.polls", polls);
        m.set_gauge("heap.segments", segments as i64);
        m.set_gauge("heap.capacity_bytes", capacity as i64);
        // Finalized-but-unpolled estimate. `guardian_polls` counts every
        // successful tconc pop (non-guardian tconc clients included), so
        // this can undershoot — documented in DESIGN.md.
        let depth = m.counter("gc.guardian.finalized") as i64 - polls as i64;
        m.set_gauge("guardian.queue_depth", depth);
        &self.metrics
    }

    /// JSON snapshot of [`Heap::metrics`] with deterministic key order.
    pub fn metrics_json(&mut self) -> String {
        self.metrics().to_json()
    }

    /// Mutable access to the metrics registry, for embedders recording
    /// their own counters alongside the collector's (e.g. the Scheme
    /// VM's per-opcode dispatch profile). Heap-derived counters are only
    /// synced by [`Heap::metrics`]; embedder counters live here
    /// unconditionally.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Enables per-site allocation attribution (resets any previous
    /// profile). Until disabled, every mutator allocation is attributed
    /// to the site last set with [`Heap::set_alloc_site`].
    pub fn enable_site_profile(&mut self) {
        self.site_profile = Some(Box::new(SiteProfile::default()));
    }

    /// Whether site profiling is enabled — embeddings use this to skip
    /// their per-operation [`Heap::set_alloc_site`] stores when nobody
    /// is listening.
    #[inline]
    pub fn site_profile_enabled(&self) -> bool {
        self.site_profile.is_some()
    }

    /// Tags subsequent allocations with a static site name (e.g. the
    /// evaluator's current opcode). Cheap enough to call per operation:
    /// one field store.
    #[inline]
    pub fn set_alloc_site(&mut self, site: &'static str) {
        self.alloc_site = Some(site);
    }

    /// Clears the allocation-site tag; subsequent allocations attribute
    /// to `"<untagged>"`.
    pub fn clear_alloc_site(&mut self) {
        self.alloc_site = None;
    }

    /// Disables site profiling and returns the attribution table, sorted
    /// by words descending (ties by name for determinism).
    pub fn take_site_profile(&mut self) -> Vec<(&'static str, SiteStats)> {
        let mut out: Vec<(&'static str, SiteStats)> = self
            .site_profile
            .take()
            .map(|p| p.sites.into_iter().collect())
            .unwrap_or_default();
        out.sort_by(|a, b| b.1.words.cmp(&a.1.words).then(a.0.cmp(b.0)));
        out
    }

    // ------------------------------------------------------------------
    // Identity and placement
    // ------------------------------------------------------------------

    /// The current word address of a heap object, or `None` for
    /// non-pointers. The address changes when a collection moves the
    /// object — which is exactly what eq hash tables and the transport
    /// guardian experiments need to observe.
    pub fn address_of(&self, v: Value) -> Option<u64> {
        v.is_ptr().then(|| v.addr().raw())
    }

    /// The generation a heap object currently resides in, or `None` for
    /// non-pointers.
    pub fn generation_of(&self, v: Value) -> Option<u8> {
        if !v.is_ptr() {
            return None;
        }
        Some(self.segs.info(v.addr().seg()).generation)
    }
}

impl Default for Heap {
    /// A heap with the default [`GcConfig`].
    fn default() -> Self {
        Heap::new(GcConfig::default())
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("segments", &self.segs.segments_allocated())
            .field("collections", &self.collections)
            .field("generations", &self.config.generations)
            .finish()
    }
}

/// The space a typed allocation goes to: pointer-free kinds land in the
/// pure space, which the collector copies without scanning.
fn space_for(header: &Header) -> Space {
    if header.traced_words() == 0
        && header.kind != ObjKind::Vector
        && header.kind != ObjKind::Record
    {
        Space::Pure
    } else {
        Space::Typed
    }
}

/// Stable space names for trace events.
fn space_name(space: Space) -> &'static str {
    match space {
        Space::Pair => "pair",
        Space::WeakPair => "weak-pair",
        Space::Typed => "typed",
        Space::Pure => "pure",
    }
}

/// Packs `bytes` into consecutive words starting at `addr` (little-endian
/// within each word, zero-padded).
fn write_bytes(segs: &mut SegmentTable, addr: WordAddr, bytes: &[u8]) {
    for (i, chunk) in bytes.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        segs.set_word(addr.add(i), u64::from_le_bytes(word));
    }
}

/// Reads `len` bytes from consecutive words starting at `addr`.
pub(crate) fn read_bytes(segs: &SegmentTable, addr: WordAddr, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let words = len.div_ceil(8);
    for i in 0..words {
        let bytes = segs.word(addr.add(i)).to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&bytes[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cons_allocates_readable_pairs() {
        let mut h = Heap::default();
        let p = h.cons(Value::fixnum(1), Value::fixnum(2));
        assert!(h.is_pair(p));
        assert!(!h.is_weak_pair(p));
        assert_eq!(h.car(p), Value::fixnum(1));
        assert_eq!(h.cdr(p), Value::fixnum(2));
    }

    #[test]
    fn weak_cons_is_a_pair_in_the_weak_space() {
        let mut h = Heap::default();
        let p = h.weak_cons(Value::fixnum(1), Value::NIL);
        assert!(h.is_pair(p), "weak pairs answer true to pair?");
        assert!(h.is_weak_pair(p));
    }

    #[test]
    fn bump_allocation_packs_pairs_into_segments() {
        let mut h = Heap::default();
        let a = h.cons(Value::NIL, Value::NIL);
        let b = h.cons(Value::NIL, Value::NIL);
        assert_eq!(
            b.addr().raw() - a.addr().raw(),
            2,
            "consecutive pairs are adjacent"
        );
    }

    #[test]
    fn large_objects_get_multi_segment_runs() {
        let mut h = Heap::default();
        let v = h.make_vector(2000, Value::fixnum(7));
        assert_eq!(h.vector_len(v), 2000);
        assert_eq!(h.vector_ref(v, 0), Value::fixnum(7));
        assert_eq!(h.vector_ref(v, 1999), Value::fixnum(7));
    }

    #[test]
    fn strings_round_trip() {
        let mut h = Heap::default();
        for s in [
            "",
            "a",
            "hello world",
            "exactly8",
            "nine bytes",
            "λambda 🦀",
        ] {
            let v = h.make_string(s);
            assert_eq!(h.string_value(v), s, "round trip of {s:?}");
        }
    }

    #[test]
    fn symbols_carry_their_names() {
        let mut h = Heap::default();
        let s = h.make_symbol("port-guardian");
        assert!(h.is_symbol(s));
        assert_eq!(h.symbol_name(s), "port-guardian");
    }

    #[test]
    fn records_store_descriptor_and_fields() {
        let mut h = Heap::default();
        let d = h.make_symbol("point");
        let r = h.make_record(d, &[Value::fixnum(3), Value::fixnum(4)]);
        assert!(h.is_record(r));
        assert_eq!(h.record_descriptor(r), d);
        assert_eq!(h.record_len(r), 2);
        assert_eq!(h.record_ref(r, 1), Value::fixnum(4));
    }

    #[test]
    fn flonums_round_trip() {
        let mut h = Heap::default();
        for f in [0.0, -1.5, std::f64::consts::PI, f64::INFINITY] {
            let v = h.make_flonum(f);
            assert_eq!(h.flonum_value(v), f);
        }
    }

    #[test]
    fn bytevectors_are_mutable() {
        let mut h = Heap::default();
        let bv = h.make_bytevector(20, 0xAB);
        assert_eq!(h.bytevector_len(bv), 20);
        assert_eq!(h.bytevector_ref(bv, 19), 0xAB);
        h.bytevector_set(bv, 3, 7);
        assert_eq!(h.bytevector_ref(bv, 3), 7);
        assert_eq!(h.bytevector_ref(bv, 2), 0xAB);
    }

    #[test]
    fn boxes_hold_one_value() {
        let mut h = Heap::default();
        let b = h.make_box(Value::fixnum(10));
        assert_eq!(h.box_ref(b), Value::fixnum(10));
        h.box_set(b, Value::TRUE);
        assert_eq!(h.box_ref(b), Value::TRUE);
    }

    #[test]
    #[should_panic(expected = "allocation is forbidden")]
    fn forbidden_allocation_panics() {
        let mut h = Heap::default();
        h.set_allocation_forbidden(true);
        let _ = h.cons(Value::NIL, Value::NIL);
    }

    #[test]
    fn addresses_and_generations_of_fresh_objects() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        assert!(h.address_of(p).is_some());
        assert_eq!(h.generation_of(p), Some(0));
        assert_eq!(h.address_of(Value::fixnum(1)), None);
        assert_eq!(h.generation_of(Value::FALSE), None);
    }

    #[test]
    fn byte_packing_round_trips() {
        let mut t = SegmentTable::new();
        let seg = t.allocate(Space::Typed, 0);
        let addr = t.base_addr(seg);
        let data: Vec<u8> = (0..23).collect();
        write_bytes(&mut t, addr, &data);
        assert_eq!(read_bytes(&t, addr, 23), data);
        assert_eq!(read_bytes(&t, addr, 0), Vec::<u8>::new());
    }
}
