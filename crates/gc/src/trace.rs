//! Structured event tracing for the collector and its clients.
//!
//! The heap owns an optional [`Tracer`]: a fixed-capacity ring buffer of
//! typed [`GcEvent`]s stamped with a monotonic timestamp and a sequence
//! number. When tracing is disabled the tracer is `None` and every
//! instrumentation site costs exactly one pointer-null test — no
//! timestamping, no event construction (the event is built inside a
//! closure that never runs). When enabled, events overwrite the oldest
//! entries once the ring fills; [`Heap::trace_dropped`] reports how many
//! were lost so replay-based consumers can detect truncation.
//!
//! Three consumers are built in:
//!
//! * [`replay_stats`] folds a drained event stream back into the
//!   collector-side fields of [`HeapStats`] — the parity contract that
//!   keeps the trace honest (tested in the bench crate and the torture
//!   rig).
//! * [`chrome_trace_json`] renders events as a Chrome `trace_event` JSON
//!   document (load in `chrome://tracing` or Perfetto): collections as
//!   begin/end spans, phases as complete slices, everything else as
//!   instant events, censuses as counter tracks.
//! * [`events_jsonl`] renders one JSON object per line for ad-hoc
//!   processing.
//!
//! [`Heap::trace_dropped`]: crate::Heap::trace_dropped
//! [`HeapStats`]: crate::HeapStats

use crate::stats::HeapStats;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Identifies one of the eight collection phases (see `collect::run`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GcPhase {
    /// Phase 1: snapshot the from-space, reset cursors.
    Flip,
    /// Phase 2: forward registered roots.
    Roots,
    /// Phase 3: scan dirty old-generation segments.
    Remset,
    /// Phase 4: the main Cheney sweep.
    Sweep,
    /// Phase 5: the guardian protected-list pass.
    Guardian,
    /// Phase 6: the Dickey-baseline finalizer pass.
    Finalizer,
    /// Phase 7: the weak-pair pass (may fire twice under the
    /// `ablate_weak_pass_first` ablation).
    Weak,
    /// Phase 8: return from-space segments to the free pool.
    Reclaim,
}

impl GcPhase {
    /// Stable lower-case name, used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            GcPhase::Flip => "flip",
            GcPhase::Roots => "roots",
            GcPhase::Remset => "remset",
            GcPhase::Sweep => "sweep",
            GcPhase::Guardian => "guardian",
            GcPhase::Finalizer => "finalizer",
            GcPhase::Weak => "weak",
            GcPhase::Reclaim => "reclaim",
        }
    }
}

/// A typed trace event. All payloads are plain scalars so emitting an
/// event never allocates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GcEvent {
    /// A collection started.
    CollectionBegin {
        /// 1-based collection index.
        index: u64,
        /// Highest generation collected.
        collected_generation: u8,
        /// Generation survivors are copied into.
        target_generation: u8,
    },
    /// A collection phase finished.
    PhaseEnd {
        /// Which phase.
        phase: GcPhase,
        /// Wall-clock nanoseconds the phase took.
        dur_ns: u64,
    },
    /// Words copied out of one source generation during a collection
    /// (emitted once per generation with a non-zero count, just before
    /// [`GcEvent::CollectionEnd`]; the counts sum to the collection's
    /// `words_copied`).
    GenCopied {
        /// Source generation the words were copied from.
        generation: u8,
        /// Words copied out of it.
        words: u64,
    },
    /// The guardian pass partitioned the protected lists (Block 1).
    GuardianPartition {
        /// Entries visited across the processed lists.
        visited: u64,
        /// Entries whose object was still accessible (pend-hold-list).
        pend_hold: u64,
        /// Entries whose object was inaccessible (pend-final-list).
        pend_final: u64,
    },
    /// One iteration of the pend-final-list fixpoint loop resurrected
    /// entries (Block 2; emitted only for non-empty rounds).
    GuardianRound {
        /// 1-based loop iteration.
        round: u64,
        /// Entries finalized (their representatives resurrected and
        /// enqueued) this round.
        resurrected: u64,
    },
    /// The guardian pass finished (after Block 3).
    GuardianOutcome {
        /// Entries finalized across all rounds.
        finalized: u64,
        /// Entries held (object alive, migrated to the target list).
        held: u64,
        /// Entries dropped (their guardian was unreachable).
        dropped: u64,
        /// Fixpoint loop iterations (including the final empty one).
        loop_iterations: u64,
    },
    /// One weak-pass run finished (fires twice per collection under the
    /// `ablate_weak_pass_first` ablation; counts are per-run deltas).
    WeakSweep {
        /// Weak pairs examined.
        scanned: u64,
        /// Weak cars overwritten with `#f`.
        broken: u64,
        /// Weak cars updated to a forwarded referent.
        forwarded: u64,
    },
    /// An element was appended to a tconc queue.
    TconcAppend {
        /// `true` for collector-side appends (the guardian pass enqueuing
        /// a finalized representative), `false` for mutator appends.
        during_collection: bool,
    },
    /// Segments were acquired from the OS or the free pool.
    SegmentsAcquired {
        /// Number of segments (a run counts one per segment).
        count: u64,
    },
    /// A from-space run was returned to the free pool.
    SegmentsReleased {
        /// Number of segments in the run.
        count: u64,
    },
    /// A sampled mutator allocation (every Nth per
    /// [`TraceConfig::alloc_sample_every`]).
    AllocSample {
        /// Space name: `"pair"`, `"weak-pair"`, `"typed"`, or `"pure"`.
        space: &'static str,
        /// Allocation size in words.
        words: u64,
        /// Allocation site, if the embedding tagged one (see
        /// [`Heap::set_alloc_site`](crate::Heap::set_alloc_site)).
        site: Option<&'static str>,
    },
    /// Live census of one generation, taken at collection end when
    /// [`TraceConfig::census_at_collection_end`] is set.
    CensusGen {
        /// The generation.
        generation: u8,
        /// Live ordinary pairs.
        pairs: u64,
        /// Live weak pairs.
        weak_pairs: u64,
        /// Live typed objects.
        objects: u64,
        /// Live words (pairs + weak pairs + typed objects).
        words: u64,
        /// Guardian protected-list entries parked at this generation.
        protected_entries: u64,
    },
    /// A collection finished; payload mirrors the headline counters of
    /// the [`CollectionReport`](crate::CollectionReport).
    CollectionEnd {
        /// 1-based collection index.
        index: u64,
        /// Total words copied.
        words_copied: u64,
        /// Pairs copied.
        pairs_copied: u64,
        /// Typed objects copied.
        objects_copied: u64,
        /// Guardian entries visited.
        guardian_entries_visited: u64,
        /// Weak pairs scanned.
        weak_pairs_scanned: u64,
        /// Wall-clock nanoseconds for the whole collection.
        dur_ns: u64,
    },
    /// An autotuner policy decision (see
    /// [`Heap::enable_autotune`](crate::Heap::enable_autotune)): one knob
    /// step, proposed in `Observe` mode or applied in `Active` mode. The
    /// full sensor snapshot behind each decision is on the
    /// [`PolicyDecision`](crate::PolicyDecision) log; this event carries
    /// the headline scalars for timeline correlation.
    PolicyChange {
        /// Knob name: `"trigger_bytes"`, `"frequency_scale"`,
        /// `"tenure_cap"`, or `"max_segments"`.
        knob: &'static str,
        /// Old knob value (`0` encodes "unbounded" for `max_segments`).
        from: u64,
        /// New knob value.
        to: u64,
        /// Whether the change was applied to the live config.
        applied: bool,
        /// 1-based index of the collection the decision followed.
        collection: u64,
        /// The headline sensor value that justified the step (EWMA ppm
        /// for ratio knobs, EWMA entry count for the tenure knob).
        sensor: u64,
    },
    /// An application-level marker emitted through
    /// [`Heap::trace_app_event`](crate::Heap::trace_app_event) — the
    /// runtime layer uses these for port finalization and transport
    /// rehash markers.
    App {
        /// Static marker name.
        name: &'static str,
    },
}

/// A ring-buffer entry: an event with its timestamp and sequence number.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TracedEvent {
    /// Nanoseconds since tracing was enabled (monotonic).
    pub ts_ns: u64,
    /// 1-based sequence number; contiguous unless events were dropped.
    pub seq: u64,
    /// The event.
    pub event: GcEvent,
}

/// Tracing configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events; the oldest events are overwritten when it
    /// fills (default 65 536, ≈ 2.5 MB).
    pub capacity: usize,
    /// Emit an [`GcEvent::AllocSample`] for every Nth mutator allocation;
    /// `0` disables allocation sampling (the default — collections are
    /// rare, allocations are not).
    pub alloc_sample_every: u32,
    /// Take a live-heap census at the end of every collection and emit a
    /// [`GcEvent::CensusGen`] per generation (default off; a census walks
    /// every live segment).
    pub census_at_collection_end: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 65_536,
            alloc_sample_every: 0,
            census_at_collection_end: false,
        }
    }
}

/// The event ring. Owned by the heap behind an `Option<Box<_>>` so the
/// disabled-mode cost of every instrumentation site is one null test.
pub(crate) struct Tracer {
    pub(crate) cfg: TraceConfig,
    ring: VecDeque<TracedEvent>,
    epoch: Instant,
    seq: u64,
    dropped: u64,
    /// Countdown state for allocation sampling.
    pub(crate) alloc_tick: u32,
}

impl Tracer {
    pub(crate) fn new(mut cfg: TraceConfig) -> Tracer {
        cfg.capacity = cfg.capacity.max(1);
        Tracer {
            ring: VecDeque::with_capacity(cfg.capacity),
            epoch: Instant::now(),
            seq: 0,
            dropped: 0,
            alloc_tick: 0,
            cfg,
        }
    }

    /// Records an event, overwriting the oldest if the ring is full.
    pub(crate) fn emit(&mut self, event: GcEvent) {
        if self.ring.len() == self.cfg.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.seq += 1;
        self.ring.push_back(TracedEvent {
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            seq: self.seq,
            event,
        });
    }

    pub(crate) fn drain(&mut self) -> Vec<TracedEvent> {
        self.ring.drain(..).collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Per-site allocation attribution, keyed by the static site names the
/// embedding passes to [`Heap::set_alloc_site`](crate::Heap::set_alloc_site).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Allocations attributed to the site.
    pub allocations: u64,
    /// Words attributed to the site.
    pub words: u64,
}

#[derive(Default)]
pub(crate) struct SiteProfile {
    /// `BTreeMap` for deterministic iteration order in reports.
    pub(crate) sites: std::collections::BTreeMap<&'static str, SiteStats>,
}

// ----------------------------------------------------------------------
// Replay
// ----------------------------------------------------------------------

/// Folds a drained event stream back into the collector-side fields of
/// [`HeapStats`]: collections, total words copied, guardian entries
/// visited, weak pairs scanned, total GC time, and the per-phase time
/// totals. The result must equal the heap's own accounting exactly —
/// the event-vs-counter parity contract. Mutator-side allocation counters
/// are not derivable from a (sampled) trace and stay zero.
pub fn replay_stats(events: &[TracedEvent]) -> HeapStats {
    let mut out = HeapStats::default();
    for e in events {
        match e.event {
            GcEvent::PhaseEnd { phase, dur_ns } => {
                let d = Duration::from_nanos(dur_ns);
                let p = &mut out.total_phase_times;
                match phase {
                    GcPhase::Flip => p.flip += d,
                    GcPhase::Roots => p.roots += d,
                    GcPhase::Remset => p.remset += d,
                    GcPhase::Sweep => p.sweep += d,
                    GcPhase::Guardian => p.guardian += d,
                    GcPhase::Finalizer => p.finalizer += d,
                    GcPhase::Weak => p.weak += d,
                    GcPhase::Reclaim => p.reclaim += d,
                }
            }
            GcEvent::CollectionEnd {
                words_copied,
                guardian_entries_visited,
                weak_pairs_scanned,
                dur_ns,
                ..
            } => {
                out.collections += 1;
                out.total_words_copied += words_copied;
                out.total_guardian_entries_visited += guardian_entries_visited;
                out.total_weak_pairs_scanned += weak_pairs_scanned;
                out.total_gc_time += Duration::from_nanos(dur_ns);
            }
            _ => {}
        }
    }
    out
}

// ----------------------------------------------------------------------
// Exporters
// ----------------------------------------------------------------------

/// The event's exporter-facing shape: a stable name plus key/value args.
fn event_fields(e: &GcEvent) -> (&'static str, Vec<(&'static str, String)>) {
    fn u(v: u64) -> String {
        v.to_string()
    }
    match *e {
        GcEvent::CollectionBegin {
            index,
            collected_generation,
            target_generation,
        } => (
            "collection_begin",
            vec![
                ("index", u(index)),
                ("collected_generation", u(collected_generation as u64)),
                ("target_generation", u(target_generation as u64)),
            ],
        ),
        GcEvent::PhaseEnd { phase, dur_ns } => (
            "phase_end",
            vec![
                ("phase", format!("\"{}\"", phase.name())),
                ("dur_ns", u(dur_ns)),
            ],
        ),
        GcEvent::GenCopied { generation, words } => (
            "gen_copied",
            vec![("generation", u(generation as u64)), ("words", u(words))],
        ),
        GcEvent::GuardianPartition {
            visited,
            pend_hold,
            pend_final,
        } => (
            "guardian_partition",
            vec![
                ("visited", u(visited)),
                ("pend_hold", u(pend_hold)),
                ("pend_final", u(pend_final)),
            ],
        ),
        GcEvent::GuardianRound { round, resurrected } => (
            "guardian_round",
            vec![("round", u(round)), ("resurrected", u(resurrected))],
        ),
        GcEvent::GuardianOutcome {
            finalized,
            held,
            dropped,
            loop_iterations,
        } => (
            "guardian_outcome",
            vec![
                ("finalized", u(finalized)),
                ("held", u(held)),
                ("dropped", u(dropped)),
                ("loop_iterations", u(loop_iterations)),
            ],
        ),
        GcEvent::WeakSweep {
            scanned,
            broken,
            forwarded,
        } => (
            "weak_sweep",
            vec![
                ("scanned", u(scanned)),
                ("broken", u(broken)),
                ("forwarded", u(forwarded)),
            ],
        ),
        GcEvent::TconcAppend { during_collection } => (
            "tconc_append",
            vec![("during_collection", during_collection.to_string())],
        ),
        GcEvent::SegmentsAcquired { count } => ("segments_acquired", vec![("count", u(count))]),
        GcEvent::SegmentsReleased { count } => ("segments_released", vec![("count", u(count))]),
        GcEvent::AllocSample { space, words, site } => (
            "alloc_sample",
            vec![
                ("space", format!("\"{space}\"")),
                ("words", u(words)),
                (
                    "site",
                    match site {
                        Some(s) => format!("\"{s}\""),
                        None => "null".to_string(),
                    },
                ),
            ],
        ),
        GcEvent::CensusGen {
            generation,
            pairs,
            weak_pairs,
            objects,
            words,
            protected_entries,
        } => (
            "census_gen",
            vec![
                ("generation", u(generation as u64)),
                ("pairs", u(pairs)),
                ("weak_pairs", u(weak_pairs)),
                ("objects", u(objects)),
                ("words", u(words)),
                ("protected_entries", u(protected_entries)),
            ],
        ),
        GcEvent::CollectionEnd {
            index,
            words_copied,
            pairs_copied,
            objects_copied,
            guardian_entries_visited,
            weak_pairs_scanned,
            dur_ns,
        } => (
            "collection_end",
            vec![
                ("index", u(index)),
                ("words_copied", u(words_copied)),
                ("pairs_copied", u(pairs_copied)),
                ("objects_copied", u(objects_copied)),
                ("guardian_entries_visited", u(guardian_entries_visited)),
                ("weak_pairs_scanned", u(weak_pairs_scanned)),
                ("dur_ns", u(dur_ns)),
            ],
        ),
        GcEvent::PolicyChange {
            knob,
            from,
            to,
            applied,
            collection,
            sensor,
        } => (
            "policy_change",
            vec![
                ("knob", format!("\"{knob}\"")),
                ("from", u(from)),
                ("to", u(to)),
                ("applied", applied.to_string()),
                ("collection", u(collection)),
                ("sensor", u(sensor)),
            ],
        ),
        GcEvent::App { name } => ("app", vec![("name", format!("\"{name}\""))]),
    }
}

fn args_json(fields: &[(&'static str, String)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{k}\":{v}"));
    }
    s.push('}');
    s
}

/// Renders events as one JSON object per line (`ts_ns`, `seq`, `type`,
/// then the event's own fields), with deterministic key order.
pub fn events_jsonl(events: &[TracedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let (name, fields) = event_fields(&e.event);
        out.push_str(&format!(
            "{{\"ts_ns\":{},\"seq\":{},\"type\":\"{}\"",
            e.ts_ns, e.seq, name
        ));
        for (k, v) in &fields {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push_str("}\n");
    }
    out
}

/// Renders events as a Chrome `trace_event` JSON document (open in
/// `chrome://tracing` or Perfetto). Collections become begin/end spans,
/// phases complete (`"X"`) slices placed by their end timestamp and
/// duration, censuses counter (`"C"`) tracks, and everything else instant
/// (`"i"`) events.
pub fn chrome_trace_json(events: &[TracedEvent]) -> String {
    // trace_event timestamps are microseconds; keep sub-µs precision.
    fn us(ns: u64) -> String {
        format!("{:.3}", ns as f64 / 1000.0)
    }
    let mut entries: Vec<String> = Vec::with_capacity(events.len());
    for e in events {
        let (name, fields) = event_fields(&e.event);
        let args = args_json(&fields);
        let entry = match e.event {
            GcEvent::CollectionBegin { .. } => format!(
                "{{\"name\":\"collection\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":1,\"args\":{}}}",
                us(e.ts_ns),
                args
            ),
            GcEvent::CollectionEnd { .. } => format!(
                "{{\"name\":\"collection\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":1,\"args\":{}}}",
                us(e.ts_ns),
                args
            ),
            GcEvent::PhaseEnd { phase, dur_ns } => format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{}}}",
                phase.name(),
                us(e.ts_ns.saturating_sub(dur_ns)),
                us(dur_ns),
                args
            ),
            GcEvent::CensusGen {
                generation,
                pairs,
                weak_pairs,
                objects,
                ..
            } => format!(
                "{{\"name\":\"census.gen{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":1,\
                 \"args\":{{\"pairs\":{},\"weak_pairs\":{},\"objects\":{}}}}}",
                generation,
                us(e.ts_ns),
                pairs,
                weak_pairs,
                objects
            ),
            _ => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{}}}",
                name,
                us(e.ts_ns),
                args
            ),
        };
        entries.push(entry);
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\"}}",
        entries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, event: GcEvent) -> TracedEvent {
        TracedEvent {
            ts_ns: seq * 1000,
            seq,
            event,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 2,
            ..TraceConfig::default()
        });
        t.emit(GcEvent::SegmentsAcquired { count: 1 });
        t.emit(GcEvent::SegmentsAcquired { count: 2 });
        t.emit(GcEvent::SegmentsAcquired { count: 3 });
        assert_eq!(t.dropped(), 1);
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, GcEvent::SegmentsAcquired { count: 2 });
        assert_eq!(events[1].seq, 3, "sequence numbers survive drops");
        assert!(t.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn replay_accumulates_collections_and_phases() {
        let events = [
            ev(
                1,
                GcEvent::PhaseEnd {
                    phase: GcPhase::Sweep,
                    dur_ns: 500,
                },
            ),
            ev(
                2,
                GcEvent::PhaseEnd {
                    phase: GcPhase::Weak,
                    dur_ns: 40,
                },
            ),
            ev(
                3,
                GcEvent::CollectionEnd {
                    index: 1,
                    words_copied: 10,
                    pairs_copied: 4,
                    objects_copied: 1,
                    guardian_entries_visited: 2,
                    weak_pairs_scanned: 3,
                    dur_ns: 700,
                },
            ),
        ];
        let stats = replay_stats(&events);
        assert_eq!(stats.collections, 1);
        assert_eq!(stats.total_words_copied, 10);
        assert_eq!(stats.total_guardian_entries_visited, 2);
        assert_eq!(stats.total_weak_pairs_scanned, 3);
        assert_eq!(stats.total_gc_time, Duration::from_nanos(700));
        assert_eq!(stats.total_phase_times.sweep, Duration::from_nanos(500));
        assert_eq!(stats.total_phase_times.weak, Duration::from_nanos(40));
        assert_eq!(stats.total_phase_times.flip, Duration::ZERO);
    }

    #[test]
    fn exporters_emit_every_event_kind() {
        let all = [
            GcEvent::CollectionBegin {
                index: 1,
                collected_generation: 0,
                target_generation: 1,
            },
            GcEvent::PhaseEnd {
                phase: GcPhase::Flip,
                dur_ns: 10,
            },
            GcEvent::GenCopied {
                generation: 0,
                words: 8,
            },
            GcEvent::GuardianPartition {
                visited: 3,
                pend_hold: 1,
                pend_final: 2,
            },
            GcEvent::GuardianRound {
                round: 1,
                resurrected: 2,
            },
            GcEvent::GuardianOutcome {
                finalized: 2,
                held: 1,
                dropped: 0,
                loop_iterations: 2,
            },
            GcEvent::WeakSweep {
                scanned: 5,
                broken: 1,
                forwarded: 2,
            },
            GcEvent::TconcAppend {
                during_collection: true,
            },
            GcEvent::SegmentsAcquired { count: 2 },
            GcEvent::SegmentsReleased { count: 2 },
            GcEvent::AllocSample {
                space: "pair",
                words: 2,
                site: Some("cons"),
            },
            GcEvent::CensusGen {
                generation: 1,
                pairs: 7,
                weak_pairs: 1,
                objects: 2,
                words: 20,
                protected_entries: 1,
            },
            GcEvent::CollectionEnd {
                index: 1,
                words_copied: 8,
                pairs_copied: 4,
                objects_copied: 0,
                guardian_entries_visited: 3,
                weak_pairs_scanned: 5,
                dur_ns: 100,
            },
            GcEvent::PolicyChange {
                knob: "trigger_bytes",
                from: 1_048_576,
                to: 2_097_152,
                applied: true,
                collection: 1,
                sensor: 500_000,
            },
            GcEvent::App { name: "port.close" },
        ];
        let traced: Vec<TracedEvent> = all
            .iter()
            .enumerate()
            .map(|(i, &event)| ev(i as u64 + 1, event))
            .collect();
        let jsonl = events_jsonl(&traced);
        assert_eq!(jsonl.lines().count(), all.len());
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"ts_ns\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        let chrome = chrome_trace_json(&traced);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"C\""));
        assert!(chrome.contains("\"ph\":\"i\""));
    }

    #[test]
    fn phase_slices_are_placed_by_start_time() {
        let traced = [TracedEvent {
            ts_ns: 5_000,
            seq: 1,
            event: GcEvent::PhaseEnd {
                phase: GcPhase::Sweep,
                dur_ns: 2_000,
            },
        }];
        let chrome = chrome_trace_json(&traced);
        // end 5µs − dur 2µs → starts at 3µs.
        assert!(chrome.contains("\"ts\":3.000"), "{chrome}");
        assert!(chrome.contains("\"dur\":2.000"), "{chrome}");
    }
}
