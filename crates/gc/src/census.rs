//! Live-heap census: per-generation, per-kind object and word counts.
//!
//! Where [`Heap::generation_usage`](crate::Heap::generation_usage) reads
//! segment watermarks, the census *walks object headers*, so it can break
//! typed-space occupancy down by [`ObjKind`] — the "what is actually
//! alive, and where" view the drag/liveness literature builds on. A
//! census visits every live segment, so it is a diagnostic tool, not a
//! hot-path one; the tracer can take one automatically at the end of
//! every collection (see
//! [`TraceConfig::census_at_collection_end`](crate::TraceConfig)).
//!
//! A census is only meaningful at a safe point (outside a collection):
//! mid-collection, from-space segments hold broken hearts where headers
//! used to be.

use crate::header::{Header, ObjKind};
use crate::heap::Heap;

/// Objects and words attributed to one [`ObjKind`] within a generation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KindCensus {
    /// Live objects of the kind.
    pub objects: u64,
    /// Words they occupy (headers included).
    pub words: u64,
}

/// Census of one generation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenCensus {
    /// The generation.
    pub generation: u8,
    /// Segments assigned to it (run tails included).
    pub segments: u64,
    /// Live ordinary pairs.
    pub pairs: u64,
    /// Live weak pairs (the weak-pair *population* the weak pass scans).
    pub weak_pairs: u64,
    /// Per-kind breakdown of typed objects, indexed by
    /// [`ObjKind::index`].
    pub kinds: [KindCensus; ObjKind::COUNT],
    /// Guardian protected-list entries parked at this generation — the
    /// guardian queue depth the next collection of this generation will
    /// visit.
    pub protected_entries: u64,
}

impl GenCensus {
    /// Total typed objects across all kinds.
    pub fn objects(&self) -> u64 {
        self.kinds.iter().map(|k| k.objects).sum()
    }

    /// Total live words: pairs, weak pairs, and typed objects.
    pub fn words(&self) -> u64 {
        2 * (self.pairs + self.weak_pairs) + self.kinds.iter().map(|k| k.words).sum::<u64>()
    }
}

/// Census of the whole heap, youngest generation first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapCensus {
    /// One entry per generation.
    pub generations: Vec<GenCensus>,
}

impl HeapCensus {
    /// Total live words across all generations.
    pub fn total_words(&self) -> u64 {
        self.generations.iter().map(GenCensus::words).sum()
    }

    /// Total live objects (pairs, weak pairs, and typed) across all
    /// generations.
    pub fn total_objects(&self) -> u64 {
        self.generations
            .iter()
            .map(|g| g.pairs + g.weak_pairs + g.objects())
            .sum()
    }

    /// Deterministic JSON rendering: an array of per-generation objects
    /// with a fixed key order and a per-kind breakdown.
    pub fn to_json(&self) -> String {
        let gens: Vec<String> = self
            .generations
            .iter()
            .map(|g| {
                let kinds: Vec<String> = ObjKind::ALL
                    .iter()
                    .map(|&k| {
                        let kc = g.kinds[k.index()];
                        format!(
                            "\"{}\":{{\"objects\":{},\"words\":{}}}",
                            k.name(),
                            kc.objects,
                            kc.words
                        )
                    })
                    .collect();
                format!(
                    "{{\"generation\":{},\"segments\":{},\"pairs\":{},\"weak_pairs\":{},\
                     \"protected_entries\":{},\"words\":{},\"kinds\":{{{}}}}}",
                    g.generation,
                    g.segments,
                    g.pairs,
                    g.weak_pairs,
                    g.protected_entries,
                    g.words(),
                    kinds.join(",")
                )
            })
            .collect();
        format!("{{\"generations\":[{}]}}", gens.join(","))
    }
}

impl Heap {
    /// Takes a live census by walking every head segment: pair spaces by
    /// watermark, typed and pure spaces header by header (large runs are
    /// walked across their consecutive segments). Call only at safe
    /// points — never from inside a finalization callback running during
    /// a collection.
    pub fn census(&self) -> HeapCensus {
        use guardians_segments::Space;
        let mut out: Vec<GenCensus> = (0..self.config.generations)
            .map(|g| GenCensus {
                generation: g,
                ..GenCensus::default()
            })
            .collect();
        for (seg, info) in self.segs.iter() {
            let slot = &mut out[info.generation as usize];
            slot.segments += 1;
            if !info.is_head() {
                continue;
            }
            let used = info.used as usize;
            match info.space {
                Space::Pair => slot.pairs += (used / 2) as u64,
                Space::WeakPair => slot.weak_pairs += (used / 2) as u64,
                Space::Typed | Space::Pure => {
                    // Word addresses are linear across a run's consecutive
                    // segments, so `base.add(pos)` reaches every word of a
                    // large object.
                    let base = self.segs.base_addr(seg);
                    let mut pos = 0;
                    while pos < used {
                        let header =
                            Header::decode(self.segs.word(base.add(pos))).unwrap_or_else(|| {
                                panic!("census: corrupt header in {seg:?} at word {pos}")
                            });
                        let k = &mut slot.kinds[header.kind.index()];
                        k.objects += 1;
                        k.words += header.total_words() as u64;
                        pos += header.total_words();
                    }
                }
            }
        }
        for (i, list) in self.protected.iter().enumerate() {
            if let Some(slot) = out.get_mut(i) {
                slot.protected_entries = list.len() as u64;
            }
        }
        HeapCensus { generations: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn census_counts_kinds_and_generations() {
        let mut h = Heap::default();
        let keep = h.root_vec();
        for i in 0..10 {
            let p = h.cons(Value::fixnum(i), Value::NIL);
            keep.push(p);
        }
        let w = h.weak_cons(Value::NIL, Value::NIL);
        keep.push(w);
        let v = h.make_vector(5, Value::fixnum(1));
        keep.push(v);
        let s = h.make_string("hello");
        keep.push(s);
        let f = h.make_flonum(1.5);
        keep.push(f);

        let census = h.census();
        let g0 = &census.generations[0];
        assert_eq!(g0.pairs, 10);
        assert_eq!(g0.weak_pairs, 1);
        assert_eq!(g0.kinds[ObjKind::Vector.index()].objects, 1);
        assert_eq!(g0.kinds[ObjKind::Vector.index()].words, 6);
        assert_eq!(g0.kinds[ObjKind::String.index()].objects, 1);
        assert_eq!(g0.kinds[ObjKind::Flonum.index()].objects, 1);

        h.collect(0);
        let census = h.census();
        assert_eq!(census.generations[0].pairs, 0, "young space emptied");
        let g1 = &census.generations[1];
        assert_eq!(g1.pairs, 10, "pairs promoted");
        assert_eq!(g1.weak_pairs, 1);
        assert_eq!(g1.kinds[ObjKind::Vector.index()].objects, 1);
    }

    #[test]
    fn census_words_match_generation_usage() {
        let mut h = Heap::default();
        let keep = h.root_vec();
        for i in 0..100 {
            let p = h.cons(Value::fixnum(i), Value::NIL);
            keep.push(p);
        }
        let v = h.make_vector(700, Value::NIL); // multi-segment run
        keep.push(v);
        h.collect(0);
        let census = h.census();
        let usage = h.generation_usage();
        for (g, u) in usage.iter().enumerate() {
            assert_eq!(
                census.generations[g].words(),
                u.used_words as u64,
                "generation {g}: header walk must agree with watermarks"
            );
        }
        assert_eq!(
            census.generations[1].kinds[ObjKind::Vector.index()].words,
            701
        );
    }

    #[test]
    fn census_sees_guardian_queue_depths() {
        let mut h = Heap::default();
        let g = h.make_guardian();
        let x = h.cons(Value::NIL, Value::NIL);
        let r = h.root(x);
        g.register(&mut h, x);
        assert_eq!(h.census().generations[0].protected_entries, 1);
        h.collect(0);
        assert_eq!(h.census().generations[0].protected_entries, 0);
        assert_eq!(h.census().generations[1].protected_entries, 1);
        drop(r);
    }

    #[test]
    fn census_json_is_deterministic() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        let _r = h.root(p);
        let a = h.census().to_json();
        let b = h.census().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"generations\":[{\"generation\":0,"), "{a}");
        assert!(a.contains("\"vector\""), "{a}");
    }
}
