//! Collection reports and cumulative heap statistics.
//!
//! The paper's claims are *work-proportionality* claims ("the additional
//! overhead within a generation-based garbage collector is proportional to
//! the work already done there"). Wall-clock time on 2026 hardware cannot
//! be compared with 1993 hardware, so the collector records deterministic
//! work counters — objects copied, guardian entries visited, weak pairs
//! scanned — which the benchmark harness uses to check the claims exactly,
//! with wall-clock numbers as corroboration.
//!
//! These structs are the *programmatic* accounting surface. The export
//! surface is the heap's [`MetricsRegistry`](crate::MetricsRegistry)
//! (named counters, gauges, and pause histograms, snapshot-able as
//! deterministic JSON), which every collection report is folded into; the
//! event trace ([`crate::GcEvent`]) must replay back to these fields
//! exactly — the parity contract tested in the bench crate.

use std::time::Duration;

/// Wall-clock time spent in each collection phase, in phase order. The
/// guardian phase includes the Kleene sweeps its fixpoint loop triggers;
/// `sweep` is the main (phase 4) sweep only.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Phase 1: snapshot the from-space, reset cursors.
    pub flip: Duration,
    /// Phase 2: forward registered roots.
    pub roots: Duration,
    /// Phase 3: scan dirty old-generation segments.
    pub remset: Duration,
    /// Phase 4: the main Cheney sweep of copied objects.
    pub sweep: Duration,
    /// Phase 5: the guardian protected-list pass (with its sweeps).
    pub guardian: Duration,
    /// Phase 6: the collector-invoked finalization baseline pass.
    pub finalizer: Duration,
    /// Phase 7: break or forward weak-pair cars.
    pub weak: Duration,
    /// Phase 8: return from-space segments to the free pool.
    pub reclaim: Duration,
    /// Thread-seconds the parallel engine's workers spent inside their
    /// collection regions, summed over all workers. This is *work* time,
    /// not wall time: with 4 busy workers it can approach 4× the wall
    /// time of the phases that spawned them. Deliberately **not** part of
    /// [`PhaseTimes::total`], which remains the wall-clock pause
    /// breakdown (and the quantity the event trace's `PhaseEnd` records
    /// must sum to). Always zero under the serial engine.
    pub worker_time: Duration,
}

impl PhaseTimes {
    /// Sum of all phase durations: the wall-clock pause breakdown.
    /// Excludes [`PhaseTimes::worker_time`], which counts the same wall
    /// time once per busy worker.
    pub fn total(&self) -> Duration {
        self.flip
            + self.roots
            + self.remset
            + self.sweep
            + self.guardian
            + self.finalizer
            + self.weak
            + self.reclaim
    }

    pub(crate) fn absorb(&mut self, other: &PhaseTimes) {
        self.flip += other.flip;
        self.roots += other.roots;
        self.remset += other.remset;
        self.sweep += other.sweep;
        self.guardian += other.guardian;
        self.finalizer += other.finalizer;
        self.weak += other.weak;
        self.reclaim += other.reclaim;
        self.worker_time += other.worker_time;
    }
}

/// Per-collection report, returned by [`Heap::collect`](crate::Heap::collect).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CollectionReport {
    /// 1-based index of this collection.
    pub collection_index: u64,
    /// Highest generation collected (all younger ones were collected too).
    pub collected_generation: u8,
    /// Generation survivors were copied into.
    pub target_generation: u8,
    /// Pairs (ordinary + weak) copied to the target generation.
    pub pairs_copied: u64,
    /// Typed objects copied to the target generation.
    pub objects_copied: u64,
    /// Total words copied.
    pub words_copied: u64,
    /// Root cells traced.
    pub roots_traced: u64,
    /// Dirty old-generation segments scanned for the remembered set.
    pub dirty_segments_scanned: u64,
    /// Guardian entries visited across all protected lists processed. This
    /// is the central counter for the generation-friendliness experiment:
    /// with per-generation protected lists it excludes entries parked in
    /// older generations.
    pub guardian_entries_visited: u64,
    /// Guardian entries whose object was still accessible (moved to the
    /// target generation's protected list).
    pub guardian_entries_held: u64,
    /// Guardian entries whose object was proven inaccessible and whose
    /// representative was enqueued on the guardian's tconc.
    pub guardian_entries_finalized: u64,
    /// Guardian entries dropped because their guardian (tconc) itself was
    /// no longer accessible.
    pub guardian_entries_dropped: u64,
    /// Iterations of the paper's `pend-final-list` fixpoint loop.
    pub guardian_loop_iterations: u64,
    /// Weak pairs examined in the post-collection weak pass.
    pub weak_pairs_scanned: u64,
    /// Weak cars overwritten with `#f` (referent died).
    pub weak_cars_broken: u64,
    /// Weak cars updated to a forwarded referent.
    pub weak_cars_forwarded: u64,
    /// Objects registered with [`register_for_finalization`]
    /// (the Dickey-style baseline) found dead this collection; their ids.
    ///
    /// [`register_for_finalization`]: crate::Heap::register_for_finalization
    pub finalized_ids: Vec<u64>,
    /// Words of pointer-free (pure-space) objects copied without any
    /// scanning — work the space segregation saved.
    pub pure_words_skipped: u64,
    /// Segments returned to the free pool (the old from-space).
    pub segments_freed: u64,
    /// Segments allocated for the to-space during this collection.
    pub segments_allocated: u64,
    /// Wall-clock duration of the collection. For an incremental
    /// collection this is the *sum* of all increment pauses, not the
    /// begin-to-end wall time (mutator time between increments is
    /// excluded).
    pub duration: Duration,
    /// Per-phase breakdown of `duration`.
    pub phases: PhaseTimes,
    /// Number of bounded-pause increments the collection ran in. `0`
    /// means a single stop-the-world pause (the serial and parallel
    /// engines); the incremental engine reports at least 1.
    pub increments: u64,
}

impl CollectionReport {
    /// Copy throughput: words copied per second of total pause time.
    /// `0.0` when nothing was copied or the pause was too short to time.
    pub fn words_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.words_copied as f64 / secs
        } else {
            0.0
        }
    }
}

/// Cumulative statistics over the lifetime of a heap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Collections performed.
    pub collections: u64,
    /// Pairs allocated by the mutator.
    pub pairs_allocated: u64,
    /// Typed objects allocated by the mutator.
    pub objects_allocated: u64,
    /// Words allocated by the mutator.
    pub words_allocated: u64,
    /// Guardian registrations performed.
    pub guardian_registrations: u64,
    /// Successful tconc dequeues — guardian retrievals handed back to the
    /// mutator (plus any other tconc clients).
    pub guardian_polls: u64,
    /// Total words copied by all collections.
    pub total_words_copied: u64,
    /// Total guardian entries visited by all collections.
    pub total_guardian_entries_visited: u64,
    /// Total weak pairs scanned by all collections.
    pub total_weak_pairs_scanned: u64,
    /// Total time spent collecting.
    pub total_gc_time: Duration,
    /// Per-phase totals across all collections.
    pub total_phase_times: PhaseTimes,
}

impl HeapStats {
    pub(crate) fn absorb(&mut self, report: &CollectionReport) {
        self.collections += 1;
        self.total_words_copied += report.words_copied;
        self.total_guardian_entries_visited += report.guardian_entries_visited;
        self.total_weak_pairs_scanned += report.weak_pairs_scanned;
        self.total_gc_time += report.duration;
        self.total_phase_times.absorb(&report.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut stats = HeapStats::default();
        let report = CollectionReport {
            words_copied: 10,
            guardian_entries_visited: 3,
            weak_pairs_scanned: 2,
            duration: Duration::from_millis(5),
            ..CollectionReport::default()
        };
        stats.absorb(&report);
        stats.absorb(&report);
        assert_eq!(stats.collections, 2);
        assert_eq!(stats.total_words_copied, 20);
        assert_eq!(stats.total_guardian_entries_visited, 6);
        assert_eq!(stats.total_weak_pairs_scanned, 4);
        assert_eq!(stats.total_gc_time, Duration::from_millis(10));
    }

    #[test]
    fn defaults_are_zero() {
        let r = CollectionReport::default();
        assert_eq!(r.words_copied, 0);
        assert!(r.finalized_ids.is_empty());
    }
}
