//! Root registration.
//!
//! [`Value`]s held in Rust variables are invisible to the collector, so a
//! value that must survive a collection is placed in a [`Rooted`] cell (or
//! a [`RootedVec`] shadow stack, which is what the Scheme interpreter
//! uses). The heap keeps weak references to the cells; dropping a cell
//! unregisters it automatically — this is exactly how dropping a
//! [`Guardian`](crate::Guardian) handle "cancels finalization of a group
//! of objects by simply dropping all references to the guardian".

use crate::value::Value;
use std::cell::RefCell;
use std::rc::{Rc, Weak};

/// An owning handle to a GC root holding a single value.
///
/// The collector updates the cell in place when the referent moves. Clones
/// share the same cell.
#[derive(Clone, Debug)]
pub struct Rooted {
    cell: Rc<RefCell<Value>>,
}

impl Rooted {
    /// The current (possibly relocated) value.
    #[inline]
    pub fn get(&self) -> Value {
        *self.cell.borrow()
    }

    /// Replaces the rooted value.
    #[inline]
    pub fn set(&self, v: Value) {
        *self.cell.borrow_mut() = v;
    }
}

/// An owning handle to a GC-rooted vector of values — a shadow stack.
///
/// Clones share the same underlying vector.
#[derive(Clone, Debug, Default)]
pub struct RootedVec {
    cells: Rc<RefCell<Vec<Value>>>,
}

impl RootedVec {
    /// Pushes a value; returns its index.
    #[inline]
    pub fn push(&self, v: Value) -> usize {
        let mut cells = self.cells.borrow_mut();
        cells.push(v);
        cells.len() - 1
    }

    /// Pops the most recent value.
    #[inline]
    pub fn pop(&self) -> Option<Value> {
        self.cells.borrow_mut().pop()
    }

    /// Reads the value at `index` (values may have been relocated since
    /// they were pushed).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Value {
        self.cells.borrow()[index]
    }

    /// Overwrites the value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn set(&self, index: usize, v: Value) {
        self.cells.borrow_mut()[index] = v;
    }

    /// Current stack depth.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.borrow().len()
    }

    /// Whether the stack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.borrow().is_empty()
    }

    /// Truncates the stack to `len` entries (for unwinding scopes).
    #[inline]
    pub fn truncate(&self, len: usize) {
        self.cells.borrow_mut().truncate(len);
    }
}

/// The heap-side registry of root cells.
#[derive(Default, Debug)]
pub(crate) struct RootSet {
    cells: Vec<Weak<RefCell<Value>>>,
    vecs: Vec<Weak<RefCell<Vec<Value>>>>,
}

impl RootSet {
    pub(crate) fn root(&mut self, v: Value) -> Rooted {
        let cell = Rc::new(RefCell::new(v));
        self.cells.push(Rc::downgrade(&cell));
        Rooted { cell }
    }

    pub(crate) fn root_vec(&mut self) -> RootedVec {
        let cells: Rc<RefCell<Vec<Value>>> = Rc::new(RefCell::new(Vec::new()));
        self.vecs.push(Rc::downgrade(&cells));
        RootedVec { cells }
    }

    /// Applies `f` to every live root slot, dropping registrations whose
    /// owning handles are gone. Returns the number of slots visited.
    pub(crate) fn for_each_slot(&mut self, mut f: impl FnMut(&mut Value)) -> u64 {
        let mut visited = 0;
        self.cells.retain(|weak| match weak.upgrade() {
            Some(cell) => {
                f(&mut cell.borrow_mut());
                visited += 1;
                true
            }
            None => false,
        });
        self.vecs.retain(|weak| match weak.upgrade() {
            Some(cells) => {
                for slot in cells.borrow_mut().iter_mut() {
                    f(slot);
                    visited += 1;
                }
                true
            }
            None => false,
        });
        visited
    }

    /// Read-only snapshot of every live root value (for the verifier).
    pub(crate) fn snapshot(&self) -> Vec<Value> {
        let mut out = Vec::new();
        for weak in &self.cells {
            if let Some(cell) = weak.upgrade() {
                out.push(*cell.borrow());
            }
        }
        for weak in &self.vecs {
            if let Some(cells) = weak.upgrade() {
                out.extend(cells.borrow().iter().copied());
            }
        }
        out
    }

    /// Number of registered single-value roots still alive (test hook).
    #[cfg(test)]
    pub(crate) fn live_cells(&self) -> usize {
        self.cells.iter().filter(|w| w.upgrade().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rooted_get_set_round_trip() {
        let mut set = RootSet::default();
        let r = set.root(Value::fixnum(1));
        assert_eq!(r.get(), Value::fixnum(1));
        r.set(Value::fixnum(2));
        assert_eq!(r.get(), Value::fixnum(2));
    }

    #[test]
    fn dropping_handle_unregisters() {
        let mut set = RootSet::default();
        let r = set.root(Value::fixnum(1));
        assert_eq!(set.live_cells(), 1);
        drop(r);
        assert_eq!(set.live_cells(), 0);
        // A sweep prunes the dead weak reference.
        let visited = set.for_each_slot(|_| {});
        assert_eq!(visited, 0);
        assert!(set.cells.is_empty());
    }

    #[test]
    fn clones_share_a_cell_and_keep_it_alive() {
        let mut set = RootSet::default();
        let a = set.root(Value::fixnum(1));
        let b = a.clone();
        drop(a);
        b.set(Value::fixnum(9));
        let mut seen = Vec::new();
        set.for_each_slot(|v| seen.push(*v));
        assert_eq!(seen, vec![Value::fixnum(9)]);
    }

    #[test]
    fn for_each_slot_updates_in_place() {
        let mut set = RootSet::default();
        let r = set.root(Value::fixnum(1));
        let stack = set.root_vec();
        stack.push(Value::fixnum(10));
        stack.push(Value::fixnum(20));
        let visited = set.for_each_slot(|v| {
            if v.is_fixnum() {
                *v = Value::fixnum(v.as_fixnum() + 1);
            }
        });
        assert_eq!(visited, 3);
        assert_eq!(r.get(), Value::fixnum(2));
        assert_eq!(stack.get(0), Value::fixnum(11));
        assert_eq!(stack.get(1), Value::fixnum(21));
    }

    #[test]
    fn rooted_vec_stack_discipline() {
        let mut set = RootSet::default();
        let stack = set.root_vec();
        assert!(stack.is_empty());
        let i = stack.push(Value::fixnum(5));
        assert_eq!(i, 0);
        assert_eq!(stack.len(), 1);
        stack.push(Value::TRUE);
        stack.truncate(1);
        assert_eq!(stack.pop(), Some(Value::fixnum(5)));
        assert_eq!(stack.pop(), None);
    }
}
