//! The tconc queue (paper Figures 2–4).
//!
//! "Although guardians are procedures at the user level, internally they
//! are represented as a form of queue called a *tconc* … a tconc consists
//! of a list and a header; the header is an ordinary pair whose car field
//! points to the first cell in the list and whose cdr field points to the
//! last cell in the list."
//!
//! The collector appends to the rear (Figure 3) and the mutator removes
//! from the front (Figure 4). The write protocols are ordered so that
//! neither side needs a critical section: the collector publishes a new
//! element by updating the header's cdr *last*, and the mutator only ever
//! writes the header's car. The interleaving tests in this module (and the
//! E2 experiment) check every cut point of the append against a concurrent
//! pop.

use crate::heap::Heap;
use crate::value::Value;

impl Heap {
    /// Creates an empty tconc: `(let ([z (cons #f '())]) (cons z z))`.
    ///
    /// "An empty tconc is one in which both fields of the header point to
    /// the same pair; what the fields of this pair contain is unimportant."
    pub fn make_tconc(&mut self) -> Value {
        let z = self.cons(Value::FALSE, Value::NIL);
        self.cons(z, z)
    }

    /// Whether the tconc holds no elements (`eq?` of header car and cdr).
    pub fn tconc_is_empty(&self, tc: Value) -> bool {
        self.car(tc) == self.cdr(tc)
    }

    /// Removes and returns the front element (Figure 4), or `None` if the
    /// tconc is empty. Matches the paper's `make-guardian` retrieval code,
    /// including nulling the popped pair's fields: "since the pair is
    /// sometimes in an older generation than the objects to which it
    /// points, maintaining these pointers after they are no longer needed
    /// may result in unnecessary storage retention."
    pub fn tconc_pop(&mut self, tc: Value) -> Option<Value> {
        if self.tconc_is_empty(tc) {
            return None;
        }
        let x = self.car(tc);
        let y = self.car(x);
        let rest = self.cdr(x);
        self.set_car(tc, rest);
        self.set_car(x, Value::FALSE);
        self.set_cdr(x, Value::FALSE);
        self.stats.guardian_polls += 1;
        Some(y)
    }

    /// Appends `obj` using a caller-supplied fresh pair `p` as the new
    /// last cell, following Figure 3's write order (header cdr last). The
    /// collector passes a to-space pair; the mutator-level
    /// [`Heap::tconc_append`] passes a freshly consed one.
    pub(crate) fn tconc_append_with(&mut self, tc: Value, obj: Value, p: Value) {
        let old_last = self.cdr(tc);
        self.set_car(old_last, obj);
        self.set_cdr(old_last, p);
        // Final, publishing update: only now can the mutator see the
        // element (its test is `car(tc) != cdr(tc)`).
        self.set_cdr(tc, p);
        // The to-space log is live exactly while a collection runs, which
        // distinguishes the guardian pass's appends from mutator ones.
        // During an *incremental* cycle the log stays live between
        // increments too, but the collector takes the `incremental` state
        // out while it runs an increment — so `incremental` is `None`
        // exactly when the caller is the collector.
        let during_collection = self.tospace_log.is_some() && self.incremental.is_none();
        self.trace_emit(|| crate::trace::GcEvent::TconcAppend { during_collection });
    }

    /// Appends `obj` to the rear of the tconc (mutator-level; allocates
    /// the new last pair normally).
    pub fn tconc_append(&mut self, tc: Value, obj: Value) {
        let p = self.cons(Value::FALSE, Value::FALSE);
        self.tconc_append_with(tc, obj, p);
    }

    /// Number of elements currently in the tconc (walks the list).
    pub fn tconc_len(&self, tc: Value) -> usize {
        let mut n = 0;
        let mut cur = self.car(tc);
        let last = self.cdr(tc);
        while cur != last {
            n += 1;
            cur = self.cdr(cur);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tconc_is_empty() {
        let mut h = Heap::default();
        let tc = h.make_tconc();
        assert!(h.tconc_is_empty(tc));
        assert_eq!(h.tconc_len(tc), 0);
        assert_eq!(h.tconc_pop(tc), None);
    }

    #[test]
    fn fifo_order() {
        let mut h = Heap::default();
        let tc = h.make_tconc();
        for i in 0..5 {
            h.tconc_append(tc, Value::fixnum(i));
        }
        assert_eq!(h.tconc_len(tc), 5);
        for i in 0..5 {
            assert_eq!(h.tconc_pop(tc), Some(Value::fixnum(i)));
        }
        assert!(h.tconc_is_empty(tc));
    }

    #[test]
    fn interleaved_append_and_pop() {
        let mut h = Heap::default();
        let tc = h.make_tconc();
        h.tconc_append(tc, Value::fixnum(1));
        assert_eq!(h.tconc_pop(tc), Some(Value::fixnum(1)));
        h.tconc_append(tc, Value::fixnum(2));
        h.tconc_append(tc, Value::fixnum(3));
        assert_eq!(h.tconc_pop(tc), Some(Value::fixnum(2)));
        h.tconc_append(tc, Value::fixnum(4));
        assert_eq!(h.tconc_pop(tc), Some(Value::fixnum(3)));
        assert_eq!(h.tconc_pop(tc), Some(Value::fixnum(4)));
        assert_eq!(h.tconc_pop(tc), None);
    }

    #[test]
    fn polls_are_counted_in_heap_stats() {
        let mut h = Heap::default();
        let tc = h.make_tconc();
        h.tconc_append(tc, Value::fixnum(1));
        assert_eq!(h.stats().guardian_polls, 0);
        h.tconc_pop(tc);
        assert_eq!(h.stats().guardian_polls, 1);
        h.tconc_pop(tc); // empty: not counted
        assert_eq!(h.stats().guardian_polls, 1);
    }

    #[test]
    fn popped_pair_fields_are_cleared() {
        // The don't-care fields must be nulled to avoid retaining dead
        // objects through old-generation pairs (paper, Figure 4 text).
        let mut h = Heap::default();
        let tc = h.make_tconc();
        let first_cell = h.car(tc);
        h.tconc_append(tc, Value::fixnum(42));
        assert_eq!(h.car(first_cell), Value::fixnum(42));
        h.tconc_pop(tc);
        assert_eq!(h.car(first_cell), Value::FALSE);
        assert_eq!(h.cdr(first_cell), Value::FALSE);
    }

    /// The "no critical section" property, single-threaded analogue: cut
    /// the append protocol after each atomic write and check a concurrent
    /// pop never observes a torn queue.
    #[test]
    fn append_cut_at_every_step_is_safe() {
        for cut in 0..=3 {
            let mut h = Heap::default();
            let tc = h.make_tconc();
            h.tconc_append(tc, Value::fixnum(7)); // one existing element
            let p = h.cons(Value::FALSE, Value::FALSE);
            let old_last = h.cdr(tc);
            // The three writes of Figure 3, applied one at a time.
            if cut >= 1 {
                h.set_car(old_last, Value::fixnum(8));
            }
            if cut >= 2 {
                h.set_cdr(old_last, p);
            }
            if cut >= 3 {
                h.set_cdr(tc, p);
            }
            // Mutator runs at the cut point: it must see element 7, and
            // element 8 exactly when the publishing write has happened.
            assert_eq!(h.tconc_pop(tc), Some(Value::fixnum(7)), "cut={cut}");
            let second = h.tconc_pop(tc);
            if cut >= 3 {
                assert_eq!(second, Some(Value::fixnum(8)), "cut={cut}");
            } else {
                assert_eq!(
                    second, None,
                    "cut={cut}: unpublished element must be invisible"
                );
            }
        }
    }
}
