//! Online GC policy autotuning: a feedback controller that retunes the
//! live [`GcConfig`] between collections.
//!
//! The paper leaves "the number of generations and the promotion and
//! tenure strategies ... under programmer control". This module takes
//! that control back at runtime: a [`PolicyController`] runs at the end
//! of every completed collection (inside `Heap::finish_collection`, the
//! one safe point every engine funnels through), consumes deterministic
//! sensors derived from the [`CollectionReport`](crate::CollectionReport)
//! counters and per-generation occupancy, and proposes bounded policy
//! steps:
//!
//! * **`trigger_bytes`** — driven by the *young survivor ratio* (words
//!   copied out of a nursery collection relative to bytes allocated since
//!   the previous one). A high ratio means collections land while data is
//!   still in flight, so the trigger doubles; a very low ratio means the
//!   heap could be kept smaller, so it halves. Both moves are clamped to
//!   a configured range.
//! * **`frequency` ladder** — driven by *old-generation survival* (words
//!   copied by a generation ≥ 1 collection relative to the collected
//!   generations' live words at collection start). Survival near 1 means
//!   old collections recopy a stable live set for nothing, so the ladder
//!   for generations ≥ 1 stretches by 2×; low survival folds the stretch
//!   back.
//! * **tenure ceiling** ([`Promotion::Capped`]) — driven by *guardian
//!   drag*: protected-list entries parked beyond generation 1, where only
//!   rare old-generation collections can prove their objects dead.
//!   Sustained drag lowers the tenure ceiling to `Capped(1)` so guarded
//!   objects stay where frequent collections see them; a capped heap that
//!   keeps recopying held entries without finalizing anything reverts.
//!
//! Per-zone `max_segments` rebalancing is the fourth actuator; it needs
//! fleet-wide visibility, so it lives in the zone layer
//! (`ZoneManager::rebalance_quotas`) and flows through the same
//! [`Heap::set_max_segments`](crate::Heap::set_max_segments) safe
//! reconfiguration path.
//!
//! # Stability guards
//!
//! Oscillation is damped three ways: sensors are exponentially-weighted
//! moving averages (integer parts-per-million, no floats, so decisions
//! are bit-reproducible), every knob has a per-knob cooldown counted in
//! collections, and every step is bounded (×2/÷2 within a clamped range)
//! so a single noisy sample can never slam a knob across its range.
//! After an applied change the knob's sensor history is reset: samples
//! taken under the old policy do not argue about the new one.
//!
//! # Determinism
//!
//! With the default configuration every sensor is a deterministic
//! function of the mutation history: report counters, occupancy words,
//! and protected-list lengths. Wall-clock pause feedback exists but only
//! behind the opt-in [`AutotuneConfig::pause_ceiling`], which defaults to
//! `None` — so `Observe`- and `Active`-mode runs replay identically, and
//! the torture rig can shadow an autotuned heap with its oracle.

use crate::config::{GcConfig, Promotion};
use std::time::Duration;

/// Parts-per-million denominator used by every ratio sensor.
const PPM: u64 = 1_000_000;

/// Whether, and how strongly, the policy controller acts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AutotuneMode {
    /// No controller at all: the heap behaves bit-identically to one that
    /// never heard of autotuning.
    Off,
    /// The controller runs, logs decisions, and emits events/metrics, but
    /// never touches the live policy — a dry run for studying what it
    /// *would* do.
    Observe,
    /// Decisions are applied to the live configuration between
    /// collections.
    Active,
}

impl std::fmt::Display for AutotuneMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AutotuneMode::Off => "off",
            AutotuneMode::Observe => "observe",
            AutotuneMode::Active => "active",
        })
    }
}

impl std::str::FromStr for AutotuneMode {
    type Err = String;

    fn from_str(s: &str) -> Result<AutotuneMode, String> {
        match s {
            "off" => Ok(AutotuneMode::Off),
            "observe" => Ok(AutotuneMode::Observe),
            "active" => Ok(AutotuneMode::Active),
            other => Err(format!("unknown autotune mode: {other:?}")),
        }
    }
}

/// Configuration for the [`PolicyController`]. All ratio thresholds are
/// integer parts-per-million so the controller never does float
/// arithmetic (decisions must be bit-reproducible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutotuneConfig {
    /// Controller mode (see [`AutotuneMode`]).
    pub mode: AutotuneMode,
    /// Young survivor-ratio target, ppm of bytes allocated since the last
    /// collection.
    pub survivor_target_ppm: u64,
    /// Dead band around the target; the trigger moves only when the EWMA
    /// leaves `target ± band`.
    pub survivor_band_ppm: u64,
    /// Lower clamp for `trigger_bytes`.
    pub min_trigger_bytes: usize,
    /// Upper clamp for `trigger_bytes`.
    pub max_trigger_bytes: usize,
    /// Old-generation survival (ppm of pre-collection live words) above
    /// which the frequency ladder stretches.
    pub stretch_survival_ppm: u64,
    /// Old-generation survival below which a stretched ladder folds back.
    pub shrink_survival_ppm: u64,
    /// Upper clamp on the ladder stretch factor (powers of two up to
    /// this).
    pub max_frequency_scale: u64,
    /// Guardian-drag threshold: EWMA of protected entries parked beyond
    /// generation 1 above which the tenure ceiling drops to `Capped(1)`.
    pub drag_entries_threshold: u64,
    /// Held-entry churn above which a capped heap that finalizes almost
    /// nothing reverts to [`Promotion::NextGeneration`].
    pub held_revert_threshold: u64,
    /// Collections a knob stays quiet after deciding (applied or not).
    pub cooldown: u64,
    /// EWMA weight of the newest sample, ppm.
    pub ewma_new_ppm: u64,
    /// Samples a sensor needs before its knob may act.
    pub min_samples: u64,
    /// Optional wall-clock pause ceiling: a completed collection whose
    /// pause exceeds it counts as an immediate trigger-shrink vote.
    /// `None` (the default) keeps the controller fully deterministic.
    pub pause_ceiling: Option<Duration>,
}

impl AutotuneConfig {
    /// The default thresholds in [`AutotuneMode::Observe`].
    pub fn observe() -> AutotuneConfig {
        AutotuneConfig {
            mode: AutotuneMode::Observe,
            survivor_target_ppm: 100_000,
            survivor_band_ppm: 60_000,
            min_trigger_bytes: 64 * guardians_segments::SEGMENT_BYTES,
            max_trigger_bytes: 8192 * guardians_segments::SEGMENT_BYTES,
            stretch_survival_ppm: 550_000,
            shrink_survival_ppm: 150_000,
            max_frequency_scale: 16,
            drag_entries_threshold: 64,
            held_revert_threshold: 4096,
            cooldown: 3,
            ewma_new_ppm: 400_000,
            min_samples: 2,
            pause_ceiling: None,
        }
    }

    /// The default thresholds in [`AutotuneMode::Active`].
    pub fn active() -> AutotuneConfig {
        AutotuneConfig {
            mode: AutotuneMode::Active,
            ..AutotuneConfig::observe()
        }
    }
}

impl Default for AutotuneConfig {
    /// Defaults to [`AutotuneConfig::observe`]: enabling autotuning never
    /// changes behaviour unless `Active` is asked for explicitly.
    fn default() -> AutotuneConfig {
        AutotuneConfig::observe()
    }
}

/// The deterministic sensor snapshot the controller sees after one
/// completed collection. Every field (except `pause_ns`, consulted only
/// under the opt-in pause ceiling) is a pure function of the mutation
/// history.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PolicySensors {
    /// 1-based index of the collection that just completed.
    pub collection_index: u64,
    /// Highest generation collected.
    pub collected_generation: u8,
    /// Bytes the mutator allocated since the previous collection.
    pub bytes_allocated: u64,
    /// Words the collection copied (its work, and the survivors).
    pub words_copied: u64,
    /// Live words of the collected *old* generations (1..=collected) at
    /// collection start; the denominator of the old-generation survival
    /// ratio. Generation 0 is excluded — its occupancy is mostly dead
    /// nursery churn and would dilute the ratio. Zero when the
    /// pre-collection snapshot was unavailable (disables the frequency
    /// knob for this step).
    pub pre_used_words: u64,
    /// Guardian protected-list entries visited.
    pub guardian_visited: u64,
    /// Guardian entries finalized (enqueued for the mutator).
    pub guardian_finalized: u64,
    /// Guardian entries held (object still live, entry recopied).
    pub guardian_held: u64,
    /// Protected-list entries parked beyond generation 1 after the
    /// collection — the guardian-drag sensor.
    pub parked_old_entries: u64,
    /// Live words across all generations after the collection.
    pub live_words: u64,
    /// Segments allocated after the collection.
    pub segments: u64,
    /// Wall-clock pause of the collection, nanoseconds (sum of increments
    /// for the incremental engine). Consulted only when
    /// [`AutotuneConfig::pause_ceiling`] is set.
    pub pause_ns: u64,
}

/// One controller decision: a proposed (and, in `Active` mode, applied)
/// policy step, with the sensor snapshot that justified it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PolicyDecision {
    /// Collection after which the decision was made.
    pub collection_index: u64,
    /// Knob name: `"trigger_bytes"`, `"frequency_scale"`, `"tenure_cap"`,
    /// or (from the zone layer) `"max_segments"`.
    pub knob: &'static str,
    /// Old knob value (trigger bytes, ladder scale, or effective tenure
    /// cap).
    pub from: u64,
    /// New knob value.
    pub to: u64,
    /// Whether the change was applied (`Active`) or only logged
    /// (`Observe`).
    pub applied: bool,
    /// The headline sensor value that justified the step (EWMA ppm for
    /// ratio knobs, EWMA entry count for the tenure knob).
    pub sensor: u64,
    /// Full sensor snapshot at decision time.
    pub sensors: PolicySensors,
}

/// A policy step for the heap to apply (only produced in `Active` mode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyUpdate {
    /// Set [`GcConfig::trigger_bytes`].
    TriggerBytes(usize),
    /// Set [`GcConfig::promotion`].
    Promotion(Promotion),
    /// Replace the [`GcConfig::frequency`] ladder.
    Frequency(Vec<u64>),
}

/// The result of one controller step.
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// Decisions made this step (also appended to the controller's log).
    pub decisions: Vec<PolicyDecision>,
    /// Updates the heap should apply; empty unless the mode is `Active`.
    pub updates: Vec<PolicyUpdate>,
}

/// Integer EWMA with a sample counter (for warmup gating).
#[derive(Copy, Clone, Debug, Default)]
struct Ewma {
    value: u64,
    samples: u64,
}

impl Ewma {
    fn observe(&mut self, sample: u64, new_weight_ppm: u64) {
        if self.samples == 0 {
            self.value = sample;
        } else {
            let w = new_weight_ppm.min(PPM);
            self.value = (self.value * (PPM - w) + sample * w) / PPM;
        }
        self.samples += 1;
    }

    fn reset(&mut self) {
        *self = Ewma::default();
    }
}

/// Integer ratio in parts-per-million; zero when the denominator is zero.
fn ppm(num: u64, den: u64) -> u64 {
    num.saturating_mul(PPM).checked_div(den).unwrap_or(0)
}

/// The feedback controller. Owned by the heap (behind an `Option`, so a
/// heap that never enables autotuning pays one null test per collection)
/// and stepped from `finish_collection`.
pub struct PolicyController {
    cfg: AutotuneConfig,
    /// The ladder the heap was configured with at enable time,
    /// materialized for every generation — the fixed point the stretch
    /// factor multiplies.
    base_frequency: Vec<u64>,
    /// Current ladder stretch factor (a power of two).
    frequency_scale: u64,
    young_survival: Ewma,
    old_survival: Ewma,
    parked_old: Ewma,
    held: Ewma,
    finalized: Ewma,
    cooldown_trigger: u64,
    cooldown_frequency: u64,
    cooldown_tenure: u64,
    /// Live words of the collected generations, captured at collection
    /// start by `Heap`.
    pending_pre_words: Option<u64>,
    log: Vec<PolicyDecision>,
}

impl PolicyController {
    /// A controller over `base` (the configuration at enable time).
    pub fn new(cfg: AutotuneConfig, base: &GcConfig) -> PolicyController {
        let base_frequency = base.effective_frequency();
        PolicyController {
            cfg,
            base_frequency,
            frequency_scale: 1,
            young_survival: Ewma::default(),
            old_survival: Ewma::default(),
            parked_old: Ewma::default(),
            held: Ewma::default(),
            finalized: Ewma::default(),
            cooldown_trigger: 0,
            cooldown_frequency: 0,
            cooldown_tenure: 0,
            pending_pre_words: None,
            log: Vec::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AutotuneConfig {
        &self.cfg
    }

    /// The controller's mode.
    pub fn mode(&self) -> AutotuneMode {
        self.cfg.mode
    }

    /// The current ladder stretch factor.
    pub fn frequency_scale(&self) -> u64 {
        self.frequency_scale
    }

    /// Records the collected generations' live words at collection start
    /// (the old-survival denominator). Called by the heap from its
    /// collection entry points.
    pub fn note_collection_begin(&mut self, pre_used_words: u64) {
        self.pending_pre_words = Some(pre_used_words);
    }

    /// The cumulative decision log.
    pub fn decisions(&self) -> &[PolicyDecision] {
        &self.log
    }

    /// Drains the cumulative decision log.
    pub fn take_decisions(&mut self) -> Vec<PolicyDecision> {
        std::mem::take(&mut self.log)
    }

    /// Runs one controller step after a completed collection: folds the
    /// sensors into the EWMAs and proposes at most one step per knob.
    pub fn step(&mut self, current: &GcConfig, mut s: PolicySensors) -> StepOutcome {
        s.pre_used_words = self.pending_pre_words.take().unwrap_or(0);
        let mut out = StepOutcome::default();
        // Decrement before the knob checks; decisions store `cooldown + 1`
        // so a knob stays quiet for exactly `cooldown` collections.
        self.cooldown_trigger = self.cooldown_trigger.saturating_sub(1);
        self.cooldown_frequency = self.cooldown_frequency.saturating_sub(1);
        self.cooldown_tenure = self.cooldown_tenure.saturating_sub(1);
        self.step_trigger(current, &s, &mut out);
        self.step_frequency(current, &s, &mut out);
        self.step_tenure(current, &s, &mut out);
        self.log.extend(out.decisions.iter().copied());
        out
    }

    fn active(&self) -> bool {
        self.cfg.mode == AutotuneMode::Active
    }

    fn decide(
        &self,
        out: &mut StepOutcome,
        s: &PolicySensors,
        knob: &'static str,
        from: u64,
        to: u64,
        sensor: u64,
    ) {
        out.decisions.push(PolicyDecision {
            collection_index: s.collection_index,
            knob,
            from,
            to,
            applied: self.active(),
            sensor,
            sensors: *s,
        });
    }

    /// Trigger knob: young survivor ratio vs. the target band, sampled on
    /// nursery (generation-0) collections only so old-generation copies
    /// never pollute the signal.
    fn step_trigger(&mut self, current: &GcConfig, s: &PolicySensors, out: &mut StepOutcome) {
        if s.collected_generation != 0 || s.bytes_allocated == 0 {
            return;
        }
        self.young_survival.observe(
            ppm(s.words_copied * 8, s.bytes_allocated),
            self.cfg.ewma_new_ppm,
        );
        if self.cooldown_trigger > 0 || self.young_survival.samples < self.cfg.min_samples {
            return;
        }
        let cur = current.trigger_bytes;
        let ewma = self.young_survival.value;
        let hi = self.cfg.survivor_target_ppm + self.cfg.survivor_band_ppm;
        let lo = self
            .cfg
            .survivor_target_ppm
            .saturating_sub(self.cfg.survivor_band_ppm);
        let pause_hot = self
            .cfg
            .pause_ceiling
            .is_some_and(|c| s.pause_ns > c.as_nanos() as u64);
        let new = if pause_hot && cur > self.cfg.min_trigger_bytes {
            (cur / 2).max(self.cfg.min_trigger_bytes)
        } else if ewma > hi && cur < self.cfg.max_trigger_bytes {
            (cur * 2).min(self.cfg.max_trigger_bytes)
        } else if ewma < lo && cur > self.cfg.min_trigger_bytes {
            (cur / 2).max(self.cfg.min_trigger_bytes)
        } else {
            return;
        };
        self.cooldown_trigger = self.cfg.cooldown.saturating_add(1);
        self.decide(out, s, "trigger_bytes", cur as u64, new as u64, ewma);
        if self.active() {
            self.young_survival.reset();
            out.updates.push(PolicyUpdate::TriggerBytes(new));
        }
    }

    /// Frequency knob: old-generation survival decides whether the ladder
    /// for generations ≥ 1 stretches (stable old data is being recopied
    /// for nothing) or folds back (old collections are productive again).
    /// The ratio's numerator is the collection's total copied words (the
    /// nursery's survivors included, so it can exceed unity); the
    /// denominator is old-generation occupancy only — the question the
    /// knob answers is whether collecting the old generations paid for
    /// the copying the collection did.
    fn step_frequency(&mut self, current: &GcConfig, s: &PolicySensors, out: &mut StepOutcome) {
        if s.collected_generation == 0 || s.pre_used_words == 0 {
            return;
        }
        self.old_survival
            .observe(ppm(s.words_copied, s.pre_used_words), self.cfg.ewma_new_ppm);
        if self.cooldown_frequency > 0 || self.old_survival.samples < self.cfg.min_samples {
            return;
        }
        let ewma = self.old_survival.value;
        let scale = self.frequency_scale;
        let new_scale =
            if ewma > self.cfg.stretch_survival_ppm && scale < self.cfg.max_frequency_scale {
                scale * 2
            } else if ewma < self.cfg.shrink_survival_ppm && scale > 1 {
                scale / 2
            } else {
                return;
            };
        self.cooldown_frequency = self.cfg.cooldown.saturating_add(1);
        self.decide(out, s, "frequency_scale", scale, new_scale, ewma);
        if self.active() {
            self.frequency_scale = new_scale;
            self.old_survival.reset();
            let ladder = self.ladder_for_scale(new_scale, current.generations);
            out.updates.push(PolicyUpdate::Frequency(ladder));
        }
    }

    /// The base ladder with generations ≥ 1 stretched by `scale`.
    fn ladder_for_scale(&self, scale: u64, generations: u8) -> Vec<u64> {
        self.base_frequency
            .iter()
            .take(generations as usize)
            .enumerate()
            .map(|(g, &f)| if g == 0 { f } else { f.saturating_mul(scale) })
            .collect()
    }

    /// Tenure knob: sustained guardian drag (entries parked beyond
    /// generation 1) lowers the ceiling to `Capped(1)`; a capped heap that
    /// keeps recopying held entries while finalizing almost nothing
    /// reverts to the paper's advance-by-one policy.
    fn step_tenure(&mut self, current: &GcConfig, s: &PolicySensors, out: &mut StepOutcome) {
        self.parked_old
            .observe(s.parked_old_entries, self.cfg.ewma_new_ppm);
        self.held.observe(s.guardian_held, self.cfg.ewma_new_ppm);
        self.finalized
            .observe(s.guardian_finalized, self.cfg.ewma_new_ppm);
        if self.cooldown_tenure > 0
            || self.parked_old.samples < self.cfg.min_samples
            || current.generations < 3
        {
            return;
        }
        let max_gen = current.max_generation();
        let eff_cap = |p: Promotion| -> u64 {
            match p {
                Promotion::NextGeneration => max_gen as u64,
                Promotion::Capped(c) => (c.min(max_gen)) as u64,
                Promotion::SameGeneration => max_gen as u64,
            }
        };
        match current.promotion {
            Promotion::SameGeneration => {}
            Promotion::Capped(1) => {
                // Revert guard: lots of held-entry recopying, almost no
                // finalization — the cap is taxing a pinned guarded set.
                let churn = self.held.value;
                if churn > self.cfg.held_revert_threshold && self.finalized.value * 20 < churn {
                    self.cooldown_tenure = self.cfg.cooldown.saturating_add(1);
                    self.decide(out, s, "tenure_cap", 1, max_gen as u64, churn);
                    if self.active() {
                        self.held.reset();
                        self.finalized.reset();
                        out.updates
                            .push(PolicyUpdate::Promotion(Promotion::NextGeneration));
                    }
                }
            }
            p => {
                if self.parked_old.value > self.cfg.drag_entries_threshold {
                    self.cooldown_tenure = self.cfg.cooldown.saturating_add(1);
                    self.decide(out, s, "tenure_cap", eff_cap(p), 1, self.parked_old.value);
                    if self.active() {
                        self.parked_old.reset();
                        out.updates
                            .push(PolicyUpdate::Promotion(Promotion::Capped(1)));
                    }
                }
            }
        }
    }
}

/// Renders a decision log as one JSON object per line (deterministic key
/// order), each carrying the full sensor snapshot that justified it —
/// the `gcprof --scenario e22` decision-trace format.
pub fn decisions_jsonl(decisions: &[PolicyDecision]) -> String {
    let mut out = String::new();
    for d in decisions {
        let s = &d.sensors;
        out.push_str(&format!(
            "{{\"collection\":{},\"knob\":\"{}\",\"from\":{},\"to\":{},\"applied\":{},\
             \"sensor\":{},\"sensors\":{{\"collected_generation\":{},\"bytes_allocated\":{},\
             \"words_copied\":{},\"pre_used_words\":{},\"guardian_visited\":{},\
             \"guardian_finalized\":{},\"guardian_held\":{},\"parked_old_entries\":{},\
             \"live_words\":{},\"segments\":{},\"pause_ns\":{}}}}}\n",
            d.collection_index,
            d.knob,
            d.from,
            d.to,
            d.applied,
            d.sensor,
            s.collected_generation,
            s.bytes_allocated,
            s.words_copied,
            s.pre_used_words,
            s.guardian_visited,
            s.guardian_finalized,
            s.guardian_held,
            s.parked_old_entries,
            s.live_words,
            s.segments,
            s.pause_ns,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_cfg() -> AutotuneConfig {
        AutotuneConfig {
            cooldown: 0,
            min_samples: 1,
            ..AutotuneConfig::active()
        }
    }

    fn gen0_sensors(index: u64, bytes: u64, copied_words: u64) -> PolicySensors {
        PolicySensors {
            collection_index: index,
            collected_generation: 0,
            bytes_allocated: bytes,
            words_copied: copied_words,
            ..PolicySensors::default()
        }
    }

    #[test]
    fn mode_parses_and_displays() {
        for m in [
            AutotuneMode::Off,
            AutotuneMode::Observe,
            AutotuneMode::Active,
        ] {
            assert_eq!(m.to_string().parse::<AutotuneMode>().unwrap(), m);
        }
        assert!("loud".parse::<AutotuneMode>().is_err());
    }

    #[test]
    fn high_young_survival_doubles_the_trigger() {
        let base = GcConfig::new();
        let mut c = PolicyController::new(active_cfg(), &base);
        // 50% of allocated bytes survive the nursery: way above the band.
        let out = c.step(&base, gen0_sensors(1, 1 << 20, (1 << 20) / 16));
        assert_eq!(out.decisions.len(), 1);
        let d = out.decisions[0];
        assert_eq!(d.knob, "trigger_bytes");
        assert_eq!(d.from, base.trigger_bytes as u64);
        assert_eq!(d.to, base.trigger_bytes as u64 * 2);
        assert!(d.applied);
        assert_eq!(
            out.updates,
            vec![PolicyUpdate::TriggerBytes(base.trigger_bytes * 2)]
        );
    }

    #[test]
    fn low_young_survival_halves_the_trigger() {
        let base = GcConfig::new();
        let mut c = PolicyController::new(active_cfg(), &base);
        // ~0.8% survival: below target - band.
        let out = c.step(&base, gen0_sensors(1, 1 << 20, 1 << 10));
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.decisions[0].to, base.trigger_bytes as u64 / 2);
    }

    #[test]
    fn in_band_survival_leaves_the_trigger_alone() {
        let base = GcConfig::new();
        let mut c = PolicyController::new(active_cfg(), &base);
        // 10% survival == target.
        let out = c.step(&base, gen0_sensors(1, 1 << 20, (1 << 20) / 80));
        assert!(out.decisions.is_empty());
        assert!(out.updates.is_empty());
    }

    #[test]
    fn trigger_respects_the_clamp() {
        let base = GcConfig::new();
        let cfg = AutotuneConfig {
            max_trigger_bytes: base.trigger_bytes,
            ..active_cfg()
        };
        let mut c = PolicyController::new(cfg, &base);
        let out = c.step(&base, gen0_sensors(1, 1 << 20, (1 << 20) / 16));
        assert!(out.decisions.is_empty(), "already at the max: no decision");
    }

    #[test]
    fn cooldown_spaces_consecutive_changes() {
        let base = GcConfig::new();
        let cfg = AutotuneConfig {
            cooldown: 2,
            min_samples: 1,
            ..AutotuneConfig::active()
        };
        let mut c = PolicyController::new(cfg, &base);
        let hot = |i| gen0_sensors(i, 1 << 20, (1 << 20) / 16);
        assert_eq!(c.step(&base, hot(1)).decisions.len(), 1);
        let mut bumped = base.clone();
        bumped.trigger_bytes *= 2;
        assert!(c.step(&bumped, hot(2)).decisions.is_empty(), "cooling");
        assert!(c.step(&bumped, hot(3)).decisions.is_empty(), "cooling");
        assert_eq!(c.step(&bumped, hot(4)).decisions.len(), 1, "cooled down");
    }

    #[test]
    fn observe_mode_logs_without_updates() {
        let base = GcConfig::new();
        let cfg = AutotuneConfig {
            cooldown: 0,
            min_samples: 1,
            ..AutotuneConfig::observe()
        };
        let mut c = PolicyController::new(cfg, &base);
        let out = c.step(&base, gen0_sensors(1, 1 << 20, (1 << 20) / 16));
        assert_eq!(out.decisions.len(), 1);
        assert!(!out.decisions[0].applied);
        assert!(out.updates.is_empty());
        assert_eq!(c.decisions().len(), 1, "logged either way");
    }

    #[test]
    fn old_survival_stretches_the_ladder() {
        let base = GcConfig::new();
        let mut c = PolicyController::new(active_cfg(), &base);
        let mut s = PolicySensors {
            collection_index: 4,
            collected_generation: 1,
            words_copied: 90_000,
            ..PolicySensors::default()
        };
        c.note_collection_begin(100_000); // 90% of old data survived
        let out = c.step(&base, s);
        assert_eq!(out.decisions.len(), 1);
        let d = out.decisions[0];
        assert_eq!(d.knob, "frequency_scale");
        assert_eq!((d.from, d.to), (1, 2));
        assert_eq!(
            out.updates,
            vec![PolicyUpdate::Frequency(vec![1, 8, 32, 128])],
            "generations >= 1 stretch; the nursery does not"
        );
        // Mass extinction folds it back (the applied change reset the
        // EWMA, so the low-survival sample speaks for itself).
        s.collection_index = 8;
        s.words_copied = 5_000;
        c.note_collection_begin(100_000);
        let mut stretched = base.clone();
        stretched.frequency = vec![1, 8, 32, 128];
        let out = c.step(&stretched, s);
        assert_eq!(out.decisions.len(), 1);
        assert_eq!((out.decisions[0].from, out.decisions[0].to), (2, 1));
        assert_eq!(
            out.updates,
            vec![PolicyUpdate::Frequency(vec![1, 4, 16, 64])]
        );
    }

    #[test]
    fn guardian_drag_caps_tenure_and_churn_reverts_it() {
        let base = GcConfig::new();
        let mut c = PolicyController::new(active_cfg(), &base);
        let drag = PolicySensors {
            collection_index: 3,
            collected_generation: 0,
            parked_old_entries: 500,
            ..PolicySensors::default()
        };
        let out = c.step(&base, drag);
        let d = out
            .decisions
            .iter()
            .find(|d| d.knob == "tenure_cap")
            .expect("drag decision");
        assert_eq!((d.from, d.to), (3, 1), "effective cap drops to 1");
        assert!(out
            .updates
            .contains(&PolicyUpdate::Promotion(Promotion::Capped(1))));

        // Now capped, but the guarded set is pinned: pure recopy churn.
        let mut capped = base.clone();
        capped.promotion = Promotion::Capped(1);
        // Held churn heavy enough that even one EWMA-weighted sample
        // (the drag step observed held=0 first) clears the threshold.
        let churn = PolicySensors {
            collection_index: 5,
            collected_generation: 1,
            guardian_held: 50_000,
            guardian_finalized: 1,
            ..PolicySensors::default()
        };
        let out = c.step(&capped, churn);
        let d = out
            .decisions
            .iter()
            .find(|d| d.knob == "tenure_cap")
            .expect("revert decision");
        assert_eq!((d.from, d.to), (1, 3));
        assert!(out
            .updates
            .contains(&PolicyUpdate::Promotion(Promotion::NextGeneration)));
    }

    #[test]
    fn few_generations_disable_the_tenure_knob() {
        let base = GcConfig::with_generations(2);
        let mut c = PolicyController::new(active_cfg(), &base);
        let drag = PolicySensors {
            collection_index: 1,
            parked_old_entries: 500,
            ..PolicySensors::default()
        };
        assert!(c.step(&base, drag).decisions.is_empty());
    }

    #[test]
    fn pause_ceiling_shrinks_the_trigger() {
        let base = GcConfig::new();
        let cfg = AutotuneConfig {
            pause_ceiling: Some(Duration::from_micros(50)),
            ..active_cfg()
        };
        let mut c = PolicyController::new(cfg, &base);
        // Survival right on target (no ratio vote), but the pause blew
        // through the ceiling.
        let mut s = gen0_sensors(1, 1 << 20, (1 << 20) / 80);
        s.pause_ns = 200_000;
        let out = c.step(&base, s);
        assert_eq!(out.decisions.len(), 1);
        assert_eq!(out.decisions[0].to, base.trigger_bytes as u64 / 2);
    }

    #[test]
    fn decisions_jsonl_is_one_object_per_line() {
        let base = GcConfig::new();
        let mut c = PolicyController::new(active_cfg(), &base);
        let _ = c.step(&base, gen0_sensors(1, 1 << 20, (1 << 20) / 16));
        let _ = c.step(&base, gen0_sensors(2, 1 << 20, 1 << 10));
        let text = decisions_jsonl(c.decisions());
        assert_eq!(text.lines().count(), c.decisions().len());
        for line in text.lines() {
            assert!(line.starts_with("{\"collection\":"), "{line}");
            assert!(line.contains("\"sensors\":{"), "{line}");
            assert!(line.ends_with("}}"), "{line}");
        }
    }
}
