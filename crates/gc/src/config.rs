//! Collector configuration.
//!
//! The paper notes that "the number of generations and the promotion and
//! tenure strategies supported by the collector are under programmer
//! control", then assumes a simple fixed policy for exposition. This
//! configuration captures the same knobs: generation count, collection
//! frequency per generation, the allocation trigger, and (for the
//! experiments) an ablation switch that disables the per-generation
//! protected lists.

use guardians_segments::SEGMENT_BYTES;
use std::time::Duration;

/// Promotion strategy: where survivors of a collection go. The paper
/// notes that "the number of generations and the promotion and tenure
/// strategies supported by the collector are under programmer control",
/// then assumes the simple advance-by-one policy for exposition.
///
/// Every strategy here promotes all survivors of one collection
/// *uniformly*, which preserves the invariant the remembered set relies
/// on: an old-to-young pointer can only be created by mutation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Promotion {
    /// The paper's policy: survivors of collecting generation `g` move to
    /// `min(g + 1, max_generation)`.
    NextGeneration,
    /// Advance by one but never beyond `cap`: a tenure ceiling below the
    /// oldest generation, keeping long-lived data where it is still
    /// collected reasonably often.
    Capped(u8),
    /// Survivors stay in the generation collected (`max(g, 1)` so fresh
    /// data still leaves the nursery): a two-speed heap.
    SameGeneration,
}

impl Promotion {
    /// The target generation for a collection of `0..=g`.
    pub fn target(self, g: u8, max_generation: u8) -> u8 {
        match self {
            Promotion::NextGeneration => (g + 1).min(max_generation),
            Promotion::Capped(cap) => (g + 1).min(cap).min(max_generation),
            Promotion::SameGeneration => g.max(1).min(max_generation),
        }
    }
}

/// Configuration for a [`Heap`](crate::Heap).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcConfig {
    /// Number of generations (`>= 1`). Generation `0` is youngest; objects
    /// surviving a collection of generation `g` are placed in generation
    /// `min(g + 1, generations - 1)` (the paper's promotion strategy).
    pub generations: u8,
    /// `frequency[i]` controls how often generation `i` is collected by
    /// [`Heap::maybe_collect`](crate::Heap::maybe_collect): collection
    /// number `c` (counting from 1) collects the highest generation whose
    /// frequency divides `c`. `frequency[0]` should be 1. Missing entries
    /// default to 4× the previous one ("the older the generation, the less
    /// frequently it is collected").
    pub frequency: Vec<u64>,
    /// `maybe_collect` triggers once this many bytes have been allocated
    /// since the previous collection.
    pub trigger_bytes: usize,
    /// Ablation switch for experiment E3: when set, guardian entries are
    /// kept on a single flat list that is visited in its entirety on every
    /// collection, instead of the paper's per-generation protected lists.
    /// This reproduces the "generation-unfriendly" behaviour the paper's
    /// design eliminates.
    pub flat_protected: bool,
    /// Where survivors are promoted (see [`Promotion`]).
    pub promotion: Promotion,
    /// Ablation switch for the weak-pass ordering requirement (paper §4):
    /// when set, the weak-pair pass runs *before* the guardian pass
    /// instead of after it, so weak pointers to guardian-salvaged objects
    /// are wrongly broken — the bug the paper's ordering rule prevents.
    /// (A second weak pass still runs afterwards for pairs copied during
    /// the guardian pass, so the heap stays structurally valid.) For
    /// tests only.
    pub ablate_weak_pass_first: bool,
    /// Fault-injection knob (doubling as a hard heap-size cap): when set
    /// to `Some(n)`, the heap's *n+1-th* lifetime segment acquisition — and
    /// every one after it — fails, simulating memory exhaustion at an
    /// arbitrary point. The fallible entry points
    /// ([`Heap::try_cons`](crate::Heap::try_cons) and friends,
    /// [`Heap::try_collect`](crate::Heap::try_collect)) check their full
    /// segment demand against the remaining budget *before* mutating
    /// anything, so they fail cleanly with
    /// [`GcError::Exhausted`](crate::GcError) and an intact heap. If an
    /// infallible path crosses the limit instead, the heap panics — in the
    /// torture rig that panic is the tripwire proving a preflight bound
    /// unsound.
    pub fail_acquisition_at: Option<u64>,
    /// Number of collector worker threads. `1` (the default, and any
    /// value `<= 1`) runs the serial engine, bit-identical to its
    /// historical counters. Values `> 1` select the parallel copy/scan
    /// engine: that many workers run the Cheney loop over work-stealing
    /// segment chunks with per-worker to-space allocation regions and
    /// CAS-installed forwarding. The final heap state is equivalent to
    /// the serial engine's (same live set, same guardian queue contents
    /// in registration order); only scheduling-dependent telemetry such
    /// as segment counts and per-phase timings may differ.
    pub workers: usize,
    /// Bounded-pause ("incremental") collection. `None` (the default)
    /// keeps every collection a single stop-the-world pause. `Some(b)`
    /// selects the incremental engine: a collection is split into
    /// *increments*, each yielding back to the mutator once `b` of
    /// wall-clock work has been done (always completing at least one work
    /// unit, so `Duration::ZERO` gives the finest possible slicing).
    /// Between increments the mutator runs against a forwarded-on-read
    /// invariant and a write barrier that re-queues already-scanned
    /// segments mutated to hold from-space pointers; the guardian and
    /// weak passes stay atomic inside the final increment, so
    /// guardian/weak observables are identical to the serial engine.
    /// Takes precedence over `workers`: increments always run serially.
    pub pause_budget: Option<Duration>,
}

impl GcConfig {
    /// The default configuration: 4 generations, frequencies 1/4/16/64,
    /// 1 MB allocation trigger, paper-faithful protected lists.
    pub fn new() -> GcConfig {
        GcConfig {
            generations: 4,
            frequency: vec![1, 4, 16, 64],
            trigger_bytes: 256 * SEGMENT_BYTES,
            flat_protected: false,
            promotion: Promotion::NextGeneration,
            ablate_weak_pass_first: false,
            fail_acquisition_at: None,
            workers: 1,
            pause_budget: None,
        }
    }

    /// A configuration with `n` generations and default frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_generations(n: u8) -> GcConfig {
        assert!(n >= 1, "at least one generation is required");
        GcConfig {
            generations: n,
            ..GcConfig::new()
        }
    }

    /// The oldest generation number.
    pub fn max_generation(&self) -> u8 {
        self.generations - 1
    }

    /// The frequency for generation `g`, applying the 4× default rule for
    /// generations beyond the explicit `frequency` list.
    pub fn frequency_of(&self, g: u8) -> u64 {
        let g = g as usize;
        if let Some(&f) = self.frequency.get(g) {
            return f.max(1);
        }
        let last = self.frequency.last().copied().unwrap_or(1).max(1);
        let extra = (g + 1).saturating_sub(self.frequency.len().max(1)) as u32;
        last.saturating_mul(4u64.saturating_pow(extra))
    }

    /// The generation `maybe_collect` would pick for collection number `c`
    /// (1-based): the highest generation whose frequency divides `c`.
    pub fn generation_for_collection(&self, c: u64) -> u8 {
        let mut pick = 0;
        for g in 0..self.generations {
            if c.is_multiple_of(self.frequency_of(g)) {
                pick = g;
            }
        }
        pick
    }

    /// The frequency ladder materialized for every generation, with the
    /// missing-entry defaulting rule ("4× the previous one") and the
    /// zero-means-one rule applied. This is the ladder `maybe_collect`
    /// actually runs, and the form benchmark tables and the autotuner
    /// report so retuned ladders are visible.
    pub fn effective_frequency(&self) -> Vec<u64> {
        (0..self.generations)
            .map(|g| self.frequency_of(g))
            .collect()
    }

    /// A compact, deterministic JSON rendering of the policy-relevant
    /// knobs (generation count, *effective* frequency ladder, trigger,
    /// promotion), used by benchmark tables and experiment notes so a
    /// retuned configuration is visible wherever results are reported.
    pub fn to_json(&self) -> String {
        let ladder = self
            .effective_frequency()
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let promotion = match self.promotion {
            Promotion::NextGeneration => "next".to_string(),
            Promotion::Capped(c) => format!("cap{c}"),
            Promotion::SameGeneration => "same".to_string(),
        };
        format!(
            "{{\"generations\":{},\"frequency\":[{}],\"trigger_bytes\":{},\"promotion\":\"{}\"}}",
            self.generations, ladder, self.trigger_bytes, promotion
        )
    }
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_collects_young_most_often() {
        let c = GcConfig::new();
        assert_eq!(c.generation_for_collection(1), 0);
        assert_eq!(c.generation_for_collection(4), 1);
        assert_eq!(c.generation_for_collection(16), 2);
        assert_eq!(c.generation_for_collection(64), 3);
        assert_eq!(c.generation_for_collection(65), 0);
        assert_eq!(c.generation_for_collection(68), 1);
    }

    #[test]
    fn frequencies_extend_by_quadrupling() {
        let c = GcConfig {
            generations: 6,
            frequency: vec![1, 4],
            ..GcConfig::new()
        };
        assert_eq!(c.frequency_of(1), 4);
        assert_eq!(c.frequency_of(2), 16);
        assert_eq!(c.frequency_of(3), 64);
    }

    #[test]
    fn single_generation_always_collects_zero() {
        let c = GcConfig::with_generations(1);
        for i in 1..100 {
            assert_eq!(c.generation_for_collection(i), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one generation")]
    fn zero_generations_rejected() {
        let _ = GcConfig::with_generations(0);
    }

    #[test]
    fn zero_frequency_is_treated_as_one() {
        let c = GcConfig {
            generations: 2,
            frequency: vec![0, 0],
            ..GcConfig::new()
        };
        assert_eq!(c.frequency_of(0), 1);
        assert_eq!(c.generation_for_collection(3), 1);
    }

    #[test]
    fn empty_ladder_defaults_from_one() {
        let c = GcConfig {
            generations: 4,
            frequency: vec![],
            ..GcConfig::new()
        };
        assert_eq!(c.frequency_of(0), 1);
        assert_eq!(c.frequency_of(1), 4, "4x the implied 1");
        assert_eq!(c.frequency_of(2), 16);
        assert_eq!(c.effective_frequency(), vec![1, 4, 16, 64]);
    }

    #[test]
    fn quadrupling_saturates_instead_of_overflowing() {
        let c = GcConfig {
            generations: 40,
            frequency: vec![1],
            ..GcConfig::new()
        };
        assert_eq!(c.frequency_of(39), u64::MAX, "saturates, never panics");
    }

    #[test]
    fn effective_frequency_materializes_defaults_and_zero_rule() {
        let c = GcConfig {
            generations: 4,
            frequency: vec![0, 4],
            ..GcConfig::new()
        };
        assert_eq!(c.effective_frequency(), vec![1, 4, 16, 64]);
    }

    #[test]
    fn to_json_shows_the_effective_ladder() {
        let c = GcConfig {
            generations: 4,
            frequency: vec![1, 8],
            promotion: Promotion::Capped(2),
            ..GcConfig::new()
        };
        assert_eq!(
            c.to_json(),
            format!(
                "{{\"generations\":4,\"frequency\":[1,8,32,128],\
                 \"trigger_bytes\":{},\"promotion\":\"cap2\"}}",
                c.trigger_bytes
            )
        );
        assert!(GcConfig::new().to_json().contains("\"promotion\":\"next\""));
        let mut same = GcConfig::new();
        same.promotion = Promotion::SameGeneration;
        assert!(same.to_json().contains("\"promotion\":\"same\""));
    }
}

#[cfg(test)]
mod promotion_tests {
    use super::*;

    #[test]
    fn next_generation_matches_the_paper() {
        let p = Promotion::NextGeneration;
        assert_eq!(p.target(0, 3), 1);
        assert_eq!(p.target(2, 3), 3);
        assert_eq!(p.target(3, 3), 3, "oldest collects into itself");
    }

    #[test]
    fn capped_promotion_stops_at_the_ceiling() {
        let p = Promotion::Capped(2);
        assert_eq!(p.target(0, 3), 1);
        assert_eq!(p.target(1, 3), 2);
        assert_eq!(p.target(2, 3), 2, "never beyond the cap");
        assert_eq!(p.target(3, 3), 2);
    }

    #[test]
    fn same_generation_keeps_survivors_put() {
        let p = Promotion::SameGeneration;
        assert_eq!(p.target(0, 3), 1, "nursery still empties");
        assert_eq!(p.target(2, 3), 2);
    }
}
