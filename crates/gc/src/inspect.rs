//! Heap introspection: per-generation occupancy and human-readable
//! summaries, for diagnostics, tests, and the experiment harness.

use crate::heap::Heap;
use crate::stats::CollectionReport;
use guardians_segments::Space;
use std::fmt;

/// Occupancy of one generation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenerationUsage {
    /// Segments assigned to the generation (run tails included).
    pub segments: usize,
    /// Words actually in use (bump-allocated).
    pub used_words: usize,
    /// Of which, words in pair segments.
    pub pair_words: usize,
    /// Of which, words in weak-pair segments.
    pub weak_pair_words: usize,
    /// Guardian protected-list entries parked at this generation.
    pub protected_entries: usize,
}

impl Heap {
    /// Per-generation occupancy, youngest first.
    pub fn generation_usage(&self) -> Vec<GenerationUsage> {
        let mut out = vec![GenerationUsage::default(); self.config.generations as usize];
        for (_idx, info) in self.segs.iter() {
            let slot = &mut out[info.generation as usize];
            slot.segments += 1;
            if info.is_head() {
                let used = info.used as usize;
                slot.used_words += used;
                match info.space {
                    Space::Pair => slot.pair_words += used,
                    Space::WeakPair => slot.weak_pair_words += used,
                    Space::Typed | Space::Pure => {}
                }
            }
        }
        for (i, list) in self.protected.iter().enumerate() {
            if let Some(slot) = out.get_mut(i) {
                slot.protected_entries = list.len();
            }
        }
        out
    }

    /// Open-cursor bookkeeping as seen from both sides: segments whose
    /// `open_cursor` flag is set (linear scan over the segment table) and
    /// occupied allocation-cursor slots. The two must always be equal —
    /// and [`Heap::verify`] checks the stronger per-segment statement —
    /// but exposing the counts lets tests assert coherence directly at
    /// arbitrary interleaving points.
    pub fn open_cursor_counts(&self) -> (usize, usize) {
        let flagged = self
            .segs
            .iter()
            .filter(|(_, info)| info.open_cursor)
            .count();
        let slots = self.cursors.iter().filter(|c| c.is_some()).count();
        (flagged, slots)
    }

    /// A multi-line textual summary of the heap's current shape.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "heap: {} segments ({} KB), {} collections",
            self.segs.segments_allocated(),
            self.capacity_bytes() / 1024,
            self.collections
        );
        for (g, usage) in self.generation_usage().iter().enumerate() {
            let _ = writeln!(
                s,
                "  gen {g}: {:>5} segs, {:>9} words used ({} pair / {} weak), {} guarded entries",
                usage.segments,
                usage.used_words,
                usage.pair_words,
                usage.weak_pair_words,
                usage.protected_entries
            );
        }
        s
    }
}

impl fmt::Display for CollectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc#{}: gen {}→{}, copied {} words ({} pairs, {} objects), \
             roots {}, dirty segs {}, guardians {}/{}/{} (visited/finalized/held), \
             weak {}+{} (fwd/broken), {}us",
            self.collection_index,
            self.collected_generation,
            self.target_generation,
            self.words_copied,
            self.pairs_copied,
            self.objects_copied,
            self.roots_traced,
            self.dirty_segments_scanned,
            self.guardian_entries_visited,
            self.guardian_entries_finalized,
            self.guardian_entries_held,
            self.weak_cars_forwarded,
            self.weak_cars_broken,
            self.duration.as_micros()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn usage_tracks_aging() {
        let mut h = Heap::default();
        let mut list = Value::NIL;
        for i in 0..1000 {
            list = h.cons(Value::fixnum(i), list);
        }
        let r = h.root(list);
        let g = h.make_guardian();
        g.register(&mut h, r.get());

        let usage = h.generation_usage();
        assert!(usage[0].used_words >= 2000, "young data present");
        assert_eq!(usage[1].used_words, 0);
        assert_eq!(usage[0].protected_entries, 1);

        h.collect(0);
        let usage = h.generation_usage();
        assert_eq!(usage[0].used_words, 0, "young space emptied");
        assert!(usage[1].used_words >= 2000, "data promoted to gen 1");
        assert_eq!(
            usage[1].protected_entries, 1,
            "entry parked with its object"
        );
        assert_eq!(usage[0].protected_entries, 0);
    }

    #[test]
    fn weak_words_are_counted_separately() {
        let mut h = Heap::default();
        let w = h.weak_cons(Value::NIL, Value::NIL);
        let _r = h.root(w);
        let usage = h.generation_usage();
        assert_eq!(usage[0].weak_pair_words, 2);
    }

    #[test]
    fn dump_and_report_display_are_informative() {
        let mut h = Heap::default();
        let x = h.cons(Value::NIL, Value::NIL);
        let _r = h.root(x);
        h.collect(0);
        let dump = h.dump();
        assert!(dump.contains("gen 0:"), "{dump}");
        assert!(dump.contains("gen 3:"), "{dump}");
        let line = h.last_report().unwrap().to_string();
        assert!(line.contains("gen 0→1"), "{line}");
        assert!(line.contains("copied"), "{line}");
    }
}
