//! Whole-heap invariant checking, used throughout the test suite (and
//! after every collection in the property tests) to catch collector bugs
//! at the moment they corrupt the heap rather than when the corruption is
//! finally observed.

use crate::collect::incremental::IncrementalState;
use crate::header::Header;
use crate::heap::Heap;
use crate::value::{fwd, Value, TAG_MASK};
use guardians_segments::{SegIndex, SegKind, Space, NO_OWNER};
use std::fmt;

/// A heap invariant violation found by [`Heap::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    message: String,
}

impl VerifyError {
    fn new(message: impl Into<String>) -> VerifyError {
        VerifyError {
            message: message.into(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heap verification failed: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

impl Heap {
    /// Walks the entire heap checking structural invariants:
    ///
    /// * every object in every segment parses (headers decode, objects
    ///   fall inside the used region);
    /// * every traced field holds a valid value — no forwarding marks, no
    ///   headers, and pointers land on live objects in segments of the
    ///   matching space;
    /// * every root is valid;
    /// * protected-list entries satisfy the generation invariants
    ///   (an entry on `protected[i]` watches an object in generation ≥ i
    ///   via a tconc in generation ≥ i), which is what makes the paper's
    ///   per-generation lists sound;
    /// * finalizer watch entries satisfy the same object invariant.
    ///
    /// While an incremental collection is suspended between increments
    /// the stop-the-world invariants do not all hold; the walk dispatches
    /// to `Heap::verify_incremental`, which checks the between-increment
    /// invariants instead (forwarded-on-read well-formedness and write-
    /// barrier coverage).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        if let Some(st) = self.incremental.as_ref() {
            return self.verify_incremental(st);
        }
        // 1. Per-segment object walks.
        for (seg, info) in self.segs.iter() {
            if !info.is_head() {
                continue;
            }
            let base = self.segs.base_addr(seg);
            let used = info.used as usize;
            let mut off = 0;
            while off < used {
                match info.space {
                    Space::Pair | Space::WeakPair => {
                        // Weak cars are values too (forwarded or #f).
                        self.check_value(Value(self.segs.word(base.add(off))), "car")?;
                        self.check_value(Value(self.segs.word(base.add(off + 1))), "cdr")?;
                        off += 2;
                    }
                    Space::Typed | Space::Pure => {
                        let word = self.segs.word(base.add(off));
                        let header = Header::decode(word).ok_or_else(|| {
                            VerifyError::new(format!(
                                "bad header {word:#x} at {seg:?}+{off} (space {:?})",
                                info.space
                            ))
                        })?;
                        for i in 0..header.traced_words() {
                            let v = Value(self.segs.word(base.add(off + 1 + i)));
                            self.check_value(v, "object field")?;
                        }
                        off += header.total_words();
                    }
                }
            }
            if off != used {
                return Err(VerifyError::new(format!(
                    "object walk of {seg:?} overshot: used={used}, walked to {off}"
                )));
            }
        }

        // 2. Dirty-index coherence: every allocated segment whose dirty
        // flag is set must be present in the table's dirty index, or the
        // remembered-set scan would miss it. (The index may also hold
        // stale or duplicate entries; those are harmless by design.)
        for (seg, info) in self.segs.iter() {
            if info.dirty && !self.segs.dirty_index().contains(&seg) {
                return Err(VerifyError::new(format!(
                    "{seg:?} is dirty but missing from the dirty index"
                )));
            }
        }

        // 2b. Open-cursor coherence: a segment's `open_cursor` flag must
        // agree exactly with the allocation-cursor table, or the Cheney
        // sweep would park a still-advancing segment (or spin re-checking
        // a retired one).
        for (seg, info) in self.segs.iter() {
            let in_table = self.cursors.contains(&Some(seg));
            if info.open_cursor != in_table {
                return Err(VerifyError::new(format!(
                    "{seg:?} open_cursor flag is {} but cursor table says {}",
                    info.open_cursor, in_table
                )));
            }
        }

        // 2c. Worker-ownership coherence: region ownership marks exist
        // only while a parallel collection is running, and the verifier
        // runs only between collections — a lingering mark means a region
        // escaped its close (its `used` watermark may be stale).
        for (seg, info) in self.segs.iter() {
            if info.owner != NO_OWNER {
                return Err(VerifyError::new(format!(
                    "{seg:?} is still owned by collector worker {} outside a collection",
                    info.owner
                )));
            }
        }

        // 3. Roots.
        for v in self.roots.snapshot() {
            self.check_value(v, "root")?;
        }

        // 4. Protected lists.
        for (i, list) in self.protected.iter().enumerate() {
            for e in list {
                self.check_value(e.obj, "guarded object")?;
                self.check_value(e.rep, "guardian representative")?;
                self.check_value(e.tconc, "guardian tconc")?;
                if !e.tconc.is_pair_ptr() {
                    return Err(VerifyError::new(format!(
                        "tconc is not a pair: {:?}",
                        e.tconc
                    )));
                }
                if !self.config.flat_protected {
                    for (what, v) in [("object", e.obj), ("tconc", e.tconc)] {
                        if let Some(gen) = self.generation_of(v) {
                            if (gen as usize) < i {
                                return Err(VerifyError::new(format!(
                                    "protected[{i}] {what} lives in younger generation {gen}"
                                )));
                            }
                        }
                    }
                }
            }
        }

        // 5. Finalizer watch lists.
        for (i, list) in self.finalize_watch.iter().enumerate() {
            for e in list {
                self.check_value(e.obj, "finalizer-watched object")?;
                if let Some(gen) = self.generation_of(e.obj) {
                    if (gen as usize) < i {
                        return Err(VerifyError::new(format!(
                            "finalize_watch[{i}] object lives in younger generation {gen}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The between-increment invariants of a suspended incremental
    /// collection:
    ///
    /// * non-from-space segments still parse and their fields are
    ///   well-formed, except that a pointer's referent may already have
    ///   been copied (its first word is a forwarding mark, accepted by
    ///   the relaxed target check);
    /// * **barrier coverage**: a from-space pointer in a *strong* field
    ///   of a non-from-space segment is sound only if the collector's
    ///   remaining work ([`IncrementalState::covered`]) will re-visit the
    ///   segment — otherwise terminal reclaim would leave it dangling.
    ///   Weak cars are exempt (the terminal weak pass settles them);
    /// * from-space segments are not walked (copied objects carry broken
    ///   hearts in word 0 and are reclaimed wholesale at the end);
    /// * a dirty flag may be backed by the state's remembered-set
    ///   snapshot instead of the table's dirty index;
    /// * roots, protected entries, and finalizer watches may hold
    ///   from-space pointers (roots are re-forwarded at every increment;
    ///   guardian/finalizer entries are settled by the terminal
    ///   increment), so only well-formedness is checked, and the
    ///   protected generation invariants — re-established by the
    ///   terminal guardian pass — are skipped.
    fn verify_incremental(&self, st: &IncrementalState) -> Result<(), VerifyError> {
        // 1. Per-segment object walks, skipping the from-space.
        for (seg, info) in self.segs.iter() {
            if !info.is_head() || st.s.from_space.contains(seg) {
                continue;
            }
            let base = self.segs.base_addr(seg);
            let used = info.used as usize;
            let mut off = 0;
            while off < used {
                match info.space {
                    Space::Pair | Space::WeakPair => {
                        let weak_car = info.space == Space::WeakPair;
                        let car = Value(self.segs.word(base.add(off)));
                        self.check_value_incremental(st, car, seg, weak_car, "car")?;
                        let cdr = Value(self.segs.word(base.add(off + 1)));
                        self.check_value_incremental(st, cdr, seg, false, "cdr")?;
                        off += 2;
                    }
                    Space::Typed | Space::Pure => {
                        let word = self.segs.word(base.add(off));
                        let header = Header::decode(word).ok_or_else(|| {
                            VerifyError::new(format!(
                                "bad header {word:#x} at {seg:?}+{off} (space {:?})",
                                info.space
                            ))
                        })?;
                        for i in 0..header.traced_words() {
                            let v = Value(self.segs.word(base.add(off + 1 + i)));
                            self.check_value_incremental(st, v, seg, false, "object field")?;
                        }
                        off += header.total_words();
                    }
                }
            }
            if off != used {
                return Err(VerifyError::new(format!(
                    "object walk of {seg:?} overshot: used={used}, walked to {off}"
                )));
            }
        }

        // 2. Dirty-index coherence: mid-cycle, the flip's dirty snapshot
        // (the unscanned tail of `remset_pending`) stands in for index
        // membership — those segments keep their flags until scanned —
        // and from-space flags are simply left to die with the segment
        // at the terminal reclaim.
        for (seg, info) in self.segs.iter() {
            if info.dirty
                && !st.s.from_space.contains(seg)
                && !self.segs.dirty_index().contains(&seg)
                && !st.remset_pending[st.remset_cursor..].contains(&seg)
            {
                return Err(VerifyError::new(format!(
                    "{seg:?} is dirty but missing from the dirty index and the \
                     suspended collection's remembered-set snapshot"
                )));
            }
        }

        // 2b/2c. Cursor and ownership coherence hold between increments
        // exactly as between collections (increments run serially).
        for (seg, info) in self.segs.iter() {
            let in_table = self.cursors.contains(&Some(seg));
            if info.open_cursor != in_table {
                return Err(VerifyError::new(format!(
                    "{seg:?} open_cursor flag is {} but cursor table says {}",
                    info.open_cursor, in_table
                )));
            }
            if info.owner != NO_OWNER {
                return Err(VerifyError::new(format!(
                    "{seg:?} is owned by collector worker {} during an incremental cycle",
                    info.owner
                )));
            }
        }

        // 3. Roots, 4. protected lists, 5. finalizer watches: relaxed.
        for v in self.roots.snapshot() {
            self.check_value_relaxed(v, "root")?;
        }
        for list in self.protected.iter() {
            for e in list {
                self.check_value_relaxed(e.obj, "guarded object")?;
                self.check_value_relaxed(e.rep, "guardian representative")?;
                self.check_value_relaxed(e.tconc, "guardian tconc")?;
                if !e.tconc.is_pair_ptr() {
                    return Err(VerifyError::new(format!(
                        "tconc is not a pair: {:?}",
                        e.tconc
                    )));
                }
            }
        }
        for list in self.finalize_watch.iter() {
            for e in list {
                self.check_value_relaxed(e.obj, "finalizer-watched object")?;
            }
        }
        Ok(())
    }

    /// Field check for [`Heap::verify_incremental`]: a from-space pointer
    /// in a strong field must be covered by the suspended collection's
    /// outstanding work; its referent is checked with the relaxed rules.
    fn check_value_incremental(
        &self,
        st: &IncrementalState,
        v: Value,
        holder: SegIndex,
        weak_car: bool,
        what: &str,
    ) -> Result<(), VerifyError> {
        if v.is_ptr() && st.s.from_space.contains(v.addr().seg()) {
            if !weak_car && !st.covered(self, holder) {
                return Err(VerifyError::new(format!(
                    "{what} in {holder:?} holds a from-space pointer {v:?} but the \
                     segment is in none of the suspended collection's work lists \
                     (write-barrier coverage violation)"
                )));
            }
            return self.check_value_relaxed(v, what);
        }
        self.check_value(v, what)
    }

    fn check_value(&self, v: Value, what: &str) -> Result<(), VerifyError> {
        if fwd::decode(v.raw()).is_some() {
            return Err(VerifyError::new(format!(
                "{what} holds a forwarding mark: {:#x}",
                v.raw()
            )));
        }
        if Header::decode(v.raw()).is_some() {
            return Err(VerifyError::new(format!(
                "{what} holds a header word: {:#x}",
                v.raw()
            )));
        }
        if v.raw() & TAG_MASK == 0b101 || v.raw() & TAG_MASK == 0b110 {
            return Err(VerifyError::new(format!(
                "{what} holds an undefined tag: {:#x}",
                v.raw()
            )));
        }
        if !v.is_ptr() {
            return Ok(());
        }
        let addr = v.addr();
        let Some(info) = self.segs.try_info(addr.seg()) else {
            return Err(VerifyError::new(format!(
                "{what} points into a freed segment: {v:?}"
            )));
        };
        match info.kind {
            SegKind::Head => {
                if addr.offset() >= info.used as usize {
                    return Err(VerifyError::new(format!(
                        "{what} points past the used region: {v:?} (used {})",
                        info.used
                    )));
                }
            }
            SegKind::Tail { .. } => {
                return Err(VerifyError::new(format!(
                    "{what} points into the middle of a large object run: {v:?}"
                )));
            }
        }
        match info.space {
            Space::Pair | Space::WeakPair => {
                if !v.is_pair_ptr() {
                    return Err(VerifyError::new(format!(
                        "{what}: non-pair pointer into a pair space: {v:?}"
                    )));
                }
                if !addr.offset().is_multiple_of(2) {
                    return Err(VerifyError::new(format!("{what}: misaligned pair: {v:?}")));
                }
            }
            Space::Typed | Space::Pure => {
                if !v.is_obj_ptr() {
                    return Err(VerifyError::new(format!(
                        "{what}: pair pointer into an object space: {v:?}"
                    )));
                }
                if Header::decode(self.segs.word(addr)).is_none() {
                    return Err(VerifyError::new(format!(
                        "{what}: typed pointer does not target a header: {v:?}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// [`Heap::check_value`] with one relaxation for suspended
    /// incremental collections: a typed pointer's target word may be a
    /// forwarding mark instead of a header (the referent was already
    /// copied; readers chase the broken heart). From-space `used`
    /// watermarks are frozen at the flip, so the range checks stay exact.
    fn check_value_relaxed(&self, v: Value, what: &str) -> Result<(), VerifyError> {
        if fwd::decode(v.raw()).is_some() {
            return Err(VerifyError::new(format!(
                "{what} holds a forwarding mark: {:#x}",
                v.raw()
            )));
        }
        if Header::decode(v.raw()).is_some() {
            return Err(VerifyError::new(format!(
                "{what} holds a header word: {:#x}",
                v.raw()
            )));
        }
        if v.raw() & TAG_MASK == 0b101 || v.raw() & TAG_MASK == 0b110 {
            return Err(VerifyError::new(format!(
                "{what} holds an undefined tag: {:#x}",
                v.raw()
            )));
        }
        if !v.is_ptr() {
            return Ok(());
        }
        let addr = v.addr();
        let Some(info) = self.segs.try_info(addr.seg()) else {
            return Err(VerifyError::new(format!(
                "{what} points into a freed segment: {v:?}"
            )));
        };
        match info.kind {
            SegKind::Head => {
                if addr.offset() >= info.used as usize {
                    return Err(VerifyError::new(format!(
                        "{what} points past the used region: {v:?} (used {})",
                        info.used
                    )));
                }
            }
            SegKind::Tail { .. } => {
                return Err(VerifyError::new(format!(
                    "{what} points into the middle of a large object run: {v:?}"
                )));
            }
        }
        match info.space {
            Space::Pair | Space::WeakPair => {
                if !v.is_pair_ptr() {
                    return Err(VerifyError::new(format!(
                        "{what}: non-pair pointer into a pair space: {v:?}"
                    )));
                }
                if !addr.offset().is_multiple_of(2) {
                    return Err(VerifyError::new(format!("{what}: misaligned pair: {v:?}")));
                }
            }
            Space::Typed | Space::Pure => {
                if !v.is_obj_ptr() {
                    return Err(VerifyError::new(format!(
                        "{what}: pair pointer into an object space: {v:?}"
                    )));
                }
                let w = self.segs.word(addr);
                if Header::decode(w).is_none() && fwd::decode(w).is_none() {
                    return Err(VerifyError::new(format!(
                        "{what}: typed pointer targets neither header nor \
                         forwarding mark: {v:?}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_heap_verifies() {
        let h = Heap::default();
        h.verify().expect("empty heap is valid");
    }

    #[test]
    fn populated_heap_verifies() {
        let mut h = Heap::default();
        let s = h.make_string("hello");
        let v = h.make_vector(3, s);
        let p = h.cons(v, Value::NIL);
        let _root = h.root(p);
        let w = h.weak_cons(p, Value::NIL);
        let _root2 = h.root(w);
        let g = h.make_guardian();
        g.register(&mut h, p);
        h.register_for_finalization(p, 1);
        h.verify().expect("well-formed heap");
    }

    #[test]
    fn corruption_is_detected() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        let _root = h.root(p);
        // Smash the car with a raw forwarding-tagged word.
        h.segs.set_word(p.addr(), 0b111);
        let err = h.verify().expect_err("must detect the forwarding mark");
        assert!(err.to_string().contains("forwarding mark"), "got: {err}");
    }

    #[test]
    fn open_cursor_incoherence_is_detected() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        let _root = h.root(p);
        h.verify().expect("fresh cursor segment is coherent");
        h.segs.info_mut(p.addr().seg()).open_cursor = false;
        let err = h.verify().expect_err("must detect the cleared flag");
        assert!(err.to_string().contains("open_cursor"), "got: {err}");
    }

    #[test]
    fn lingering_worker_ownership_is_detected() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        let _root = h.root(p);
        h.verify().expect("fresh segment is unowned");
        h.segs.info_mut(p.addr().seg()).owner = 2;
        let err = h.verify().expect_err("must detect the ownership mark");
        assert!(
            err.to_string().contains("owned by collector worker 2"),
            "got: {err}"
        );
    }

    #[test]
    fn dangling_pointer_is_detected() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        // A pointer far outside any allocated segment.
        let bogus = Value::pair_at(guardians_segments::WordAddr::new(
            guardians_segments::SegIndex(900),
            0,
        ));
        h.set_car(p, bogus);
        let _root = h.root(p);
        let err = h.verify().expect_err("must detect the dangling pointer");
        assert!(err.to_string().contains("freed segment"), "got: {err}");
    }
}
