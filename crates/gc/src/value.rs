//! Tagged 64-bit value representation.
//!
//! Low three bits are the primary tag:
//!
//! | tag     | meaning                                              |
//! |---------|------------------------------------------------------|
//! | `0b000` | fixnum; the upper 61 bits are a signed integer       |
//! | `0b001` | pair pointer (ordinary *or* weak — weakness is a     |
//! |         | property of the segment's space, as in the paper)    |
//! | `0b010` | pointer to a header-prefixed ("typed") object        |
//! | `0b011` | immediate (`#f`, `#t`, `'()`, eof, void, characters) |
//! | `0b100` | object header (only ever stored in heap words)       |
//! | `0b111` | forwarding mark / broken heart (heap words only)     |
//!
//! Values with pointer tags carry a global word address (see
//! [`guardians_segments::WordAddr`]) in their upper bits. [`Value`] itself
//! is plain data: dereferencing always goes through the
//! [`Heap`](crate::Heap), which owns the segment table.

use guardians_segments::WordAddr;
use std::fmt;

pub(crate) const TAG_BITS: u32 = 3;
pub(crate) const TAG_MASK: u64 = 0b111;
pub(crate) const TAG_FIXNUM: u64 = 0b000;
pub(crate) const TAG_PAIR: u64 = 0b001;
pub(crate) const TAG_OBJ: u64 = 0b010;
pub(crate) const TAG_IMM: u64 = 0b011;
pub(crate) const TAG_HEADER: u64 = 0b100;
pub(crate) const TAG_FWD: u64 = 0b111;

const IMM_SUB_SHIFT: u32 = 3;
const IMM_SUB_MASK: u64 = 0xFF;
const IMM_FALSE: u64 = 0;
const IMM_TRUE: u64 = 1;
const IMM_NIL: u64 = 2;
const IMM_EOF: u64 = 3;
const IMM_VOID: u64 = 4;
const IMM_UNBOUND: u64 = 5;
const IMM_CHAR: u64 = 6;
const CHAR_SHIFT: u32 = 11;

/// Smallest representable fixnum.
pub const FIXNUM_MIN: i64 = -(1 << 60);
/// Largest representable fixnum.
pub const FIXNUM_MAX: i64 = (1 << 60) - 1;

/// A Scheme-style tagged value.
///
/// `Value` is `Copy` and does **not** keep its referent alive: hold a
/// [`Rooted`](crate::Rooted) cell (or store the value inside another live
/// object) across any call that may collect.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Value(pub(crate) u64);

impl Value {
    /// The false value `#f`.
    pub const FALSE: Value = Value((IMM_FALSE << IMM_SUB_SHIFT) | TAG_IMM);
    /// The true value `#t`.
    pub const TRUE: Value = Value((IMM_TRUE << IMM_SUB_SHIFT) | TAG_IMM);
    /// The empty list `'()`.
    pub const NIL: Value = Value((IMM_NIL << IMM_SUB_SHIFT) | TAG_IMM);
    /// The end-of-file object.
    pub const EOF: Value = Value((IMM_EOF << IMM_SUB_SHIFT) | TAG_IMM);
    /// The unspecified (void) value.
    pub const VOID: Value = Value((IMM_VOID << IMM_SUB_SHIFT) | TAG_IMM);
    /// The "unbound variable" marker used by environments.
    pub const UNBOUND: Value = Value((IMM_UNBOUND << IMM_SUB_SHIFT) | TAG_IMM);

    /// Builds a boolean.
    #[inline]
    pub fn bool(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Builds a fixnum.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `FIXNUM_MIN..=FIXNUM_MAX`.
    #[inline]
    pub fn fixnum(n: i64) -> Value {
        assert!(
            (FIXNUM_MIN..=FIXNUM_MAX).contains(&n),
            "fixnum out of range: {n}"
        );
        Value((n as u64) << TAG_BITS)
    }

    /// Builds a fixnum, returning `None` if out of range.
    #[inline]
    pub fn try_fixnum(n: i64) -> Option<Value> {
        (FIXNUM_MIN..=FIXNUM_MAX)
            .contains(&n)
            .then_some(Value((n as u64) << TAG_BITS))
    }

    /// Builds a character.
    #[inline]
    pub fn char(c: char) -> Value {
        Value(((c as u64) << CHAR_SHIFT) | (IMM_CHAR << IMM_SUB_SHIFT) | TAG_IMM)
    }

    /// Whether this is a fixnum.
    #[inline]
    pub fn is_fixnum(self) -> bool {
        self.0 & TAG_MASK == TAG_FIXNUM
    }

    /// The fixnum payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a fixnum.
    #[inline]
    pub fn as_fixnum(self) -> i64 {
        assert!(self.is_fixnum(), "not a fixnum: {self:?}");
        (self.0 as i64) >> TAG_BITS
    }

    /// Whether this is a character, and its payload.
    #[inline]
    pub fn as_char(self) -> Option<char> {
        if self.0 & TAG_MASK == TAG_IMM && (self.0 >> IMM_SUB_SHIFT) & IMM_SUB_MASK == IMM_CHAR {
            char::from_u32((self.0 >> CHAR_SHIFT) as u32)
        } else {
            None
        }
    }

    /// Whether this is a pointer to a pair (ordinary or weak).
    #[inline]
    pub fn is_pair_ptr(self) -> bool {
        self.0 & TAG_MASK == TAG_PAIR
    }

    /// Whether this is a pointer to a typed (header-prefixed) object.
    #[inline]
    pub fn is_obj_ptr(self) -> bool {
        self.0 & TAG_MASK == TAG_OBJ
    }

    /// Whether this is any heap pointer.
    #[inline]
    pub fn is_ptr(self) -> bool {
        matches!(self.0 & TAG_MASK, TAG_PAIR | TAG_OBJ)
    }

    /// Whether this is `#f`.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Value::FALSE
    }

    /// Whether this is `'()`.
    #[inline]
    pub fn is_nil(self) -> bool {
        self == Value::NIL
    }

    /// Scheme truthiness: everything except `#f` is true.
    #[inline]
    pub fn is_truthy(self) -> bool {
        !self.is_false()
    }

    /// The word address a pointer refers to.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a heap pointer.
    #[inline]
    pub fn addr(self) -> WordAddr {
        assert!(self.is_ptr(), "not a heap pointer: {self:?}");
        WordAddr(self.0 >> TAG_BITS)
    }

    /// Builds a pair pointer to `addr`.
    #[inline]
    pub(crate) fn pair_at(addr: WordAddr) -> Value {
        Value((addr.raw() << TAG_BITS) | TAG_PAIR)
    }

    /// Builds a typed-object pointer to `addr`.
    #[inline]
    pub(crate) fn obj_at(addr: WordAddr) -> Value {
        Value((addr.raw() << TAG_BITS) | TAG_OBJ)
    }

    /// Rebuilds this pointer at a new address, preserving the tag.
    #[inline]
    pub(crate) fn retag_at(self, addr: WordAddr) -> Value {
        Value((addr.raw() << TAG_BITS) | (self.0 & TAG_MASK))
    }

    /// The raw bit pattern (for hashing and debugging).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Default for Value {
    /// The default value is `#f`, matching the paper's use of `#f` as the
    /// "nothing here" marker.
    fn default() -> Self {
        Value::FALSE
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 & TAG_MASK {
            TAG_FIXNUM => write!(f, "{}", self.as_fixnum()),
            TAG_PAIR => write!(f, "pair@{:?}", self.addr()),
            TAG_OBJ => write!(f, "obj@{:?}", self.addr()),
            TAG_IMM => match (self.0 >> IMM_SUB_SHIFT) & IMM_SUB_MASK {
                IMM_FALSE => write!(f, "#f"),
                IMM_TRUE => write!(f, "#t"),
                IMM_NIL => write!(f, "()"),
                IMM_EOF => write!(f, "#<eof>"),
                IMM_VOID => write!(f, "#<void>"),
                IMM_UNBOUND => write!(f, "#<unbound>"),
                IMM_CHAR => match self.as_char() {
                    Some(c) => write!(f, "#\\{c}"),
                    None => write!(f, "#<bad-char>"),
                },
                other => write!(f, "#<imm:{other}>"),
            },
            tag => write!(f, "#<raw tag={tag} bits={:#x}>", self.0),
        }
    }
}

/// Forwarding-mark helpers (broken hearts), used only by the collector.
pub(crate) mod fwd {
    use super::*;

    /// Encodes a forwarding word pointing at `addr`.
    #[inline]
    pub fn encode(addr: WordAddr) -> u64 {
        (addr.raw() << TAG_BITS) | TAG_FWD
    }

    /// Decodes a forwarding word, if `word` is one.
    #[inline]
    pub fn decode(word: u64) -> Option<WordAddr> {
        (word & TAG_MASK == TAG_FWD).then_some(WordAddr(word >> TAG_BITS))
    }

    /// Claim marker the parallel engine CAS-installs into an object's
    /// first word while copying it: tag `0b101` is used by no value,
    /// header, or forwarding encoding, so a racing worker can tell
    /// "being copied, spin for the forwarding word" from every other
    /// state. Must never survive a collection region barrier — the
    /// claiming worker always overwrites it with [`encode`]`(to)` before
    /// finishing the object, and the verifier rejects it in heap words.
    pub const BUSY: u64 = 0b101;
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardians_segments::SegIndex;

    #[test]
    fn fixnum_round_trip() {
        for n in [0, 1, -1, 12345, -98765, FIXNUM_MIN, FIXNUM_MAX] {
            let v = Value::fixnum(n);
            assert!(v.is_fixnum());
            assert_eq!(v.as_fixnum(), n, "round trip of {n}");
        }
    }

    #[test]
    fn try_fixnum_rejects_out_of_range() {
        assert!(Value::try_fixnum(FIXNUM_MAX + 1).is_none());
        assert!(Value::try_fixnum(FIXNUM_MIN - 1).is_none());
        assert!(Value::try_fixnum(FIXNUM_MAX).is_some());
    }

    #[test]
    #[should_panic(expected = "fixnum out of range")]
    fn fixnum_panics_out_of_range() {
        let _ = Value::fixnum(FIXNUM_MAX + 1);
    }

    #[test]
    fn immediates_are_distinct() {
        let all = [
            Value::FALSE,
            Value::TRUE,
            Value::NIL,
            Value::EOF,
            Value::VOID,
            Value::UNBOUND,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
            assert!(!a.is_ptr());
            assert!(!a.is_fixnum());
        }
    }

    #[test]
    fn truthiness_matches_scheme() {
        assert!(!Value::FALSE.is_truthy());
        assert!(Value::TRUE.is_truthy());
        assert!(Value::NIL.is_truthy(), "'() is true in Scheme");
        assert!(Value::fixnum(0).is_truthy());
    }

    #[test]
    fn char_round_trip() {
        for c in ['a', 'λ', '\n', '\0', '🦀'] {
            assert_eq!(Value::char(c).as_char(), Some(c));
        }
        assert_eq!(Value::fixnum(97).as_char(), None);
        assert_eq!(Value::FALSE.as_char(), None);
    }

    #[test]
    fn pointer_round_trip_preserves_tag_and_addr() {
        let addr = WordAddr::new(SegIndex(12), 34);
        let p = Value::pair_at(addr);
        assert!(p.is_pair_ptr() && p.is_ptr() && !p.is_obj_ptr());
        assert_eq!(p.addr(), addr);
        let o = Value::obj_at(addr);
        assert!(o.is_obj_ptr() && !o.is_pair_ptr());
        assert_eq!(o.addr(), addr);
        let moved = WordAddr::new(SegIndex(99), 0);
        assert!(p.retag_at(moved).is_pair_ptr());
        assert_eq!(p.retag_at(moved).addr(), moved);
    }

    #[test]
    fn forwarding_words_round_trip_and_reject_values() {
        let addr = WordAddr::new(SegIndex(3), 7);
        let w = fwd::encode(addr);
        assert_eq!(fwd::decode(w), Some(addr));
        assert_eq!(fwd::decode(Value::fixnum(7).raw()), None);
        assert_eq!(fwd::decode(Value::pair_at(addr).raw()), None);
        assert_eq!(fwd::decode(Value::FALSE.raw()), None);
    }

    #[test]
    fn default_is_false() {
        assert_eq!(Value::default(), Value::FALSE);
    }

    #[test]
    fn debug_is_nonempty_for_everything() {
        for v in [Value::FALSE, Value::NIL, Value::fixnum(3), Value::char('x')] {
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
