//! MIT-Scheme / T style weak hashing, paper Section 2:
//!
//! > "The primitive `hash` accepts an object and returns an integer that
//! > is unique to that object … The primitive `unhash` accepts an integer
//! > and returns the associated object, if the object has not been
//! > reclaimed by the garbage collector. If the object has been reclaimed,
//! > `unhash` returns false. The integer can be used as a weak pointer to
//! > the object."

use guardians_gc::{Heap, Rooted, Value};
use std::collections::HashMap;

/// The `hash`/`unhash` weak-pointer registry.
#[derive(Debug)]
pub struct WeakHasher {
    /// Heap list of weak pairs `(object . id-fixnum)`.
    entries: Rooted,
    next_id: u64,
    /// id → weak pair, for O(1) unhash. The weak pairs are reachable from
    /// `entries`, so storing their (relocating) values here would go
    /// stale; instead unhash walks from a per-collection index.
    index: HashMap<u64, Value>,
    stamp: u64,
    /// Entries touched while rebuilding the index after collections.
    pub entries_reindexed: u64,
}

impl WeakHasher {
    /// An empty registry.
    pub fn new(heap: &mut Heap) -> WeakHasher {
        WeakHasher {
            entries: heap.root(Value::NIL),
            next_id: 1,
            index: HashMap::new(),
            stamp: heap.collection_count(),
            entries_reindexed: 0,
        }
    }

    fn refresh(&mut self, heap: &mut Heap) {
        if heap.collection_count() == self.stamp {
            return;
        }
        // Rebuild the id index and prune broken entries — a full
        // traversal, as the paper observes for all weak-pointer schemes.
        self.index.clear();
        let mut live = Vec::new();
        let mut cur = self.entries.get();
        while !cur.is_nil() {
            self.entries_reindexed += 1;
            let pair = heap.car(cur);
            let obj = heap.car(pair);
            if !obj.is_false() {
                live.push(pair);
            }
            cur = heap.cdr(cur);
        }
        let mut list = Value::NIL;
        for &pair in live.iter().rev() {
            list = heap.cons(pair, list);
        }
        self.entries.set(list);
        let mut cur = self.entries.get();
        while !cur.is_nil() {
            let pair = heap.car(cur);
            let id = heap.cdr(pair).as_fixnum() as u64;
            self.index.insert(id, pair);
            cur = heap.cdr(cur);
        }
        self.stamp = heap.collection_count();
    }

    /// Returns the unique integer for `obj`, assigning one on first use.
    pub fn hash(&mut self, heap: &mut Heap, obj: Value) -> u64 {
        self.refresh(heap);
        // Existing assignment? (linear scan: ids are object-keyed and
        // addresses are unstable, so there is no cheap reverse index).
        let mut cur = self.entries.get();
        while !cur.is_nil() {
            let pair = heap.car(cur);
            if heap.car(pair) == obj {
                return heap.cdr(pair).as_fixnum() as u64;
            }
            cur = heap.cdr(cur);
        }
        let id = self.next_id;
        self.next_id += 1;
        let pair = heap.weak_cons(obj, Value::fixnum(id as i64));
        let cell = heap.cons(pair, self.entries.get());
        self.entries.set(cell);
        self.index.insert(id, pair);
        id
    }

    /// Returns the object for `id`, or `None` if it was reclaimed (the
    /// paper's `unhash` returning false).
    pub fn unhash(&mut self, heap: &mut Heap, id: u64) -> Option<Value> {
        self.refresh(heap);
        let pair = *self.index.get(&id)?;
        let obj = heap.car(pair);
        obj.is_truthy().then_some(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_unique() {
        let mut heap = Heap::default();
        let mut wh = WeakHasher::new(&mut heap);
        let a = heap.cons(Value::fixnum(1), Value::NIL);
        let b = heap.cons(Value::fixnum(2), Value::NIL);
        let (ra, rb) = (heap.root(a), heap.root(b));
        let ha = wh.hash(&mut heap, a);
        let hb = wh.hash(&mut heap, b);
        assert_ne!(ha, hb, "never the same integer for a different object");
        heap.collect(0);
        assert_eq!(wh.hash(&mut heap, ra.get()), ha, "stable across moves");
        assert_eq!(wh.hash(&mut heap, rb.get()), hb);
    }

    #[test]
    fn unhash_returns_object_while_alive_then_none() {
        let mut heap = Heap::default();
        let mut wh = WeakHasher::new(&mut heap);
        let a = heap.cons(Value::fixnum(7), Value::NIL);
        let ra = heap.root(a);
        let id = wh.hash(&mut heap, a);
        heap.collect(0);
        assert_eq!(wh.unhash(&mut heap, id), Some(ra.get()));
        drop(ra);
        heap.collect(heap.config().max_generation());
        assert_eq!(wh.unhash(&mut heap, id), None, "reclaimed → false");
        assert_eq!(wh.unhash(&mut heap, 999), None, "unknown id");
        heap.verify().unwrap();
    }

    #[test]
    fn ids_are_weak_pointers_not_retainers() {
        let mut heap = Heap::default();
        let mut wh = WeakHasher::new(&mut heap);
        for i in 0..100 {
            let v = heap.cons(Value::fixnum(i), Value::NIL);
            wh.hash(&mut heap, v);
        }
        heap.collect(heap.config().max_generation());
        // Any access rebuilds the index — counting the full-traversal cost.
        assert_eq!(wh.unhash(&mut heap, 1), None);
        assert_eq!(wh.entries_reindexed, 100);
    }
}
