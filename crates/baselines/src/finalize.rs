//! Dickey-style collector-invoked finalization (paper Section 2):
//!
//! > "The procedure `register-for-finalization` accepts two arguments: an
//! > object and a thunk (zero-arity procedure). The thunk is invoked
//! > automatically during garbage collection if the object has been
//! > reclaimed. … the thunk is not permitted to cause heap allocation
//! > since it is invoked as part of the garbage collection process …
//! > Furthermore, since garbage collections happen at arbitrary times, the
//! > programmer has no control over when the actions are invoked. Errors
//! > that occur within the thunk are problematic as well."
//!
//! This registry reproduces those restrictions faithfully: thunks run
//! immediately after the collection that proved the object dead, with
//! **allocation forbidden** (an allocating thunk panics, as the tests
//! demonstrate), and thunk errors are collected rather than propagated,
//! "suppressed or somehow delayed until all finalization is complete."

use guardians_gc::{Heap, Value};
use std::collections::HashMap;

/// A clean-up thunk. It receives the heap read-only — it cannot even see
/// the dead object (the mechanism "discards the object and leaves behind"
/// only what the thunk captured), and must not allocate.
pub type FinalizeThunk = Box<dyn FnMut(&Heap) -> Result<(), String>>;

/// The `register-for-finalization` registry.
#[derive(Default)]
pub struct FinalizationRegistry {
    thunks: HashMap<u64, FinalizeThunk>,
    next_id: u64,
    /// Thunks run so far.
    pub runs: u64,
    /// Errors raised by thunks, suppressed and accumulated.
    pub suppressed_errors: Vec<String>,
}

impl FinalizationRegistry {
    /// An empty registry.
    pub fn new() -> FinalizationRegistry {
        FinalizationRegistry::default()
    }

    /// Registers `obj` for finalization by `thunk`.
    pub fn register_for_finalization(
        &mut self,
        heap: &mut Heap,
        obj: Value,
        thunk: impl FnMut(&Heap) -> Result<(), String> + 'static,
    ) {
        let id = self.next_id;
        self.next_id += 1;
        self.thunks.insert(id, Box::new(thunk));
        heap.register_for_finalization(obj, id);
    }

    /// Runs the thunks for every object the most recent collection proved
    /// dead. In the original design this happens *inside* the collector;
    /// call this immediately after `collect` to reproduce that timing.
    /// Returns how many thunks ran.
    pub fn run_pending(&mut self, heap: &mut Heap) -> usize {
        let ids: Vec<u64> = heap
            .last_report()
            .map(|r| r.finalized_ids.clone())
            .unwrap_or_default();
        let mut ran = 0;
        // The collector is still conceptually "running": allocation from
        // a finalization thunk must not trigger a nested collection.
        heap.set_allocation_forbidden(true);
        for id in ids {
            if let Some(mut thunk) = self.thunks.remove(&id) {
                if let Err(e) = thunk(heap) {
                    // "error signals must be suppressed or somehow delayed
                    // until all finalization is complete."
                    self.suppressed_errors.push(e);
                }
                ran += 1;
                self.runs += 1;
            }
        }
        heap.set_allocation_forbidden(false);
        ran
    }

    /// Objects still awaiting death.
    pub fn pending(&self) -> usize {
        self.thunks.len()
    }
}

impl std::fmt::Debug for FinalizationRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FinalizationRegistry")
            .field("pending", &self.thunks.len())
            .field("runs", &self.runs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn thunks_run_after_death() {
        let mut heap = Heap::default();
        let mut reg = FinalizationRegistry::new();
        let ran = Rc::new(Cell::new(0));
        let a = heap.cons(Value::fixnum(1), Value::NIL);
        let b = heap.cons(Value::fixnum(2), Value::NIL);
        let keep = heap.root(b);
        for obj in [a, b] {
            let ran = Rc::clone(&ran);
            reg.register_for_finalization(&mut heap, obj, move |_| {
                ran.set(ran.get() + 1);
                Ok(())
            });
        }
        heap.collect(heap.config().max_generation());
        assert_eq!(
            reg.run_pending(&mut heap),
            1,
            "only the dead object's thunk"
        );
        assert_eq!(ran.get(), 1);
        assert_eq!(reg.pending(), 1);
        drop(keep);
        heap.collect(heap.config().max_generation());
        reg.run_pending(&mut heap);
        assert_eq!(ran.get(), 2);
    }

    #[test]
    fn thunk_errors_are_suppressed_not_raised() {
        let mut heap = Heap::default();
        let mut reg = FinalizationRegistry::new();
        let a = heap.cons(Value::NIL, Value::NIL);
        let b = heap.cons(Value::NIL, Value::NIL);
        reg.register_for_finalization(&mut heap, a, |_| Err("fd already closed".into()));
        let ran = Rc::new(Cell::new(false));
        let r2 = Rc::clone(&ran);
        reg.register_for_finalization(&mut heap, b, move |_| {
            r2.set(true);
            Ok(())
        });
        heap.collect(heap.config().max_generation());
        reg.run_pending(&mut heap);
        assert_eq!(reg.suppressed_errors, vec!["fd already closed".to_string()]);
        assert!(
            ran.get(),
            "later thunks still ran despite the earlier error"
        );
    }

    #[test]
    fn finalization_happens_at_collector_timing_not_program_timing() {
        // The contrast with guardians: the program cannot defer this.
        let mut heap = Heap::default();
        let mut reg = FinalizationRegistry::new();
        let seen = Rc::new(Cell::new(false));
        let s = Rc::clone(&seen);
        let a = heap.cons(Value::NIL, Value::NIL);
        reg.register_for_finalization(&mut heap, a, move |_| {
            s.set(true);
            Ok(())
        });
        // Some library code happens to trigger a collection...
        heap.collect(heap.config().max_generation());
        reg.run_pending(&mut heap);
        assert!(
            seen.get(),
            "...and the clean-up ran right there, mid-'collection'"
        );
    }
}
