//! T-style weak sets ("populations"), paper Section 2:
//!
//! > "A weak set is a data structure containing a set of objects.
//! > Operations are provided to add new objects, remove objects, and
//! > retrieve a list of the objects in the set. … an object that is not
//! > accessible except by way of one or more weak sets is ultimately
//! > discarded and removed from the weak sets to which it belonged."
//!
//! The paper's criticism, reproduced here as counters: "if a list of weak
//! pointers is maintained …, the entire list must be traversed to find
//! the pointers that have been broken, even if none or only a few of the
//! elements have been dropped by the collector."

use guardians_gc::{Heap, Rooted, Value};

/// A weak set over heap objects.
#[derive(Debug)]
pub struct WeakSet {
    /// Heap list of weak pairs `(element . #f)`.
    items: Rooted,
    len: usize,
    /// Entries touched by traversals — the proportionality metric.
    pub entries_traversed: u64,
    /// Broken entries discarded by traversals.
    pub entries_dropped: u64,
}

impl WeakSet {
    /// An empty weak set.
    pub fn new(heap: &mut Heap) -> WeakSet {
        WeakSet {
            items: heap.root(Value::NIL),
            len: 0,
            entries_traversed: 0,
            entries_dropped: 0,
        }
    }

    /// Adds an object (weakly).
    pub fn add(&mut self, heap: &mut Heap, v: Value) {
        let cell = heap.weak_cons(v, self.items.get());
        self.items.set(cell);
        self.len += 1;
    }

    /// Removes one occurrence of `v` (by `eq?`); returns whether found.
    /// Requires a full traversal, like every weak-set operation.
    pub fn remove(&mut self, heap: &mut Heap, v: Value) -> bool {
        let mut kept = Vec::new();
        let mut found = false;
        let mut cur = self.items.get();
        while !cur.is_nil() {
            self.entries_traversed += 1;
            let car = heap.car(cur);
            if !found && car == v {
                found = true;
            } else {
                kept.push(car);
            }
            cur = heap.cdr(cur);
        }
        self.rebuild(heap, &kept);
        found
    }

    /// The members still alive. **Traverses the entire list** (counting
    /// the work), pruning broken entries as a side effect.
    pub fn members(&mut self, heap: &mut Heap) -> Vec<Value> {
        let mut live = Vec::new();
        let mut cur = self.items.get();
        while !cur.is_nil() {
            self.entries_traversed += 1;
            let car = heap.car(cur);
            if car.is_false() {
                self.entries_dropped += 1;
            } else {
                live.push(car);
            }
            cur = heap.cdr(cur);
        }
        self.rebuild(heap, &live);
        live
    }

    fn rebuild(&mut self, heap: &mut Heap, live: &[Value]) {
        let mut list = Value::NIL;
        for &v in live.iter().rev() {
            list = heap.weak_cons(v, list);
        }
        self.items.set(list);
        self.len = live.len();
    }

    /// Physical entries currently in the list (broken ones included until
    /// the next traversal).
    pub fn physical_len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_drop_dead_objects() {
        let mut heap = Heap::default();
        let mut set = WeakSet::new(&mut heap);
        let a = heap.cons(Value::fixnum(1), Value::NIL);
        let b = heap.cons(Value::fixnum(2), Value::NIL);
        let keep = heap.root(b);
        set.add(&mut heap, a);
        set.add(&mut heap, b);
        heap.collect(heap.config().max_generation());
        let live = set.members(&mut heap);
        assert_eq!(live, vec![keep.get()]);
        assert_eq!(set.entries_dropped, 1);
        heap.verify().unwrap();
    }

    #[test]
    fn remove_is_by_identity() {
        let mut heap = Heap::default();
        let mut set = WeakSet::new(&mut heap);
        let a = heap.cons(Value::fixnum(1), Value::NIL);
        let b = heap.cons(Value::fixnum(1), Value::NIL);
        let (ra, rb) = (heap.root(a), heap.root(b));
        set.add(&mut heap, a);
        set.add(&mut heap, b);
        assert!(set.remove(&mut heap, ra.get()));
        assert!(
            !set.remove(&mut heap, ra.get()),
            "only one occurrence existed"
        );
        let live = set.members(&mut heap);
        assert_eq!(live, vec![rb.get()]);
    }

    #[test]
    fn traversal_cost_scales_with_set_size() {
        let mut heap = Heap::default();
        let mut set = WeakSet::new(&mut heap);
        let mut roots = Vec::new();
        for i in 0..100 {
            let v = heap.cons(Value::fixnum(i), Value::NIL);
            roots.push(heap.root(v));
            set.add(&mut heap, v);
        }
        roots.pop(); // exactly one death
        heap.collect(heap.config().max_generation());
        set.entries_traversed = 0;
        let live = set.members(&mut heap);
        assert_eq!(live.len(), 99);
        assert_eq!(
            set.entries_traversed, 100,
            "paid for all 100 to find 1 — the paper's point"
        );
    }

    #[test]
    fn weak_set_membership_does_not_retain() {
        let mut heap = Heap::default();
        let mut set = WeakSet::new(&mut heap);
        for i in 0..50 {
            let v = heap.cons(Value::fixnum(i), Value::NIL);
            set.add(&mut heap, v);
        }
        heap.collect(heap.config().max_generation());
        assert!(
            set.members(&mut heap).is_empty(),
            "nothing retained by the set alone"
        );
    }
}
