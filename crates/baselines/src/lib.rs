#![warn(missing_docs)]

//! The finalization mechanisms from the paper's Background section
//! (Section 2), implemented as comparison baselines:
//!
//! * [`WeakSet`] — T's "populations": weak sets whose every operation
//!   traverses the full list.
//! * [`WeakHasher`] — MIT-Scheme / T `hash`/`unhash` weak pointers.
//! * [`FinalizationRegistry`] — Dickey's `register-for-finalization`:
//!   collector-invoked thunks, with the no-allocation restriction and
//!   error suppression the paper criticises reproduced faithfully.
//! * [`IndirectPorts`] — the weak-pointer + forwarding-header workaround
//!   (Atkins), paying an extra dereference per I/O operation and a
//!   full-registry scan per clean-up.
//! * [`ScanTable`] — re-export of the weak-key hash table that needs
//!   periodic full scans (lives in `guardians-runtime` next to the
//!   guarded table it contrasts with).
//!
//! Together with the guarded implementations in `guardians-runtime`,
//! these are the comparison points for experiments E1, E4, and E5.

pub mod finalize;
pub mod indirection;
pub mod weak_hash;
pub mod weak_set;

pub use finalize::{FinalizationRegistry, FinalizeThunk};
pub use guardians_runtime::WeakKeyTable as ScanTable;
pub use indirection::IndirectPorts;
pub use weak_hash::WeakHasher;
pub use weak_set::WeakSet;
