//! The indirection-header workaround (paper Section 2) and Atkins-style
//! forwarding objects:
//!
//! > "Instead of maintaining a pointer directly to the data, the program
//! > can maintain a weak pointer to an object header containing a nonweak
//! > pointer to the data. If a separate nonweak pointer to the data is
//! > maintained, then when the weak pointer to the header is broken the
//! > data needed to perform the clean-up action is still available. …
//! > the overhead caused by the extra level of indirection is unacceptable
//! > in some cases. In the case of ports, for example, it significantly
//! > increases the cost of reading or writing a character."
//!
//! [`IndirectPorts`] reproduces the scheme exactly: clients hold a
//! *header* (a one-field record forwarding to the real port); a registry
//! keeps a weak pointer to each header plus a nonweak pointer to the
//! underlying port, and a periodic scan closes ports whose headers broke.
//! Every I/O operation pays the extra dereference — the cost experiment
//! E5 measures against direct guarded ports.

use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::ports;
use guardians_runtime::simos::{OsError, SimOs};

/// Descriptor for forwarding-header records.
fn header_tag() -> Value {
    Value::fixnum(0x464f5257) // "FORW"
}

/// Port management via weak-pointed forwarding headers.
#[derive(Debug)]
pub struct IndirectPorts {
    /// Heap list of pairs `(weak-header-pair . port)`: the weak pointer to
    /// the header and the nonweak pointer to the data, exactly as in the
    /// paper's description.
    registry: Rooted,
    /// Entries examined by clean-up scans.
    pub entries_scanned: u64,
    /// Ports closed by clean-up scans.
    pub dropped_closed: u64,
}

impl IndirectPorts {
    /// An empty registry.
    pub fn new(heap: &mut Heap) -> IndirectPorts {
        IndirectPorts {
            registry: heap.root(Value::NIL),
            entries_scanned: 0,
            dropped_closed: 0,
        }
    }

    /// Opens an output port and returns its forwarding **header**; the
    /// client never sees the port itself.
    ///
    /// # Errors
    ///
    /// Propagates OS errors.
    pub fn open_output(
        &mut self,
        heap: &mut Heap,
        os: &mut SimOs,
        path: &str,
    ) -> Result<Value, OsError> {
        let port = ports::open_output_port(heap, os, path)?;
        let header = heap.make_record(header_tag(), &[port]);
        let weak = heap.weak_cons(header, Value::FALSE);
        let entry = heap.cons(weak, port);
        let cell = heap.cons(entry, self.registry.get());
        self.registry.set(cell);
        Ok(header)
    }

    /// Opens an input port behind a header.
    ///
    /// # Errors
    ///
    /// Propagates OS errors.
    pub fn open_input(
        &mut self,
        heap: &mut Heap,
        os: &mut SimOs,
        path: &str,
    ) -> Result<Value, OsError> {
        let port = ports::open_input_port(heap, os, path)?;
        let header = heap.make_record(header_tag(), &[port]);
        let weak = heap.weak_cons(header, Value::FALSE);
        let entry = heap.cons(weak, port);
        let cell = heap.cons(entry, self.registry.get());
        self.registry.set(cell);
        Ok(header)
    }

    /// The forwarded port (the Atkins automatic-indirection step, paid on
    /// every operation).
    #[inline]
    pub fn deref(&self, heap: &Heap, header: Value) -> Value {
        debug_assert!(heap.record_descriptor(header) == header_tag());
        heap.record_ref(header, 0)
    }

    /// Reads a byte through the header — one extra memory reference per
    /// character compared with a direct port.
    ///
    /// # Errors
    ///
    /// As for [`ports::read_byte`].
    pub fn read_byte(
        &self,
        heap: &mut Heap,
        os: &mut SimOs,
        header: Value,
    ) -> Result<Option<u8>, OsError> {
        let port = self.deref(heap, header);
        ports::read_byte(heap, os, port)
    }

    /// Writes a byte through the header.
    ///
    /// # Errors
    ///
    /// As for [`ports::write_byte`].
    pub fn write_byte(
        &self,
        heap: &mut Heap,
        os: &mut SimOs,
        header: Value,
        byte: u8,
    ) -> Result<(), OsError> {
        let port = self.deref(heap, header);
        ports::write_byte(heap, os, port, byte)
    }

    /// The clean-up scan: walks **every** registry entry looking for
    /// broken weak pointers, closing the associated ports. Unlike a
    /// guardian drain, the cost is proportional to the number of live
    /// ports, not the number of drops.
    ///
    /// # Errors
    ///
    /// OS errors while closing.
    pub fn scan_and_close(&mut self, heap: &mut Heap, os: &mut SimOs) -> Result<usize, OsError> {
        let mut kept = Vec::new();
        let mut closed = 0;
        let mut cur = self.registry.get();
        while !cur.is_nil() {
            self.entries_scanned += 1;
            let entry = heap.car(cur);
            let weak = heap.car(entry);
            let header = heap.car(weak);
            if header.is_false() {
                let port = heap.cdr(entry);
                if ports::is_open(heap, port) {
                    ports::close_port(heap, os, port)?;
                    closed += 1;
                    self.dropped_closed += 1;
                }
            } else {
                kept.push(entry);
            }
            cur = heap.cdr(cur);
        }
        let mut list = Value::NIL;
        for &e in kept.iter().rev() {
            list = heap.cons(e, list);
        }
        self.registry.set(list);
        Ok(closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_works_through_the_indirection() {
        let mut heap = Heap::default();
        let mut os = SimOs::new();
        let mut ip = IndirectPorts::new(&mut heap);
        let h = ip.open_output(&mut heap, &mut os, "/f").unwrap();
        for b in b"hi there" {
            ip.write_byte(&mut heap, &mut os, h, *b).unwrap();
        }
        let hr = heap.root(h);
        heap.collect(0);
        let h = hr.get();
        let port = ip.deref(&heap, h);
        ports::close_port(&mut heap, &mut os, port).unwrap();
        assert_eq!(os.file_contents("/f").unwrap(), b"hi there");
    }

    #[test]
    fn dropped_headers_close_their_ports_via_the_scan() {
        let mut heap = Heap::default();
        let mut os = SimOs::new();
        let mut ip = IndirectPorts::new(&mut heap);
        let kept = ip.open_output(&mut heap, &mut os, "/keep").unwrap();
        let keep_root = heap.root(kept);
        for i in 0..5 {
            let h = ip
                .open_output(&mut heap, &mut os, &format!("/drop{i}"))
                .unwrap();
            ip.write_byte(&mut heap, &mut os, h, b'x').unwrap();
        }
        assert_eq!(os.open_count(), 6);
        heap.collect(heap.config().max_generation());
        let closed = ip.scan_and_close(&mut heap, &mut os).unwrap();
        assert_eq!(closed, 5);
        assert_eq!(os.open_count(), 1);
        assert_eq!(
            os.file_contents("/drop0").unwrap(),
            b"x",
            "flushed on close"
        );
        assert!(ports::is_open(&heap, ip.deref(&heap, keep_root.get())));
        heap.verify().unwrap();
    }

    #[test]
    fn the_unsafety_the_paper_warns_about() {
        // "it is possible for some part of a program to keep a pointer to
        // the data itself even after the header has been dropped" — then
        // the scan closes the port out from under that pointer.
        let mut heap = Heap::default();
        let mut os = SimOs::new();
        let mut ip = IndirectPorts::new(&mut heap);
        let h = ip.open_output(&mut heap, &mut os, "/f").unwrap();
        // A careless component peels off the real port and keeps it.
        let smuggled = ip.deref(&heap, h);
        let smuggled_root = heap.root(smuggled);
        // The header is dropped...
        heap.collect(heap.config().max_generation());
        ip.scan_and_close(&mut heap, &mut os).unwrap();
        // ...and the smuggled direct pointer is now a closed port.
        assert!(
            !ports::is_open(&heap, smuggled_root.get()),
            "dangling resource: the hazard guardians avoid"
        );
    }

    #[test]
    fn scan_cost_scales_with_live_ports() {
        let mut heap = Heap::default();
        let mut os = SimOs::with_fd_limit(256);
        let mut ip = IndirectPorts::new(&mut heap);
        let mut keep = Vec::new();
        for i in 0..100 {
            let h = ip
                .open_output(&mut heap, &mut os, &format!("/p{i}"))
                .unwrap();
            keep.push(heap.root(h));
        }
        keep.pop(); // one drop
        heap.collect(heap.config().max_generation());
        ip.entries_scanned = 0;
        let closed = ip.scan_and_close(&mut heap, &mut os).unwrap();
        assert_eq!(closed, 1);
        assert_eq!(
            ip.entries_scanned, 100,
            "touched every live port to find one drop"
        );
    }
}
