//! Typed weak references over the heap's weak-pair machinery.

use crate::ctx::ApiCtx;
use crate::handle::{Gc, Root, RootSlot};
use crate::trace::{expect_typed, Trace};
use guardians_gc::{Heap, Value};
use std::marker::PhantomData;

/// A typed weak reference: observes the referent without keeping it
/// alive.
///
/// Backed by a rooted weak pair whose car holds the referent weakly; the
/// weak pass of each collection forwards the car when the referent moves
/// and breaks it to `#f` when the referent is reclaimed. Per the paper's
/// ordering (guardian pass *before* weak break), a weak reference to an
/// object a guardian saved still upgrades — resurrection through a
/// guardian never leaves dangling typed weaks.
pub struct Weak<T: Trace> {
    /// Shadow-stack slot rooting the weak *pair* (not the referent).
    slot: RootSlot,
    _marker: PhantomData<T>,
}

impl<T: Trace> Weak<T> {
    /// Creates a weak reference to `target`. Allocates one weak pair.
    pub fn new(heap: &mut Heap, ctx: &ApiCtx, target: &Root<T>) -> Weak<T> {
        let pair = heap.weak_cons(target.value(), Value::NIL);
        Weak {
            slot: ctx.claim_slot(pair),
            _marker: PhantomData,
        }
    }

    /// Rebuilds a typed view over an existing weak pair (raw-layer
    /// interop); the pair's car must currently be a `T` or `#f`.
    pub fn from_pair(heap: &Heap, ctx: &ApiCtx, pair: Value) -> Weak<T> {
        let car = heap.car(pair);
        if !car.is_false() {
            expect_typed::<T>(heap, car);
        }
        Weak {
            slot: ctx.claim_slot(pair),
            _marker: PhantomData,
        }
    }

    /// The underlying weak pair (raw-layer escape hatch).
    pub fn pair(&self) -> Value {
        self.slot_value()
    }

    fn slot_value(&self) -> Value {
        self.slot.shadow.get(self.slot.index)
    }

    /// The referent, if it has not been reclaimed. The returned [`Gc`] is
    /// a heap borrow like any other — root it to hold it across a safe
    /// point.
    pub fn upgrade<'gc>(&self, heap: &'gc Heap) -> Option<Gc<'gc, T>> {
        let car = heap.car(self.slot_value());
        if car.is_false() {
            None
        } else {
            expect_typed::<T>(heap, car);
            Some(Gc::from_value(car))
        }
    }

    /// Whether the referent has been proven dead and the car broken.
    pub fn is_broken(&self, heap: &Heap) -> bool {
        heap.car(self.slot_value()).is_false()
    }
}

impl<T: Trace> std::fmt::Debug for Weak<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Weak<{}>({:?})", T::NAME, self.slot_value())
    }
}
