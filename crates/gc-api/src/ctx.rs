//! The typed-API root context: a rooted shadow stack with slot reuse,
//! plus the per-type descriptor table.
//!
//! [`ApiCtx`] is the piece of state the typed layer needs *besides* the
//! heap itself: every [`Root<T>`] is a slot on a [`RootedVec`] shadow
//! stack registered with the heap, and every [`Trace`] type gets one
//! interned descriptor symbol (rooted here) naming its record layout.
//! Keeping it separate from the heap lets an embedding that already owns
//! a [`Heap`] — the torture rig, the Scheme tiers — bolt the typed API on
//! without restructuring, while [`GcHeap`](crate::GcHeap) bundles the two
//! for ordinary programs.

use crate::handle::{Gc, GcRead, Root, RootSlot};
use crate::trace::{expect_typed, Field, Trace};
use guardians_gc::{Heap, Rooted, RootedVec, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::rc::Rc;

/// Shadow-stack root arena + descriptor table for the typed front-end.
///
/// Rooting goes through a [`RootedVec`] (interior mutability), so slots
/// can be created from `&ApiCtx` — which is what lets [`Field::decode`]
/// re-root edge fields during a read-only [`Trace::lift`]. Dropping a
/// [`Root`] tombstones its slot with a non-pointer and recycles the index
/// through a free list, so non-LIFO root lifetimes cost nothing.
pub struct ApiCtx {
    shadow: RootedVec,
    free: Rc<RefCell<Vec<usize>>>,
    descriptors: RefCell<HashMap<&'static str, Rooted>>,
}

impl ApiCtx {
    /// Creates a context whose shadow stack is registered with `heap`.
    ///
    /// A context only makes sense with the heap it was created for;
    /// mixing handles across heaps is a logic error the accessors catch
    /// as type-check panics, never memory unsafety.
    pub fn new(heap: &mut Heap) -> ApiCtx {
        ApiCtx {
            shadow: heap.root_vec(),
            free: Rc::new(RefCell::new(Vec::new())),
            descriptors: RefCell::new(HashMap::new()),
        }
    }

    /// Claims a shadow-stack slot holding `v` (reusing a freed slot when
    /// one exists) and returns its RAII handle state.
    pub(crate) fn claim_slot(&self, v: Value) -> RootSlot {
        let index = match self.free.borrow_mut().pop() {
            Some(i) => {
                self.shadow.set(i, v);
                i
            }
            None => self.shadow.push(v),
        };
        RootSlot {
            shadow: self.shadow.clone(),
            free: self.free.clone(),
            index,
        }
    }

    /// Number of live (non-tombstoned) typed roots — a test hook.
    pub fn live_roots(&self) -> usize {
        self.shadow.len() - self.free.borrow().len()
    }

    /// The interned, rooted descriptor symbol for `T`'s record layout.
    /// Allocates (string + symbol) on first use per type, per context.
    pub fn descriptor<T: Trace>(&self, heap: &mut Heap) -> Value {
        if let Some(r) = self.descriptors.borrow().get(T::NAME) {
            return r.get();
        }
        let sym = heap.make_symbol(T::NAME);
        let rooted = heap.root(sym);
        self.descriptors.borrow_mut().insert(T::NAME, rooted);
        sym
    }

    /// Allocates `value` as a heap record and returns an owning root.
    ///
    /// Lowering runs first (child allocations for strings, flonums, …),
    /// then the record itself; allocation never collects in this heap, so
    /// the intermediate [`Value`]s cannot move before the record captures
    /// them. Collections happen only at explicit safe points
    /// ([`Heap::collect`] / [`Heap::maybe_collect`] / [`Heap::gc_step`]),
    /// all of which take `&mut Heap` — which is exactly the borrow a live
    /// [`Gc`] forbids.
    pub fn alloc<T: Trace>(&self, heap: &mut Heap, value: &T) -> Root<T> {
        let fields = value.lower(heap, self);
        debug_assert_eq!(fields.len(), T::FIELDS, "{}::lower field count", T::NAME);
        let desc = self.descriptor::<T>(heap);
        let rec = heap.make_record(desc, &fields);
        Root {
            slot: self.claim_slot(rec),
            _marker: PhantomData,
        }
    }

    /// Re-roots a raw tagged value as a typed handle, checking that it is
    /// a record whose descriptor is `T`'s symbol.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a `T` record of this heap.
    pub fn adopt<T: Trace>(&self, heap: &Heap, v: Value) -> Root<T> {
        expect_typed::<T>(heap, v);
        Root {
            slot: self.claim_slot(v),
            _marker: PhantomData,
        }
    }

    /// Promotes a borrowed [`Gc`] to an owning [`Root`] — the reborrow
    /// escape valve: root what you need, then release the heap borrow and
    /// cross the safe point through the root.
    pub fn root<T: Trace>(&self, gc: Gc<'_, T>) -> Root<T> {
        Root {
            slot: self.claim_slot(gc.value()),
            _marker: PhantomData,
        }
    }

    /// Lifts the record behind `gc` back into its Rust mirror.
    pub fn load<T: Trace>(&self, heap: &Heap, gc: Gc<'_, T>) -> T {
        let v = gc.value();
        expect_typed::<T>(heap, v);
        let fields: Vec<Value> = (0..heap.record_len(v))
            .map(|i| heap.record_ref(v, i))
            .collect();
        T::lift(heap, self, &fields)
    }

    /// [`ApiCtx::load`] through a root, wrapped in a [`Deref`] read guard.
    ///
    /// [`Deref`]: std::ops::Deref
    pub fn read<T: Trace>(&self, heap: &Heap, root: &Root<T>) -> GcRead<T> {
        GcRead {
            value: self.load(heap, root.get(heap)),
        }
    }

    /// Reads field `i` of a typed record as `F`.
    ///
    /// Routed through [`Heap::record_ref`], so the read chases forwarding
    /// pointers while an incremental collection is in flight — correct
    /// under all three engines.
    ///
    /// # Panics
    ///
    /// Panics if `i >= T::FIELDS` or the field does not decode as `F`.
    pub fn field<T: Trace, F: Field>(&self, heap: &Heap, gc: Gc<'_, T>, i: usize) -> F {
        assert!(
            i < T::FIELDS,
            "{} has {} fields, no field {i}",
            T::NAME,
            T::FIELDS
        );
        F::decode(heap, self, heap.record_ref(gc.value(), i))
    }

    /// Writes field `i` of the record behind `root` as `F`.
    ///
    /// Routed through [`Heap::record_set`], which applies the
    /// generational/incremental write barrier; takes the object as a
    /// [`Root`] because encoding may allocate and mutation is a `&mut
    /// Heap` operation, under which no [`Gc`] can be live.
    pub fn set_field<T: Trace, F: Field>(
        &self,
        heap: &mut Heap,
        root: &Root<T>,
        i: usize,
        value: &F,
    ) {
        assert!(
            i < T::FIELDS,
            "{} has {} fields, no field {i}",
            T::NAME,
            T::FIELDS
        );
        let encoded = value.encode(heap, self);
        heap.record_set(root.value(), i, encoded);
    }
}

impl std::fmt::Debug for ApiCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiCtx")
            .field("shadow_len", &self.shadow.len())
            .field("free", &self.free.borrow().len())
            .field("descriptors", &self.descriptors.borrow().len())
            .finish()
    }
}
