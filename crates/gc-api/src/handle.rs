//! Typed handles: borrowed [`Gc`], owning [`Root`], and the [`GcRead`]
//! deref guard.
//!
//! The safety discipline is encoded in lifetimes, not in runtime checks:
//!
//! * A [`Gc<'gc, T>`] is a *borrow of the heap*. Every collection entry
//!   point takes `&mut Heap`, so the borrow checker statically rejects
//!   holding a `Gc` across a safe point — the "unrooted handle survives a
//!   collection" bug class is a compile error (see `tests/ui/`).
//! * A [`Root<T>`] owns a slot on the [`ApiCtx`](crate::ApiCtx) shadow
//!   stack. The collector updates the slot in place, so a root is valid
//!   across any number of collections; dropping it unroots. Roots hold
//!   `Rc` internals and so are `!Send`/`!Sync`: they cannot leave the
//!   mutator thread that owns the heap.
//!
//! Everything here is plain safe Rust over the tagged-value layer — a
//! stale or cross-heap handle produces a typed panic from the accessors,
//! never undefined behaviour. The lifetimes exist to turn those panics
//! into compile errors.

use crate::trace::Trace;
use guardians_gc::{Heap, RootedVec, Value};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

/// A borrowed, `Copy` typed reference into the heap, invalidated by any
/// `&mut Heap` operation (allocation, mutation, collection).
///
/// Obtain one from [`Root::get`], [`GcHeap::get`](crate::GcHeap::get), or
/// a typed field read; promote it with [`ApiCtx::root`](crate::ApiCtx::root)
/// to keep the referent across a safe point.
pub struct Gc<'gc, T: Trace> {
    raw: Value,
    /// Ties the handle to an outstanding `&Heap` borrow (and inherits the
    /// heap's `!Send`/`!Sync`).
    _heap: PhantomData<&'gc Heap>,
    _t: PhantomData<fn() -> T>,
}

impl<T: Trace> Copy for Gc<'_, T> {}
impl<T: Trace> Clone for Gc<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'gc, T: Trace> Gc<'gc, T> {
    pub(crate) fn from_value(raw: Value) -> Gc<'gc, T> {
        Gc {
            raw,
            _heap: PhantomData,
            _t: PhantomData,
        }
    }

    /// The underlying tagged value — the raw-layer escape hatch. The
    /// address is only current for the duration of `'gc`.
    pub fn value(self) -> Value {
        self.raw
    }

    /// Identity (address) equality, the typed [`Heap::eqv`] on pointers.
    pub fn ptr_eq(self, other: Gc<'gc, T>) -> bool {
        self.raw == other.raw
    }
}

impl<T: Trace> std::fmt::Debug for Gc<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gc<{}>({:?})", T::NAME, self.raw)
    }
}

/// The shadow-stack slot an owning handle occupies. Dropping tombstones
/// the slot with a non-pointer and recycles the index.
pub(crate) struct RootSlot {
    pub(crate) shadow: RootedVec,
    pub(crate) free: Rc<RefCell<Vec<usize>>>,
    pub(crate) index: usize,
}

impl RootSlot {
    fn get(&self) -> Value {
        self.shadow.get(self.index)
    }
}

impl Drop for RootSlot {
    fn drop(&mut self) {
        self.shadow.set(self.index, Value::FALSE);
        self.free.borrow_mut().push(self.index);
    }
}

/// An owning typed root: the referent survives every collection for as
/// long as the handle lives, and the handle always reads the referent's
/// *current* (possibly relocated) address.
///
/// `Root` is deliberately `!Send`/`!Sync` (it holds `Rc` shadow-stack
/// state): a root can never escape the mutator thread, which is one of
/// the Finalizer-Frontier boundaries the `tests/ui/` suite pins.
pub struct Root<T: Trace> {
    pub(crate) slot: RootSlot,
    pub(crate) _marker: PhantomData<T>,
}

impl<T: Trace> Root<T> {
    /// The referent's current tagged value (raw-layer escape hatch).
    pub fn value(&self) -> Value {
        self.slot.get()
    }

    /// Reborrows the root as a [`Gc`] tied to `heap`'s borrow — the cheap
    /// handle to pass around between safe points.
    pub fn get<'gc>(&self, heap: &'gc Heap) -> Gc<'gc, T> {
        let _ = heap;
        Gc::from_value(self.slot.get())
    }
}

/// Cloning claims a fresh shadow-stack slot for the same referent.
impl<T: Trace> Clone for Root<T> {
    fn clone(&self) -> Self {
        let index = match self.slot.free.borrow_mut().pop() {
            Some(i) => {
                self.slot.shadow.set(i, self.slot.get());
                i
            }
            None => self.slot.shadow.push(self.slot.get()),
        };
        Root {
            slot: RootSlot {
                shadow: self.slot.shadow.clone(),
                free: self.slot.free.clone(),
                index,
            },
            _marker: PhantomData,
        }
    }
}

impl<T: Trace> std::fmt::Debug for Root<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Root<{}>({:?})", T::NAME, self.slot.get())
    }
}

/// An owning read of a typed object: the record lifted back into its Rust
/// mirror, behind [`Deref`](std::ops::Deref).
///
/// The exemplar handle layer (ballast's `Rooted<T>`) can `Deref` straight
/// into the heap because it stores native Rust values in place; this heap
/// stores tagged words, so the deref target is a *lifted copy* — edits to
/// it do not write back (use
/// [`ApiCtx::set_field`](crate::ApiCtx::set_field) /
/// [`GcHeap::set_field`](crate::GcHeap::set_field) for that).
pub struct GcRead<T: Trace> {
    pub(crate) value: T,
}

impl<T: Trace> std::ops::Deref for GcRead<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: Trace> GcRead<T> {
    /// Unwraps the lifted value.
    pub fn into_inner(self) -> T {
        self.value
    }
}
