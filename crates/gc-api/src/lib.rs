#![doc = include_str!("../README.md")]
//!
//! ## Module map
//!
//! * [`handle`] — [`Gc`], [`Root`], [`GcRead`]: the lifetime discipline.
//! * [`trace`] — [`Trace`]/[`Field`] lowering and the [`impl_trace!`]
//!   derive-style macro.
//! * [`ctx`] — [`ApiCtx`], the shadow-stack root arena (for embeddings
//!   that already own a [`Heap`](guardians_gc::Heap)).
//! * [`heap`] — [`GcHeap`], the bundled heap + context.
//! * [`weak`] — [`Weak`] typed weak references.
//! * [`guardian`] — [`Guardian`] typed finalization queues and the
//!   `Send`-bounded [`OffThreadDrain`].
//!
//! All accessors route through the raw layer's public record accessors,
//! which apply `resolve_read` (forwarded-on-read during incremental
//! cycles) and the write barrier — the typed API is engine-agnostic by
//! construction.

pub mod ctx;
pub mod guardian;
pub mod handle;
pub mod heap;
pub mod trace;
pub mod weak;

pub use ctx::ApiCtx;
pub use guardian::{Guardian, OffThreadDrain};
pub use handle::{Gc, GcRead, Root};
pub use heap::GcHeap;
pub use trace::{Field, Trace};
pub use weak::Weak;

// Raw-layer re-exports used by `impl_trace!` expansions and embeddings.
pub use guardians_gc::{GcConfig, GcError, Heap as RawHeap, Promotion, Value};

#[cfg(test)]
mod tests {
    use super::*;

    impl_trace! {
        #[derive(Debug, PartialEq, Clone)]
        pub struct Point {
            pub x: i64,
            pub y: i64,
            pub label: String,
        }
    }

    impl_trace! {
        pub struct Node {
            pub id: i64,
            pub next: Option<Root<Node>>,
        }
    }

    #[test]
    fn alloc_load_round_trip() {
        let mut h = GcHeap::default();
        let p = Point {
            x: 3,
            y: -4,
            label: "origin-ish".into(),
        };
        let r = h.alloc(&p);
        assert_eq!(h.load(&r), p);
        assert_eq!(h.read(&r).x, 3);
        assert_eq!(h.field::<Point, String>(&r, 2), "origin-ish");
    }

    #[test]
    fn roots_survive_collection_and_track_relocation() {
        let mut h = GcHeap::default();
        let r = h.alloc(&Point {
            x: 1,
            y: 2,
            label: "keep".into(),
        });
        let before = r.value();
        h.collect(0);
        // The object was copied; the root followed it.
        assert_ne!(r.value(), before);
        assert_eq!(h.read(&r).label, "keep");
    }

    #[test]
    fn dropped_roots_let_objects_die() {
        let mut h = GcHeap::default();
        let live = h.alloc(&Point {
            x: 1,
            y: 1,
            label: "live".into(),
        });
        let dead = h.alloc(&Point {
            x: 2,
            y: 2,
            label: "dead".into(),
        });
        let w = h.downgrade(&dead);
        drop(dead);
        h.collect(0);
        assert!(h.upgrade(&w).is_none());
        assert!(w.is_broken(h.raw()));
        assert_eq!(h.read(&live).x, 1);
    }

    #[test]
    fn linked_nodes_keep_each_other_alive_through_edges() {
        let mut h = GcHeap::default();
        let tail = h.alloc(&Node { id: 2, next: None });
        let head = h.alloc(&Node {
            id: 1,
            next: Some(tail),
        });
        // Only the head is rooted now (`tail` was moved into the struct
        // we lowered, whose edge re-rooted it — drop the mirror).
        h.collect(0);
        let got = h.read(&head);
        let tail_again = got.next.as_ref().expect("edge survived");
        assert_eq!(h.read(tail_again).id, 2);
    }

    #[test]
    fn edge_fields_reroot_on_lift() {
        let mut h = GcHeap::default();
        let tail = h.alloc(&Node { id: 7, next: None });
        let head = h.alloc(&Node {
            id: 6,
            next: Some(tail),
        });
        let lifted = h.load(&head);
        drop(head);
        // `lifted.next` is an owning root: the tail survives even though
        // the head (its only in-heap referrer) is garbage.
        h.collect(0);
        let tail_root = lifted.next.expect("rerooted");
        assert_eq!(h.read(&tail_root).id, 7);
    }

    #[test]
    fn gc_reborrow_and_promotion() {
        let mut h = GcHeap::default();
        let r = h.alloc(&Point {
            x: 9,
            y: 9,
            label: "p".into(),
        });
        let gc = h.get(&r);
        let r2 = h.root(gc);
        assert!(gc.ptr_eq(h.get(&r2)));
        drop(r);
        h.collect(0);
        assert_eq!(h.read(&r2).x, 9);
    }

    #[test]
    fn slot_reuse_keeps_the_shadow_stack_compact() {
        let mut h = GcHeap::default();
        let baseline = h.ctx().live_roots();
        for _ in 0..64 {
            let r = h.alloc(&Point {
                x: 0,
                y: 0,
                label: String::new(),
            });
            drop(r);
        }
        assert_eq!(h.ctx().live_roots(), baseline);
    }

    #[test]
    fn guardian_poll_returns_rooted_objects_once_per_registration() {
        let mut h = GcHeap::default();
        let g: Guardian<Point> = h.guardian();
        let r = h.alloc(&Point {
            x: 5,
            y: 5,
            label: "res".into(),
        });
        h.guard(&g, &r);
        h.guard(&g, &r);
        drop(r);
        assert!(h.poll(&g).is_none());
        h.collect(0);
        let first = h.poll(&g).expect("registered twice");
        let second = h.poll(&g).expect("registered twice");
        assert_eq!(h.read(&first).x, 5);
        assert_eq!(first.value(), second.value());
        assert!(h.poll(&g).is_none());
    }

    #[test]
    fn off_thread_drain_is_send() {
        let mut h = GcHeap::default();
        let g: Guardian<Point> = h.guardian();
        let r = h.alloc(&Point {
            x: 8,
            y: 8,
            label: "ship".into(),
        });
        h.guard(&g, &r);
        drop(r);
        h.collect(0);
        let drain = h.drain_off_thread(&g);
        fn assert_send<S: Send>(s: S) -> S {
            s
        }
        let items: Vec<Point> = assert_send(drain).collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].label, "ship");
    }

    #[test]
    fn typed_and_raw_layers_interoperate() {
        let mut h = GcHeap::default();
        let r = h.alloc(&Point {
            x: 4,
            y: 2,
            label: "raw".into(),
        });
        // Raw layer reads the same record through the tagged accessors.
        let v = r.value();
        assert!(h.raw().is_record(v));
        assert_eq!(h.raw().record_ref(v, 0), Value::fixnum(4));
        // And a raw value adopts back into the typed layer.
        let again: Root<Point> = h.adopt(v);
        assert_eq!(h.read(&again).y, 2);
    }

    #[test]
    #[should_panic(expected = "descriptor mismatch")]
    fn adopting_the_wrong_type_panics() {
        let mut h = GcHeap::default();
        let r = h.alloc(&Point {
            x: 0,
            y: 0,
            label: String::new(),
        });
        let v = r.value();
        let _: Root<Node> = h.adopt(v);
    }

    #[test]
    fn works_under_all_three_engines() {
        for cfg in [
            GcConfig::new(),
            {
                let mut c = GcConfig::new();
                c.workers = 4;
                c
            },
            {
                let mut c = GcConfig::new();
                c.pause_budget = Some(std::time::Duration::from_micros(100));
                c
            },
        ] {
            let mut h = GcHeap::new(cfg);
            let g: Guardian<Node> = h.guardian();
            let mut chain = h.alloc(&Node { id: 0, next: None });
            for id in 1..50 {
                chain = h.alloc(&Node {
                    id,
                    next: Some(chain),
                });
            }
            let doomed = h.alloc(&Node {
                id: 999,
                next: None,
            });
            h.guard(&g, &doomed);
            let w = h.downgrade(&doomed);
            drop(doomed);
            h.collect(0);
            // Incremental engines may leave the cycle mid-flight from a
            // `maybe_collect`; `collect` runs to completion regardless.
            let saved = h.poll(&g).expect("doomed node saved by guardian");
            assert_eq!(h.read(&saved).id, 999);
            // Paper ordering: the weak still upgrades (guardian pass
            // precedes the weak break).
            assert!(h.upgrade(&w).is_some());
            // The 50-node chain is fully reachable from one root.
            let mut n = h.load(&chain);
            let mut count = 1;
            while let Some(next) = n.next {
                n = h.load(&next);
                count += 1;
            }
            assert_eq!(count, 50);
        }
    }
}
