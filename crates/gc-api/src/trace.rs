//! The `Trace` lowering scheme: user structs as heap records.
//!
//! A [`Trace`] type maps to a record whose descriptor is an interned
//! symbol named [`Trace::NAME`] and whose fields are the struct's fields
//! [`encode`](Field::encode)d as tagged values, in declaration order.
//! There are no proc-macro dependencies in this offline workspace, so the
//! "derive" is the [`impl_trace!`](crate::impl_trace) macro-rules form:
//!
//! ```
//! use guardians_gc_api::{impl_trace, GcHeap, Root};
//!
//! impl_trace! {
//!     /// A doubly-linked tree node.
//!     pub struct Node {
//!         pub id: i64,
//!         pub label: String,
//!         pub left: Option<Root<Node>>,
//!         pub right: Option<Root<Node>>,
//!     }
//! }
//!
//! let mut heap = GcHeap::default();
//! let leaf = heap.alloc(&Node { id: 1, label: "leaf".into(), left: None, right: None });
//! let top = heap.alloc(&Node { id: 2, label: "top".into(), left: Some(leaf), right: None });
//! assert_eq!(heap.read(&top).left.as_ref().map(|r| heap.load(r).id), Some(1));
//! ```
//!
//! Edge fields are [`Root<T>`] / [`Option<Root<T>>`]: lowering stores the
//! referent's pointer word, lifting re-roots it. That makes a lifted
//! mirror self-sufficient (its children stay alive through the re-roots)
//! and makes `Send`ness compositional: any type holding an edge is
//! automatically `!Send`, which is what the off-thread guardian drain
//! bound keys on.

use crate::ctx::ApiCtx;
use crate::handle::Root;
use guardians_gc::{Heap, Value, FIXNUM_MAX, FIXNUM_MIN};

/// A type that lowers to (and lifts from) a fixed-shape heap record.
///
/// Implement via [`impl_trace!`](crate::impl_trace) (the derive-style path)
/// or by hand for
/// layouts the macro cannot express; the contract is that `lower` returns
/// exactly [`Trace::FIELDS`] values and `lift` inverts it.
pub trait Trace: Sized + 'static {
    /// Descriptor symbol name; must be unique per type within a context.
    const NAME: &'static str;
    /// Number of record fields.
    const FIELDS: usize;
    /// Encodes the fields, in order. May allocate (strings, flonums);
    /// allocation never collects, so intermediate values cannot move.
    fn lower(&self, heap: &mut Heap, ctx: &ApiCtx) -> Vec<Value>;
    /// Decodes a record's fields back into the Rust mirror, re-rooting
    /// edge fields through `ctx`.
    fn lift(heap: &Heap, ctx: &ApiCtx, fields: &[Value]) -> Self;
}

/// A single lowered field.
pub trait Field: Sized + 'static {
    /// Encodes to one tagged value (may allocate, never collects).
    fn encode(&self, heap: &mut Heap, ctx: &ApiCtx) -> Value;
    /// Decodes from one tagged value.
    ///
    /// # Panics
    ///
    /// Panics when `v` is not this field type's encoding — a typed-layer
    /// invariant violation (e.g. raw-layer code rewrote the record).
    fn decode(heap: &Heap, ctx: &ApiCtx, v: Value) -> Self;
}

impl Field for i64 {
    fn encode(&self, _heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        assert!(
            (FIXNUM_MIN..=FIXNUM_MAX).contains(self),
            "i64 field {self} outside the 61-bit fixnum range"
        );
        Value::fixnum(*self)
    }
    fn decode(_heap: &Heap, _ctx: &ApiCtx, v: Value) -> Self {
        assert!(v.is_fixnum(), "expected fixnum field, found {v:?}");
        v.as_fixnum()
    }
}

impl Field for bool {
    fn encode(&self, _heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        Value::bool(*self)
    }
    fn decode(_heap: &Heap, _ctx: &ApiCtx, v: Value) -> Self {
        if v == Value::TRUE {
            true
        } else if v == Value::FALSE {
            false
        } else {
            panic!("expected boolean field, found {v:?}")
        }
    }
}

impl Field for char {
    fn encode(&self, _heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        Value::char(*self)
    }
    fn decode(_heap: &Heap, _ctx: &ApiCtx, v: Value) -> Self {
        v.as_char()
            .unwrap_or_else(|| panic!("expected char field, found {v:?}"))
    }
}

impl Field for f64 {
    fn encode(&self, heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        heap.make_flonum(*self)
    }
    fn decode(heap: &Heap, _ctx: &ApiCtx, v: Value) -> Self {
        heap.flonum_value(v)
    }
}

impl Field for String {
    fn encode(&self, heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        heap.make_string(self)
    }
    fn decode(heap: &Heap, _ctx: &ApiCtx, v: Value) -> Self {
        String::from_utf8(heap.string_bytes(v).collect()).expect("heap strings are UTF-8")
    }
}

impl Field for Vec<u8> {
    fn encode(&self, heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        let bv = heap.make_bytevector(self.len(), 0);
        for (i, b) in self.iter().enumerate() {
            heap.bytevector_set(bv, i, *b);
        }
        bv
    }
    fn decode(heap: &Heap, _ctx: &ApiCtx, v: Value) -> Self {
        heap.bytevector_value(v)
    }
}

/// An always-present edge to another typed object.
impl<T: Trace> Field for Root<T> {
    fn encode(&self, _heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        self.value()
    }
    fn decode(heap: &Heap, ctx: &ApiCtx, v: Value) -> Self {
        ctx.adopt(heap, v)
    }
}

/// An optional edge; `None` lowers to nil (a typed pointer is never nil).
impl<T: Trace> Field for Option<Root<T>> {
    fn encode(&self, _heap: &mut Heap, _ctx: &ApiCtx) -> Value {
        self.as_ref().map_or(Value::NIL, Root::value)
    }
    fn decode(heap: &Heap, ctx: &ApiCtx, v: Value) -> Self {
        if v.is_nil() {
            None
        } else {
            Some(ctx.adopt(heap, v))
        }
    }
}

/// Checks that `v` is a record of this heap whose descriptor is `T`'s
/// interned symbol; every typed accessor funnels through this.
///
/// # Panics
///
/// Panics with the expected/actual layout names on mismatch.
pub(crate) fn expect_typed<T: Trace>(heap: &Heap, v: Value) {
    assert!(
        heap.is_record(v),
        "expected a {} record, found non-record {v:?}",
        T::NAME
    );
    let desc = heap.record_descriptor(v);
    let ok = heap.is_symbol(desc) && heap.symbol_name(desc) == T::NAME;
    assert!(
        ok,
        "typed-layer descriptor mismatch: expected {}, found {}",
        T::NAME,
        if heap.is_symbol(desc) {
            heap.symbol_name(desc)
        } else {
            format!("{desc:?}")
        }
    );
}

/// Derive-style [`Trace`] implementation for a struct of [`Field`]s.
///
/// Expands to the struct definition itself plus a field-by-field `Trace`
/// impl; see the [module docs](crate::trace) for an example. Field order
/// is layout order, so reordering fields changes the record layout (as
/// with any derive over a record representation).
#[macro_export]
macro_rules! impl_trace {
    ($(#[$meta:meta])* $vis:vis struct $name:ident {
        $($(#[$fmeta:meta])* $fvis:vis $field:ident : $fty:ty),* $(,)?
    }) => {
        $(#[$meta])*
        $vis struct $name {
            $($(#[$fmeta])* $fvis $field : $fty),*
        }

        impl $crate::Trace for $name {
            const NAME: &'static str = stringify!($name);
            const FIELDS: usize = $crate::impl_trace!(@count $($field)*);

            fn lower(
                &self,
                heap: &mut $crate::RawHeap,
                ctx: &$crate::ApiCtx,
            ) -> Vec<$crate::Value> {
                vec![$($crate::Field::encode(&self.$field, heap, ctx)),*]
            }

            fn lift(
                heap: &$crate::RawHeap,
                ctx: &$crate::ApiCtx,
                fields: &[$crate::Value],
            ) -> Self {
                let mut it = fields.iter().copied();
                $name {
                    $($field: $crate::Field::decode(
                        heap,
                        ctx,
                        it.next().expect("record shorter than declared layout"),
                    )),*
                }
            }
        }
    };
    (@count) => { 0usize };
    (@count $head:ident $($tail:ident)*) => { 1usize + $crate::impl_trace!(@count $($tail)*) };
}
