//! Typed guardians: the paper's §4 tconc queues as a `poll()`/drain
//! surface with the Finalizer-Frontier safety rules in the types.
//!
//! Two rules are enforced statically:
//!
//! * **Resurrection is confined to the guardian owner.** The only way a
//!   proven-dead object re-enters the program is [`Guardian::poll`] /
//!   [`Guardian::drain`], which return owning [`Root`]s to the caller —
//!   cleanup runs at mutator control points, never inside the collector,
//!   and nobody else can observe the resurrected object through a strong
//!   reference first. (A [`Weak`](crate::Weak) may still upgrade to a
//!   guardian-saved object — the paper breaks weaks *after* the guardian
//!   pass, deliberately.)
//! * **Off-thread cleanup requires `Send`.** [`Guardian::drain_off_thread`]
//!   lifts dead objects into their Rust mirrors and hands back a `Send`
//!   iterator, but only for `T: Send` — and any `T` holding a
//!   [`Root`] edge is automatically `!Send`, so heap handles
//!   cannot be smuggled to another thread (see `tests/ui/`).

use crate::ctx::ApiCtx;
use crate::handle::Root;
use crate::trace::Trace;
use guardians_gc::{Guardian as RawGuardian, Heap};
use std::marker::PhantomData;

/// A typed guardian over one tconc queue.
///
/// Dropping every clone of the handle (and every heap reference to the
/// tconc) makes the guardian collectable, which cancels finalization of
/// everything registered with it — the paper's cancellation story,
/// inherited unchanged from the raw layer.
pub struct Guardian<T: Trace> {
    raw: RawGuardian,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Trace> Guardian<T> {
    /// Creates a guardian on `heap`. Allocates the two-pair tconc.
    pub fn new(heap: &mut Heap) -> Guardian<T> {
        Guardian {
            raw: heap.make_guardian(),
            _marker: PhantomData,
        }
    }

    /// Wraps an existing untyped guardian. From here on, register only
    /// `T`s through it — [`poll`](Guardian::poll) type-checks what comes
    /// back out.
    pub fn from_untyped(raw: RawGuardian) -> Guardian<T> {
        Guardian {
            raw,
            _marker: PhantomData,
        }
    }

    /// The untyped handle (raw-layer escape hatch).
    pub fn as_untyped(&self) -> &RawGuardian {
        &self.raw
    }

    /// Registers `obj` for preservation — the paper's `(G obj)`. Takes a
    /// root (registration is a `&mut Heap` operation, under which no
    /// borrowed handle can be live); the registration itself does not
    /// keep `obj` alive.
    pub fn register(&self, heap: &mut Heap, obj: &Root<T>) {
        self.raw.register(heap, obj.value());
    }

    /// Registers `obj` with a separate `agent` returned in its place on
    /// death (§5): `obj` itself is *not* preserved.
    pub fn register_with_agent(&self, heap: &mut Heap, obj: &Root<T>, agent: &Root<T>) {
        self.raw
            .register_with_agent(heap, obj.value(), agent.value());
    }

    /// Retrieves one object proven inaccessible since registration, as a
    /// fresh owning root — `None` when the inaccessible group is empty.
    ///
    /// # Panics
    ///
    /// Panics if the queue front is not a `T` record — the guardian was
    /// shared with raw-layer registrations of another shape.
    pub fn poll(&self, heap: &mut Heap, ctx: &ApiCtx) -> Option<Root<T>> {
        let v = self.raw.poll(heap)?;
        Some(ctx.adopt(heap, v))
    }

    /// Drains every currently retrievable object, rooted.
    pub fn drain(&self, heap: &mut Heap, ctx: &ApiCtx) -> Vec<Root<T>> {
        let mut out = Vec::new();
        while let Some(r) = self.poll(heap, ctx) {
            out.push(r);
        }
        out
    }

    /// Drains every currently retrievable object *lifted* into its Rust
    /// mirror, as an iterator that may be moved to another thread. The
    /// `T: Send` bound is the off-thread safety rule: types holding heap
    /// handles are `!Send` and cannot take this path.
    pub fn drain_off_thread(&self, heap: &mut Heap, ctx: &ApiCtx) -> OffThreadDrain<T>
    where
        T: Send,
    {
        let mut items = Vec::new();
        while let Some(v) = self.raw.poll(heap) {
            // Lift while still on the mutator thread; the root is
            // transient and dropped before the iterator escapes.
            let root: Root<T> = ctx.adopt(heap, v);
            items.push(ctx.load(heap, root.get(heap)));
        }
        OffThreadDrain {
            items: items.into_iter(),
        }
    }

    /// Whether the inaccessible group is currently empty.
    pub fn is_empty(&self, heap: &Heap) -> bool {
        self.raw.is_empty(heap)
    }

    /// Number of objects currently retrievable.
    pub fn pending(&self, heap: &Heap) -> usize {
        self.raw.pending(heap)
    }
}

impl<T: Trace> Clone for Guardian<T> {
    fn clone(&self) -> Self {
        Guardian {
            raw: self.raw.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: Trace> std::fmt::Debug for Guardian<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Guardian<{}>", T::NAME)
    }
}

/// A `Send` iterator of lifted finalization payloads — safe to hand to a
/// cleanup thread because construction required `T: Send` and no heap
/// handles are inside.
pub struct OffThreadDrain<T: Send> {
    items: std::vec::IntoIter<T>,
}

impl<T: Send> Iterator for OffThreadDrain<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.items.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

impl<T: Send> ExactSizeIterator for OffThreadDrain<T> {}
