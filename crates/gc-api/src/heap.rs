//! [`GcHeap`]: the heap + root context bundle ordinary programs use.
//!
//! Everything here delegates to [`Heap`] and [`ApiCtx`]; the bundle's
//! contribution is the borrow discipline. All reads take `&self`, all
//! mutations and every collection safe point take `&mut self` — so the
//! borrow checker proves that no borrowed [`Gc`] handle survives a safe
//! point, which is the typed layer's central guarantee (pinned by the
//! `tests/ui/` compile-fail suite).

use crate::ctx::ApiCtx;
use crate::guardian::{Guardian, OffThreadDrain};
use crate::handle::{Gc, GcRead, Root};
use crate::trace::{Field, Trace};
use crate::weak::Weak;
use guardians_gc::{CollectionReport, GcConfig, GcError, Heap, HeapCensus, HeapStats, Value};

/// A garbage-collected heap with the typed front-end attached.
pub struct GcHeap {
    heap: Heap,
    ctx: ApiCtx,
}

impl GcHeap {
    /// Creates a heap with the given collector configuration — the same
    /// [`GcConfig`] the raw layer takes, so the typed API runs under any
    /// engine (serial, `workers > 1`, `pause_budget`).
    pub fn new(config: GcConfig) -> GcHeap {
        let mut heap = Heap::new(config);
        let ctx = ApiCtx::new(&mut heap);
        GcHeap { heap, ctx }
    }

    /// Wraps an existing heap (raw-layer interop: the torture rig, the
    /// Scheme tiers). Raw handles into the heap stay valid.
    pub fn from_heap(mut heap: Heap) -> GcHeap {
        let ctx = ApiCtx::new(&mut heap);
        GcHeap { heap, ctx }
    }

    // -- raw-layer escape hatches ------------------------------------

    /// The underlying heap, shared.
    pub fn raw(&self) -> &Heap {
        &self.heap
    }

    /// The underlying heap, exclusive. The typed discipline is a
    /// discipline, not a jail: raw-layer mutation stays available, and
    /// misuse surfaces as typed-accessor panics, never unsafety.
    pub fn raw_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The root context (for the standalone [`ApiCtx`]-style calls).
    pub fn ctx(&self) -> &ApiCtx {
        &self.ctx
    }

    // -- allocation and handles ---------------------------------------

    /// Allocates `value` as a heap record; returns an owning root.
    pub fn alloc<T: Trace>(&mut self, value: &T) -> Root<T> {
        self.ctx.alloc(&mut self.heap, value)
    }

    /// Reborrows a root as a [`Gc`] tied to this borrow of the heap.
    pub fn get<'gc, T: Trace>(&'gc self, root: &Root<T>) -> Gc<'gc, T> {
        root.get(&self.heap)
    }

    /// Promotes a borrowed [`Gc`] to an owning [`Root`].
    pub fn root<T: Trace>(&self, gc: Gc<'_, T>) -> Root<T> {
        self.ctx.root(gc)
    }

    /// Re-roots a raw tagged value as a typed handle (type-checked).
    pub fn adopt<T: Trace>(&self, v: Value) -> Root<T> {
        self.ctx.adopt(&self.heap, v)
    }

    /// Lifts the record behind a root into its Rust mirror.
    pub fn load<T: Trace>(&self, root: &Root<T>) -> T {
        self.ctx.load(&self.heap, root.get(&self.heap))
    }

    /// Lifts the record behind a borrowed handle.
    pub fn load_gc<T: Trace>(&self, gc: Gc<'_, T>) -> T {
        self.ctx.load(&self.heap, gc)
    }

    /// [`GcHeap::load`] behind a [`Deref`](std::ops::Deref) read guard.
    pub fn read<T: Trace>(&self, root: &Root<T>) -> GcRead<T> {
        self.ctx.read(&self.heap, root)
    }

    /// Reads one typed field of the object behind `root`.
    pub fn field<T: Trace, F: Field>(&self, root: &Root<T>, i: usize) -> F {
        self.ctx.field(&self.heap, root.get(&self.heap), i)
    }

    /// Reads one typed field through a borrowed handle.
    pub fn field_gc<T: Trace, F: Field>(&self, gc: Gc<'_, T>, i: usize) -> F {
        self.ctx.field(&self.heap, gc, i)
    }

    /// Writes one typed field (write-barriered).
    pub fn set_field<T: Trace, F: Field>(&mut self, root: &Root<T>, i: usize, value: &F) {
        self.ctx.set_field(&mut self.heap, root, i, value)
    }

    // -- weaks and guardians -------------------------------------------

    /// Creates a typed weak reference to the object behind `root`.
    pub fn downgrade<T: Trace>(&mut self, root: &Root<T>) -> Weak<T> {
        Weak::new(&mut self.heap, &self.ctx, root)
    }

    /// Upgrades a weak reference, if the referent is still alive.
    pub fn upgrade<'gc, T: Trace>(&'gc self, weak: &Weak<T>) -> Option<Gc<'gc, T>> {
        weak.upgrade(&self.heap)
    }

    /// Creates a typed guardian.
    pub fn guardian<T: Trace>(&mut self) -> Guardian<T> {
        Guardian::new(&mut self.heap)
    }

    /// Registers the object behind `root` with `guardian`.
    pub fn guard<T: Trace>(&mut self, guardian: &Guardian<T>, root: &Root<T>) {
        guardian.register(&mut self.heap, root)
    }

    /// Polls `guardian` for one proven-dead object.
    pub fn poll<T: Trace>(&mut self, guardian: &Guardian<T>) -> Option<Root<T>> {
        guardian.poll(&mut self.heap, &self.ctx)
    }

    /// Drains `guardian` into owning roots.
    pub fn drain<T: Trace>(&mut self, guardian: &Guardian<T>) -> Vec<Root<T>> {
        guardian.drain(&mut self.heap, &self.ctx)
    }

    /// Drains `guardian` as lifted, `Send` payloads for a cleanup thread.
    pub fn drain_off_thread<T: Trace + Send>(
        &mut self,
        guardian: &Guardian<T>,
    ) -> OffThreadDrain<T> {
        guardian.drain_off_thread(&mut self.heap, &self.ctx)
    }

    // -- safe points and telemetry -------------------------------------

    /// Collects generations `0..=gen` — a safe point (`&mut self`).
    pub fn collect(&mut self, gen: u8) -> &CollectionReport {
        self.heap.collect(gen)
    }

    /// The policy-driven safe point: collects when the allocation trigger
    /// has tripped, and runs one bounded increment per call under a
    /// `pause_budget` engine.
    pub fn maybe_collect(&mut self) -> Option<&CollectionReport> {
        self.heap.maybe_collect()
    }

    /// Fallible [`GcHeap::collect`]; see [`Heap::try_collect`].
    ///
    /// # Errors
    ///
    /// [`GcError::Exhausted`] (heap untouched) on insufficient budget.
    #[must_use = "a dropped Exhausted error silently skips the fault-injection path; handle or propagate it"]
    pub fn try_collect(&mut self, gen: u8) -> Result<&CollectionReport, GcError> {
        self.heap.try_collect(gen)
    }

    /// Runs one increment of a suspended bounded-pause collection.
    pub fn gc_step(&mut self) -> Option<&CollectionReport> {
        self.heap.gc_step()
    }

    /// Cumulative heap statistics.
    pub fn stats(&self) -> &HeapStats {
        self.heap.stats()
    }

    /// Live-heap census.
    pub fn census(&self) -> HeapCensus {
        self.heap.census()
    }

    /// The most recent collection's report.
    pub fn last_report(&self) -> Option<&CollectionReport> {
        self.heap.last_report()
    }
}

impl Default for GcHeap {
    fn default() -> GcHeap {
        GcHeap::new(GcConfig::new())
    }
}

impl std::fmt::Debug for GcHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcHeap")
            .field("ctx", &self.ctx)
            .finish_non_exhaustive()
    }
}
