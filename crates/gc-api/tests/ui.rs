//! Compile-fail suite pinning the typed layer's soundness boundaries.
//!
//! Each case under `tests/ui/` documents, as `//~ ERROR <substring>`
//! annotations, exactly why it must not compile:
//!
//! * `gc_across_safe_point.rs` — a borrowed `Gc` handle cannot survive a
//!   collection safe point (E0502: safe points take `&mut` the heap).
//! * `non_send_off_thread.rs` — a type holding heap handles is `!Send`
//!   and is rejected by the off-thread guardian drain (E0277).
//! * `root_escapes_thread.rs` — a `Root` cannot leave the mutator
//!   thread/stack region that owns the heap (E0277).
//!
//! Requires spawning `rustc`, so it is skipped under miri.

#[test]
#[cfg_attr(miri, ignore = "spawns rustc")]
fn ui_compile_fail() {
    trybuild::TestCases::new()
        .extern_crate("guardians_gc_api")
        .extern_crate("guardians_gc")
        .compile_fail("tests/ui/*.rs")
        .run();
}
