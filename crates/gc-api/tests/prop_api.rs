//! Parity property: a random typed object graph built through
//! `Gc<T>`/`Root<T>` produces a census and collection counters identical
//! to the same graph built through the raw tagged-value API.
//!
//! Both builders execute the same abstract plan (allocate `n` nodes, wire
//! random edges, take weak references, register with a guardian, drop a
//! subset of roots, collect, poll) against two heaps with the same
//! `GcConfig`. The typed layer's lowering is defined to allocate exactly
//! what the raw code allocates — one interned descriptor symbol per type,
//! then one record per node — so every heap observable must match:
//!
//! * the full [`HeapCensus`] (live words/objects per generation × kind),
//! * every [`CollectionReport`] counter except `roots_traced` (root
//!   *cells* are Rust-side bookkeeping, and the typed shadow stack visits
//!   tombstoned slots the raw `Rooted`-cell scheme drops entirely),
//!   `duration`/`phases` (wall clock), and
//! * the guardian queue contents, compared as lifted node ids.

use guardians_gc::{CollectionReport, GcConfig, Heap, Rooted, Value};
use guardians_gc_api::{impl_trace, GcHeap, Guardian, Root, Weak};
use proptest::prelude::*;

impl_trace! {
    pub struct PNode {
        pub id: i64,
        pub left: Option<Root<PNode>>,
        pub right: Option<Root<PNode>>,
    }
}

/// The abstract plan both builders execute.
#[derive(Debug, Clone)]
struct Plan {
    n: usize,
    edges: Vec<(usize, usize, bool)>,
    weaks: Vec<usize>,
    guarded: Vec<usize>,
    drops: Vec<usize>,
    collects: Vec<u8>,
}

fn plan(
    n: usize,
    edges: &[(u16, u16, bool)],
    weaks: &[u16],
    guarded: &[u16],
    drops: &[u16],
    collects: &[u8],
) -> Plan {
    Plan {
        n,
        edges: edges
            .iter()
            .map(|&(a, b, s)| (a as usize % n, b as usize % n, s))
            .collect(),
        weaks: weaks.iter().map(|&w| w as usize % n).collect(),
        guarded: guarded.iter().map(|&g| g as usize % n).collect(),
        drops: drops.iter().map(|&d| d as usize % n).collect(),
        collects: collects.to_vec(),
    }
}

/// Counters that must match exactly between the two builders.
fn comparable(r: &CollectionReport) -> Vec<u64> {
    vec![
        r.collection_index,
        u64::from(r.collected_generation),
        u64::from(r.target_generation),
        r.pairs_copied,
        r.objects_copied,
        r.words_copied,
        r.dirty_segments_scanned,
        r.guardian_entries_visited,
        r.guardian_entries_held,
        r.guardian_entries_finalized,
        r.guardian_entries_dropped,
        r.guardian_loop_iterations,
        r.weak_pairs_scanned,
        r.weak_cars_broken,
        r.weak_cars_forwarded,
        r.pure_words_skipped,
        r.segments_freed,
        r.segments_allocated,
    ]
}

/// Runs the plan through the typed API. Returns per-collection counters
/// and the drained guardian ids.
fn run_typed(cfg: GcConfig, p: &Plan) -> (GcHeap, Vec<Vec<u64>>, Vec<i64>) {
    let mut h = GcHeap::new(cfg);
    let g: Guardian<PNode> = h.guardian();
    let mut roots: Vec<Option<Root<PNode>>> = (0..p.n)
        .map(|id| {
            Some(h.alloc(&PNode {
                id: id as i64,
                left: None,
                right: None,
            }))
        })
        .collect();
    for &(from, to, left) in &p.edges {
        if let (Some(f), Some(t)) = (&roots[from], &roots[to]) {
            let edge = Some(t.clone());
            h.set_field(f, if left { 1 } else { 2 }, &edge);
        }
    }
    let mut weaks: Vec<Weak<PNode>> = Vec::new();
    for &w in &p.weaks {
        if let Some(r) = &roots[w] {
            weaks.push(h.downgrade(r));
        }
    }
    for &gi in &p.guarded {
        if let Some(r) = &roots[gi] {
            h.guard(&g, r);
        }
    }
    for &d in &p.drops {
        roots[d] = None;
    }
    let mut counters = Vec::new();
    for &gen in &p.collects {
        counters.push(comparable(h.collect(gen)));
    }
    let mut ids: Vec<i64> = Vec::new();
    while let Some(r) = h.poll(&g) {
        ids.push(h.read(&r).id);
    }
    drop(weaks);
    (h, counters, ids)
}

/// Runs the plan through the raw tagged-value API, mirroring the typed
/// lowering allocation-for-allocation.
fn run_raw(cfg: GcConfig, p: &Plan) -> (Heap, Vec<Vec<u64>>, Vec<i64>) {
    let mut h = Heap::new(cfg);
    let g = h.make_guardian();
    // The typed layer interns one descriptor symbol per type on first
    // alloc; mirror that here (string + symbol + root).
    let desc_v = h.make_symbol("PNode");
    let desc = h.root(desc_v);
    let mut roots: Vec<Option<Rooted>> = (0..p.n)
        .map(|id| {
            let rec = h.make_record(
                desc.get(),
                &[Value::fixnum(id as i64), Value::NIL, Value::NIL],
            );
            Some(h.root(rec))
        })
        .collect();
    for &(from, to, left) in &p.edges {
        if let (Some(f), Some(t)) = (&roots[from], &roots[to]) {
            let (fv, tv) = (f.get(), t.get());
            h.record_set(fv, if left { 1 } else { 2 }, tv);
        }
    }
    let mut weaks: Vec<Rooted> = Vec::new();
    for &w in &p.weaks {
        if let Some(r) = &roots[w] {
            let rv = r.get();
            let pair = h.weak_cons(rv, Value::NIL);
            weaks.push(h.root(pair));
        }
    }
    for &gi in &p.guarded {
        if let Some(r) = &roots[gi] {
            g.register(&mut h, r.get());
        }
    }
    for &d in &p.drops {
        roots[d] = None;
    }
    let mut counters = Vec::new();
    for &gen in &p.collects {
        counters.push(comparable(h.collect(gen)));
    }
    let mut ids: Vec<i64> = Vec::new();
    while let Some(v) = g.poll(&mut h) {
        ids.push(h.record_ref(v, 0).as_fixnum());
    }
    drop(weaks);
    (h, counters, ids)
}

fn check_parity(cfg: GcConfig, p: &Plan) {
    let (th, tc, tids) = run_typed(cfg.clone(), p);
    let (rh, rc, rids) = run_raw(cfg, p);
    assert_eq!(tc, rc, "collection counters diverged for {p:?}");
    assert_eq!(tids, rids, "guardian queue contents diverged for {p:?}");
    assert_eq!(
        th.census(),
        rh.census(),
        "census diverged for {p:?}\ntyped: {}\nraw:   {}",
        th.census().to_json(),
        rh.census().to_json()
    );
    assert_eq!(th.stats().collections, rh.stats().collections);
    assert_eq!(
        th.stats().guardian_registrations,
        rh.stats().guardian_registrations
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn typed_and_raw_graphs_are_observably_identical(
        n in 2usize..12,
        edges in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 0..24),
        weaks in proptest::collection::vec(any::<u16>(), 0..6),
        guarded in proptest::collection::vec(any::<u16>(), 0..6),
        drops in proptest::collection::vec(any::<u16>(), 0..8),
        collects in proptest::collection::vec(0u8..3, 1..4),
    ) {
        let p = plan(n, &edges, &weaks, &guarded, &drops, &collects);
        check_parity(GcConfig::new(), &p);
    }
}

/// The same parity holds under the parallel and incremental engines (a
/// fixed dense plan rather than the full random sweep, to keep the
/// three-engine matrix cheap).
#[test]
fn parity_holds_under_all_three_engines() {
    let p = plan(
        8,
        &[
            (0, 1, true),
            (1, 2, false),
            (2, 3, true),
            (3, 0, false),
            (4, 5, true),
            (6, 7, true),
        ],
        &[1, 4, 6],
        &[2, 5, 7, 7],
        &[1, 2, 5, 7],
        &[0, 1, 0],
    );
    let mut workers = GcConfig::new();
    workers.workers = 4;
    let mut budget = GcConfig::new();
    budget.pause_budget = Some(std::time::Duration::from_micros(100));
    for cfg in [GcConfig::new(), workers, budget] {
        check_parity(cfg, &p);
    }
}
