//! Soundness boundary: a `Root<T>` is a slot on the owning thread's
//! shadow stack (`Rc` internals, deliberately `!Send`), so it cannot
//! escape the stack region/thread that owns the heap. Moving one into a
//! spawned thread must fail the `Send` bound.

use guardians_gc_api::{impl_trace, GcHeap};

impl_trace! {
    pub struct Node {
        pub id: i64,
    }
}

fn main() {
    let mut heap = GcHeap::default();
    let root = heap.alloc(&Node { id: 1 });
    std::thread::spawn(move || {
        //~ ERROR E0277
        //~ ERROR cannot be sent between threads safely
        let _escaped = root;
    });
}
