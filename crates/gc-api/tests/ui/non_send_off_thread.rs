//! Finalizer-Frontier rule: off-thread guardian drains require the
//! lifted payload to be `Send`. A type with a `Root<T>` edge holds
//! shadow-stack `Rc` state, is therefore `!Send`, and must be rejected —
//! otherwise heap handles could be smuggled to a cleanup thread.

use guardians_gc_api::{impl_trace, GcHeap, Guardian, Root};

impl_trace! {
    pub struct Holder {
        pub id: i64,
        pub child: Option<Root<Holder>>,
    }
}

fn main() {
    let mut heap = GcHeap::default();
    let g: Guardian<Holder> = heap.guardian();
    let r = heap.alloc(&Holder { id: 1, child: None });
    heap.guard(&g, &r);
    drop(r);
    heap.collect(0);
    let _drain = heap.drain_off_thread(&g); //~ ERROR E0277
    //~ ERROR cannot be sent between threads safely
}
