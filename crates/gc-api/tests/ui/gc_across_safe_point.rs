//! Soundness boundary: a borrowed `Gc<'gc, T>` is a shared borrow of the
//! heap, and every collection safe point takes the heap `&mut` — so an
//! unrooted handle held across a safe point is a borrowck error, not a
//! dangling pointer. Root it (`heap.root(gc)`) to cross.

use guardians_gc_api::{impl_trace, GcHeap};

impl_trace! {
    pub struct Node {
        pub id: i64,
    }
}

fn main() {
    let mut heap = GcHeap::default();
    let root = heap.alloc(&Node { id: 1 });
    let gc = heap.get(&root); // shared borrow of `heap` begins
    heap.collect(0); //~ ERROR E0502
    //~ ERROR cannot borrow `heap` as mutable because it is also borrowed as immutable
    let _ = heap.load_gc(gc); // borrow still live here
}
