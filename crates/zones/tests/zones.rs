//! Zone-level acceptance tests: shared-pool isolation, teardown
//! accounting, guardian-driven eviction reclamation, cross-engine
//! identity, router determinism, and the soak harness.

use guardians_gc::{AutotuneMode, SegmentPool};
use guardians_zones::soak::{self, SoakOp, SoakSchedule};
use guardians_zones::{
    session_zone, Engine, Request, Zone, ZoneConfig, ZoneManager, ZoneObservables, ZoneRouter,
};

/// A deterministic per-tenant request script: open `sessions` sessions,
/// run `rounds` of work over them, evicting every third session halfway
/// through.
fn script(sessions: u64, rounds: u32) -> Vec<Request> {
    let mut reqs = Vec::new();
    for s in 0..sessions {
        reqs.push(Request::Open { session: s });
    }
    for r in 0..rounds {
        for s in 0..sessions {
            reqs.push(Request::Work {
                session: s,
                amount: 1 + (s as u32 + r) % 7,
            });
        }
        if r == rounds / 2 {
            for s in (0..sessions).step_by(3) {
                reqs.push(Request::Evict { session: s });
            }
        }
    }
    reqs
}

/// Runs a script on a private (non-pooled) zone: the oracle.
fn solo(id: u64, config: &ZoneConfig, reqs: &[Request]) -> ZoneObservables {
    let mut zone = Zone::new(id, config);
    for &r in reqs {
        zone.dispatch(r);
    }
    zone.quiesce();
    zone.observables()
}

fn small_trigger(config: ZoneConfig) -> ZoneConfig {
    config.with_trigger_bytes(1 << 16)
}

#[test]
fn pooled_zone_matches_private_zone_exactly() {
    for config in [
        small_trigger(ZoneConfig::typed()),
        small_trigger(ZoneConfig::scheme()),
    ] {
        let reqs = script(24, 8);
        let want = solo(7, &config, &reqs);
        let mut mgr = ZoneManager::new();
        mgr.create_zone(7, &config);
        for &r in &reqs {
            mgr.dispatch(7, r);
        }
        mgr.quiesce();
        let got = mgr.zone(7).unwrap().observables();
        assert_eq!(got, want, "pooled observables == private observables");
    }
}

#[test]
fn exhausting_one_zone_leaves_siblings_byte_identical() {
    // Zone A gets a watermark far below the pool capacity and is driven
    // into quota exhaustion through the heap's fallible entry point;
    // sibling zone B keeps allocating and collecting with observables
    // byte-identical to a solo run of the same script on a private heap.
    // A's watermark is sized with copy-reserve headroom (live + to-space
    // transient), the documented quota contract, so A recovers by
    // collecting once its pins drop.
    let a_cfg = small_trigger(ZoneConfig::typed()).with_max_segments(16);
    let b_cfg = small_trigger(ZoneConfig::typed());
    let reqs = script(24, 8);
    let want = solo(2, &b_cfg, &reqs);

    let mut mgr = ZoneManager::with_capacity(4096);
    mgr.create_zone(1, &a_cfg);
    mgr.create_zone(2, &b_cfg);

    // Pin vectors in A until at most 6 of its 16 quota segments remain,
    // then present a demand that cannot fit: a clean Exhausted, no
    // allocation performed.
    let mut pins = Vec::new();
    let heap = mgr.zone_mut(1).unwrap().heap_mut();
    while heap.segs_acquirable() > 6 {
        let v = heap
            .try_make_vector(400, guardians_gc::Value::fixnum(0))
            .expect("within quota");
        pins.push(heap.root(v));
    }
    let err = heap
        .try_make_vector(400 * 8, guardians_gc::Value::fixnum(0))
        .unwrap_err();
    let guardians_gc::GcError::Exhausted { needed, remaining } = err;
    assert!(needed > remaining, "clean refusal at the quota: {err}");
    assert!(mgr.pool().remaining() > 0, "the pool itself has headroom");

    // B is unaffected: same script, same observables as the solo oracle.
    for &r in &reqs {
        mgr.dispatch(2, r);
    }
    mgr.zone_mut(2).unwrap().quiesce();
    assert_eq!(mgr.zone(2).unwrap().observables(), want);

    // A recovers within its quota once the pins drop.
    drop(pins);
    mgr.quiesce();
    mgr.zone_mut(1)
        .unwrap()
        .heap_mut()
        .try_make_vector(400, guardians_gc::Value::fixnum(0))
        .expect("quota headroom restored by collection");
    mgr.zone(1).unwrap().verify().expect("A still verifies");
    mgr.zone(2).unwrap().verify().expect("B still verifies");
}

#[test]
fn teardown_returns_every_segment_to_the_pool() {
    let mut mgr = ZoneManager::with_capacity(4096);
    for id in 0..6 {
        let cfg = small_trigger(if id % 2 == 0 {
            ZoneConfig::typed()
        } else {
            ZoneConfig::scheme()
        });
        mgr.create_zone(id, &cfg);
        for &r in &script(12, 4) {
            mgr.dispatch(id, r);
        }
    }
    let outstanding_before = mgr.pool_stats().outstanding;
    assert!(outstanding_before > 0, "zones hold pool segments");
    for id in mgr.zone_ids() {
        mgr.zone(id).unwrap().verify().expect("zone verifies");
        let snap = mgr.teardown_zone(id).expect("zone live");
        assert_eq!(
            snap.obs.open_fds, snap.obs.live_sessions,
            "every live session holds exactly its one fd"
        );
    }
    let pool = mgr.pool_stats();
    assert_eq!(pool.outstanding, 0, "all segments returned");
    assert_eq!(pool.attached_tables, 0, "no lingering owners");
    assert!(
        pool.free >= outstanding_before,
        "capacity restored for reuse"
    );
}

#[test]
fn eviction_reclaims_resources_through_the_guardian() {
    for config in [
        small_trigger(ZoneConfig::typed()),
        small_trigger(ZoneConfig::scheme()),
    ] {
        let mut zone = Zone::new(0, &config);
        for s in 0..30 {
            zone.dispatch(Request::Open { session: s });
        }
        for s in 0..30 {
            zone.dispatch(Request::Work {
                session: s,
                amount: 3,
            });
        }
        for s in 0..20 {
            zone.dispatch(Request::Evict { session: s });
        }
        zone.quiesce();
        let obs = zone.observables();
        assert_eq!(obs.sessions_opened, 30);
        assert_eq!(obs.sessions_evicted, 20);
        assert_eq!(
            obs.reclaimed_sessions, 20,
            "guardian proved all evicted dead"
        );
        assert_eq!(obs.fds_closed, 20);
        assert_eq!(obs.blocks_freed, 20);
        assert_eq!(obs.live_sessions, 10);
        assert_eq!(obs.open_fds, 10, "no fd leaks");
        assert_eq!(obs.ext_live_blocks, 10, "no block leaks");
        assert_eq!(obs.os_opens, obs.os_closes + obs.open_fds);
        zone.verify().expect("zone verifies after reclamation");
    }
}

#[test]
fn observables_are_identical_across_all_three_engines() {
    for base in [ZoneConfig::typed(), ZoneConfig::scheme()] {
        let reqs = script(20, 6);
        let mut all: Vec<(String, ZoneObservables)> = Vec::new();
        for engine in Engine::MATRIX {
            let cfg = small_trigger(base.clone()).with_engine(engine);
            all.push((engine.label(), solo(0, &cfg, &reqs)));
        }
        let (ref first_label, ref want) = all[0];
        for (label, got) in &all[1..] {
            assert_eq!(
                got, want,
                "{label} observables differ from {first_label} ({:?} workload)",
                base.workload
            );
        }
    }
}

#[test]
fn router_fleet_matches_solo_replay_per_zone() {
    const ZONES: usize = 8;
    let pool = SegmentPool::with_capacity(8192);
    let router = ZoneRouter::new(4, pool);
    let configs: Vec<ZoneConfig> = (0..ZONES as u64)
        .map(|id| {
            let base = if id % 2 == 0 {
                ZoneConfig::typed()
            } else {
                ZoneConfig::scheme()
            };
            small_trigger(base).with_engine(Engine::MATRIX[(id % 3) as usize])
        })
        .collect();
    for (id, cfg) in configs.iter().enumerate() {
        router.create_zone(id as u64, cfg.clone());
    }
    // Route a session-hashed request stream and record each zone's
    // subsequence (the router preserves per-zone FIFO order).
    let mut per_zone: Vec<Vec<Request>> = vec![Vec::new(); ZONES];
    let mut reqs = Vec::new();
    for s in 0..200u64 {
        reqs.push(Request::Open { session: s });
    }
    for round in 0..4u32 {
        for s in 0..200u64 {
            reqs.push(Request::Work {
                session: s,
                amount: 1 + (s as u32 + round) % 5,
            });
        }
    }
    for s in (0..200u64).step_by(2) {
        reqs.push(Request::Evict { session: s });
    }
    for &r in &reqs {
        let z = session_zone(r.session(), ZONES);
        per_zone[z as usize].push(r);
        router.dispatch_by_session(ZONES, r);
    }
    router.quiesce();
    let snaps = router.shutdown();
    assert_eq!(snaps.len(), ZONES);
    for snap in &snaps {
        let cfg = &configs[snap.zone as usize];
        let want = solo(snap.zone, cfg, &per_zone[snap.zone as usize]);
        assert_eq!(
            snap.obs, want,
            "zone {} fleet observables == solo replay",
            snap.zone
        );
    }
    // All sessions landed somewhere, and the hash spread them out.
    let opened: u64 = snaps.iter().map(|s| s.obs.sessions_opened).sum();
    assert_eq!(opened, 200);
    assert!(snaps.iter().all(|s| s.obs.sessions_opened > 0));
}

#[test]
fn router_shutdown_returns_all_segments() {
    let pool = SegmentPool::with_capacity(8192);
    let router = ZoneRouter::new(3, pool.clone());
    for id in 0..5u64 {
        router.create_zone(id, small_trigger(ZoneConfig::typed()));
    }
    for s in 0..100u64 {
        router.dispatch_by_session(5, Request::Open { session: s });
        router.dispatch_by_session(
            5,
            Request::Work {
                session: s,
                amount: 4,
            },
        );
    }
    let torn = router.teardown_zone(2).expect("zone 2 live");
    assert!(torn.obs.requests > 0);
    let snaps = router.shutdown();
    assert_eq!(snaps.len(), 4, "zone 2 already torn down");
    let stats = pool.stats();
    assert_eq!(stats.outstanding, 0, "workers dropped their zones");
    assert_eq!(stats.attached_tables, 0);
}

#[test]
fn soak_seeds_pass_with_oracle_checks() {
    for seed in [1, 2, 3] {
        let stats = soak::check_seed(seed, 120, 6).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.zones_created > 0);
        assert_eq!(
            stats.zones_checked, stats.zones_created,
            "every zone checked"
        );
    }
}

#[test]
fn soak_schedule_text_roundtrips() {
    let schedule = soak::generate(99, 200, 5);
    assert!(soak::covers_both_workloads(&schedule));
    let text = schedule.to_text();
    let parsed = SoakSchedule::from_text(&text).expect("parses");
    assert_eq!(parsed, schedule);
}

#[test]
fn soak_skips_ops_on_dead_zones() {
    // A shrunk subsequence may reference zones never created: it must
    // still run (ops skipped), which is what makes ddmin applicable.
    let schedule = SoakSchedule {
        seed: 0,
        ops: vec![
            SoakOp::Open {
                zone: 9,
                session: 1,
            },
            SoakOp::Work {
                zone: 9,
                session: 1,
                amount: 5,
            },
            SoakOp::Create { zone: 0 },
            SoakOp::Open {
                zone: 0,
                session: 2,
            },
            SoakOp::Evict {
                zone: 0,
                session: 2,
            },
            SoakOp::Quiesce,
        ],
    };
    let stats = soak::run_schedule(&schedule).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(stats.zones_created, 1);
    assert_eq!(stats.requests, 2, "dead-zone ops skipped");
}

#[test]
fn observe_autotune_is_bit_identical_to_off() {
    // A per-zone controller in observe mode logs the decisions it would
    // have made but applies none: every observable — collections
    // included — matches the untuned zone exactly.
    for base in [ZoneConfig::typed(), ZoneConfig::scheme()] {
        let reqs = script(24, 8);
        let off = solo(3, &small_trigger(base.clone()), &reqs);
        let observed = solo(
            3,
            &small_trigger(base.clone()).with_autotune(AutotuneMode::Observe),
            &reqs,
        );
        assert_eq!(observed, off, "observe == off ({:?})", base.workload);
    }
}

#[test]
fn active_autotune_zone_is_deterministic_and_reclaims() {
    // An actively autotuned zone stays deterministic (pooled == private
    // for the same script), still reclaims every evicted session through
    // its guardian, and its controller actually acts. The script is
    // heavy enough (~6 MB of allocation against a 64 KB trigger) that
    // old generations are collected repeatedly, giving the frequency
    // knob the stable-survivor samples it decides on.
    let heavy_script = || {
        let mut reqs = Vec::new();
        for s in 0..16u64 {
            reqs.push(Request::Open { session: s });
        }
        for r in 0..80u32 {
            for s in 0..16u64 {
                reqs.push(Request::Work {
                    session: s,
                    amount: 48,
                });
            }
            if r % 20 == 19 {
                for s in 0..16u64 {
                    reqs.push(Request::Evict { session: s });
                    reqs.push(Request::Open { session: s });
                }
            }
        }
        reqs
    };
    for base in [ZoneConfig::typed(), ZoneConfig::scheme()] {
        let cfg = small_trigger(base.clone()).with_autotune(AutotuneMode::Active);
        let reqs = heavy_script();
        let want = solo(5, &cfg, &reqs);
        let mut mgr = ZoneManager::new();
        mgr.create_zone(5, &cfg);
        for &r in &reqs {
            mgr.dispatch(5, r);
        }
        mgr.quiesce();
        let zone = mgr.zone_mut(5).unwrap();
        assert_eq!(
            zone.observables(),
            want,
            "active-mode pooled == active-mode private ({:?})",
            base.workload
        );
        assert_eq!(
            zone.observables().sessions_evicted,
            zone.observables().reclaimed_sessions,
            "every evicted session reclaimed"
        );
        assert!(
            !zone.heap_mut().autotune_decisions().is_empty(),
            "the per-zone controller acted ({:?})",
            base.workload
        );
        zone.verify().expect("autotuned zone verifies");
    }
}

#[test]
fn rebalance_quotas_divides_capacity_without_stranding_zones() {
    const CAPACITY: usize = 2048;
    let mut mgr = ZoneManager::with_capacity(CAPACITY);
    // One busy tenant, one light tenant, one idle tenant.
    mgr.create_zone(0, &small_trigger(ZoneConfig::typed()));
    mgr.create_zone(1, &small_trigger(ZoneConfig::typed()));
    mgr.create_zone(2, &small_trigger(ZoneConfig::typed()));
    for &r in &script(48, 10) {
        mgr.dispatch(0, r);
    }
    for &r in &script(6, 2) {
        mgr.dispatch(1, r);
    }
    let quotas = mgr.rebalance_quotas();
    assert_eq!(quotas.len(), 3);
    let total: usize = quotas.iter().map(|&(_, q)| q).sum();
    assert!(
        total <= CAPACITY,
        "quotas are collectively admissible ({total} <= {CAPACITY})"
    );
    for &(id, q) in &quotas {
        let held = mgr.zone(id).unwrap().segments_held();
        assert!(q >= held, "zone {id}: quota {q} covers holdings {held}");
    }
    let q = |id: u64| quotas.iter().find(|&&(z, _)| z == id).unwrap().1;
    assert!(
        q(0) > q(2),
        "the busy zone outbids the idle one ({} vs {})",
        q(0),
        q(2)
    );
    // Every zone keeps working under its new watermark.
    for id in 0..3 {
        for &r in &script(8, 3) {
            mgr.dispatch(id, r);
        }
    }
    mgr.quiesce();
    for id in mgr.zone_ids() {
        mgr.zone(id).unwrap().verify().expect("zone verifies");
    }
    // An unbounded pool has no capacity to divide.
    let mut unbounded = ZoneManager::new();
    unbounded.create_zone(0, &ZoneConfig::typed());
    assert!(unbounded.rebalance_quotas().is_empty());
}

#[test]
fn engine_labels_roundtrip() {
    for engine in [
        Engine::Serial,
        Engine::Workers(4),
        Engine::Workers(16),
        Engine::PauseBudgetUs(100),
        Engine::PauseBudgetUs(250),
    ] {
        assert_eq!(Engine::from_label(&engine.label()), Some(engine));
    }
    assert_eq!(Engine::from_label("warp9"), None);
}

#[test]
fn fleet_stats_json_is_well_formed() {
    let mut mgr = ZoneManager::with_capacity(2048);
    for id in 0..3 {
        mgr.create_zone(id, &small_trigger(ZoneConfig::typed()));
        for &r in &script(8, 3) {
            mgr.dispatch(id, r);
        }
    }
    mgr.quiesce();
    let snaps = mgr.snapshots();
    let json = guardians_zones::fleet_stats_json(&snaps, &mgr.pool_stats(), 1_000_000);
    assert!(json.contains("\"fleet\""));
    assert!(json.contains("\"pool\""));
    assert!(json.contains("\"zones\""));
    assert!(json.contains("\"requests_per_sec\""));
    assert_eq!(json.matches("\"zone\":").count(), 3);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn ci_matrix_engine_leg() {
    // The zone-matrix CI job runs this test once per engine with
    // ZONE_ENGINE=<label> pinning every zone in the fleet to that
    // engine; without the variable the whole matrix runs. The
    // autotune-matrix job additionally sets ZONE_AUTOTUNE=observe|active
    // to run the same fleet with every zone's policy controller enabled.
    // Each leg is a router fleet whose per-zone observables must match a
    // private solo replay — the cross-engine identity check, scoped to
    // one engine so a CI failure names the engine that broke.
    let engines: Vec<Engine> = match std::env::var("ZONE_ENGINE") {
        Ok(label) => vec![Engine::from_label(&label)
            .unwrap_or_else(|| panic!("ZONE_ENGINE={label:?} is not an engine label"))],
        Err(_) => Engine::MATRIX.to_vec(),
    };
    let autotune: AutotuneMode = match std::env::var("ZONE_AUTOTUNE") {
        Ok(label) => label
            .parse()
            .unwrap_or_else(|e| panic!("ZONE_AUTOTUNE: {e}")),
        Err(_) => AutotuneMode::Off,
    };
    const ZONES: usize = 4;
    for engine in engines {
        let router = ZoneRouter::new(2, SegmentPool::unbounded());
        let configs: Vec<ZoneConfig> = (0..ZONES as u64)
            .map(|id| {
                let base = if id % 2 == 0 {
                    ZoneConfig::typed()
                } else {
                    ZoneConfig::scheme()
                };
                small_trigger(base)
                    .with_engine(engine)
                    .with_autotune(autotune)
            })
            .collect();
        for (id, cfg) in configs.iter().enumerate() {
            router.create_zone(id as u64, cfg.clone());
        }
        let mut per_zone: Vec<Vec<Request>> = vec![Vec::new(); ZONES];
        for &r in &script(60, 4) {
            let z = session_zone(r.session(), ZONES);
            per_zone[z as usize].push(r);
            router.dispatch_by_session(ZONES, r);
        }
        router.quiesce();
        for snap in router.shutdown() {
            let cfg = &configs[snap.zone as usize];
            let want = solo(snap.zone, cfg, &per_zone[snap.zone as usize]);
            assert_eq!(
                snap.obs,
                want,
                "engine {}: zone {} fleet observables == solo replay",
                engine.label(),
                snap.zone
            );
        }
    }
}
