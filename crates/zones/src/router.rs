//! Thread-per-core request router: a fixed set of worker threads, each
//! owning the zones assigned to it, fed over per-worker FIFO channels.
//!
//! [`Heap`](guardians_gc::Heap) is `!Send` (its root set is `Rc`-based),
//! so zones never migrate: each worker *constructs* its zones locally and
//! only plain data — the shared [`SegmentPool`] handle, [`Request`]s, and
//! [`ZoneSnapshot`]s — crosses threads. Zone `i` lives on worker
//! `i % workers`; each worker drains its channel in FIFO order, so the
//! per-zone request order equals the order of `dispatch` calls — which
//! makes a fleet run's per-zone observables reproducible by replaying the
//! same per-zone subsequence on a single-threaded [`ZoneManager`].
//!
//! Sessions are mapped to zones by [`session_zone`], a fixed-key
//! SplitMix64 hash, so a front-end can route by session id alone.

use crate::zone::{Request, ZoneConfig, ZoneSnapshot};
use crate::ZoneManager;
use guardians_gc::{PoolStats, SegmentPool};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maps a session id onto one of `n_zones` zones (deterministic hash).
pub fn session_zone(session: u64, n_zones: usize) -> u64 {
    assert!(n_zones > 0, "session_zone over an empty fleet");
    // SplitMix64 finalizer: full-avalanche, so consecutive session ids
    // spread across zones.
    let mut z = session.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % n_zones as u64
}

enum Msg {
    Create(u64, ZoneConfig),
    Dispatch(u64, Request),
    Teardown(u64, Sender<Option<ZoneSnapshot>>),
    Quiesce(Sender<()>),
    Snapshot(Sender<Vec<ZoneSnapshot>>),
}

/// The thread-per-core front end over a fleet of zones.
pub struct ZoneRouter {
    pool: Arc<SegmentPool>,
    senders: Vec<Sender<Msg>>,
    workers: Vec<JoinHandle<Vec<ZoneSnapshot>>>,
}

impl ZoneRouter {
    /// Starts `workers` worker threads over a shared `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, pool: Arc<SegmentPool>) -> ZoneRouter {
        assert!(workers > 0, "router needs at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Msg>();
            let pool = Arc::clone(&pool);
            let handle = std::thread::Builder::new()
                .name(format!("zone-worker-{w}"))
                .spawn(move || {
                    let mut mgr = ZoneManager::with_pool(pool);
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Create(id, config) => {
                                mgr.create_zone(id, &config);
                            }
                            Msg::Dispatch(id, req) => mgr.dispatch(id, req),
                            Msg::Teardown(id, reply) => {
                                let _ = reply.send(mgr.teardown_zone(id));
                            }
                            Msg::Quiesce(reply) => {
                                mgr.quiesce();
                                let _ = reply.send(());
                            }
                            Msg::Snapshot(reply) => {
                                let _ = reply.send(mgr.snapshots());
                            }
                        }
                    }
                    // Channel closed: report the final state as-is.
                    // Deliberately no implicit quiesce — collections are
                    // part of each zone's observable history, so shutdown
                    // must not add any; callers wanting quiesced finals
                    // call `quiesce()` first.
                    mgr.snapshots()
                })
                .expect("spawn router worker");
            senders.push(tx);
            handles.push(handle);
        }
        ZoneRouter {
            pool,
            senders,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The shared pool.
    pub fn pool(&self) -> &Arc<SegmentPool> {
        &self.pool
    }

    /// Shared-pool accounting.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn worker_for(&self, zone: u64) -> &Sender<Msg> {
        &self.senders[(zone % self.senders.len() as u64) as usize]
    }

    /// Creates zone `zone` on its home worker (`zone % workers`).
    pub fn create_zone(&self, zone: u64, config: ZoneConfig) {
        self.worker_for(zone)
            .send(Msg::Create(zone, config))
            .expect("router worker alive");
    }

    /// Enqueues `req` for zone `zone`; the worker dispatches it at the
    /// zone's next safe point. Per-zone FIFO order is the send order.
    pub fn dispatch(&self, zone: u64, req: Request) {
        self.worker_for(zone)
            .send(Msg::Dispatch(zone, req))
            .expect("router worker alive");
    }

    /// Routes `req` by its session id across `n_zones` zones.
    pub fn dispatch_by_session(&self, n_zones: usize, req: Request) {
        self.dispatch(session_zone(req.session(), n_zones), req);
    }

    /// Tears zone `zone` down on its worker; blocks for the final
    /// snapshot (segments are back in the pool when this returns).
    pub fn teardown_zone(&self, zone: u64) -> Option<ZoneSnapshot> {
        let (tx, rx) = channel();
        self.worker_for(zone)
            .send(Msg::Teardown(zone, tx))
            .expect("router worker alive");
        rx.recv().expect("router worker replies")
    }

    /// Quiesces every zone on every worker; blocks until done.
    pub fn quiesce(&self) {
        let replies: Vec<_> = self
            .senders
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                s.send(Msg::Quiesce(tx)).expect("router worker alive");
                rx
            })
            .collect();
        for rx in replies {
            rx.recv().expect("router worker replies");
        }
    }

    /// Snapshots every live zone across all workers, sorted by zone id.
    pub fn snapshots(&self) -> Vec<ZoneSnapshot> {
        let replies: Vec<_> = self
            .senders
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                s.send(Msg::Snapshot(tx)).expect("router worker alive");
                rx
            })
            .collect();
        let mut all: Vec<ZoneSnapshot> = replies
            .into_iter()
            .flat_map(|rx| rx.recv().expect("router worker replies"))
            .collect();
        all.sort_by_key(|s| s.zone);
        all
    }

    /// Shuts the router down: closes every channel, joins every worker,
    /// and returns the final snapshots sorted by zone id. No implicit
    /// quiesce happens (call [`ZoneRouter::quiesce`] first if wanted);
    /// zones still live at shutdown are dropped on their workers, so
    /// their segments return to the pool before this returns.
    pub fn shutdown(self) -> Vec<ZoneSnapshot> {
        drop(self.senders);
        let mut all: Vec<ZoneSnapshot> = self
            .workers
            .into_iter()
            .flat_map(|h| h.join().expect("router worker exits cleanly"))
            .collect();
        all.sort_by_key(|s| s.zone);
        all
    }
}

impl std::fmt::Debug for ZoneRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZoneRouter")
            .field("workers", &self.senders.len())
            .field("pool", &self.pool.stats())
            .finish()
    }
}
