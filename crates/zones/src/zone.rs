//! One tenant zone: an isolated heap (own generations, guardians,
//! metrics, census) plus the tenant's external resources (`SimOs` file
//! descriptors, `ExtArena` blocks), driven by a small request protocol.
//!
//! A zone is deterministic: given the same request sequence it produces
//! the same [`ZoneObservables`] whether its heap is private or drawn from
//! a shared [`SegmentPool`], whichever collector engine runs it, and
//! whether it lives alone or among a fleet — the identity the zone tests
//! and experiment E21 pin.

use guardians_gc::{
    AutotuneConfig, AutotuneMode, GcConfig, Guardian as RawGuardian, Heap, Rooted, SegmentPool,
    TraceConfig, TracedEvent, Value,
};
use guardians_gc_api::{impl_trace, GcHeap, Guardian as TypedGuardian, Root};
use guardians_runtime::{BlockId, ExtArena, Fd, SimOs};
use guardians_scheme::{EvalMode, Interp};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Collector engine selection for a zone, as an explicit axis (the same
/// three engines `GcConfig` encodes implicitly): serial stop-the-world,
/// parallel copy/scan with `n` workers, or incremental bounded-pause.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// One collector thread, stop-the-world.
    Serial,
    /// Parallel copy/scan with this many workers.
    Workers(usize),
    /// Incremental engine with a pause budget in microseconds.
    PauseBudgetUs(u64),
}

impl Engine {
    /// The engine matrix CI and E21 sweep: serial, 4 workers, 100 µs.
    pub const MATRIX: [Engine; 3] = [
        Engine::Serial,
        Engine::Workers(4),
        Engine::PauseBudgetUs(100),
    ];

    /// Applies the engine to a base collector configuration.
    pub fn apply(self, mut gc: GcConfig) -> GcConfig {
        match self {
            Engine::Serial => {
                gc.workers = 1;
                gc.pause_budget = None;
            }
            Engine::Workers(n) => {
                gc.workers = n.max(1);
                gc.pause_budget = None;
            }
            Engine::PauseBudgetUs(us) => {
                gc.pause_budget = Some(std::time::Duration::from_micros(us));
            }
        }
        gc
    }

    /// Stable label, e.g. `serial`, `workers4`, `budget100us`.
    pub fn label(self) -> String {
        match self {
            Engine::Serial => "serial".to_string(),
            Engine::Workers(n) => format!("workers{n}"),
            Engine::PauseBudgetUs(us) => format!("budget{us}us"),
        }
    }

    /// Parses [`Engine::label`] output (the CI matrix env var format).
    pub fn from_label(s: &str) -> Option<Engine> {
        if s == "serial" {
            return Some(Engine::Serial);
        }
        if let Some(n) = s.strip_prefix("workers") {
            return n.parse().ok().map(Engine::Workers);
        }
        if let Some(us) = s.strip_prefix("budget").and_then(|t| t.strip_suffix("us")) {
            return us.parse().ok().map(Engine::PauseBudgetUs);
        }
        None
    }
}

/// Which workload surface the zone serves requests through.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The typed `Gc<T>` front-end: sessions are `Session` records held
    /// by `Root<Session>` handles and a typed `Guardian<Session>`.
    Typed,
    /// The Scheme tier (bytecode VM): sessions are raw records guarded by
    /// a raw guardian; work requests evaluate Scheme churn programs.
    Scheme,
}

impl WorkloadKind {
    /// Stable label (`typed` / `scheme`).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Typed => "typed",
            WorkloadKind::Scheme => "scheme",
        }
    }
}

/// Configuration for one zone.
#[derive(Clone, Debug)]
pub struct ZoneConfig {
    /// Base collector configuration (generations, trigger, policy); the
    /// engine is applied on top at construction.
    pub gc: GcConfig,
    /// Collector engine.
    pub engine: Engine,
    /// Workload surface.
    pub workload: WorkloadKind,
    /// Per-zone segment watermark (quota) against the shared pool.
    pub max_segments: Option<usize>,
    /// Simulated-OS fd table size for this tenant.
    pub fd_limit: usize,
    /// Per-zone GC policy autotuner mode. Each zone's controller is
    /// private — it tunes that tenant's heap to that tenant's workload;
    /// `Observe` logs decisions without applying them (asserted
    /// bit-identical to `Off`).
    pub autotune: AutotuneMode,
}

impl ZoneConfig {
    /// A typed-workload zone with default collector settings.
    pub fn typed() -> ZoneConfig {
        ZoneConfig {
            gc: GcConfig::default(),
            engine: Engine::Serial,
            workload: WorkloadKind::Typed,
            max_segments: None,
            fd_limit: 4096,
            autotune: AutotuneMode::Off,
        }
    }

    /// A Scheme-workload zone with default collector settings.
    pub fn scheme() -> ZoneConfig {
        ZoneConfig {
            workload: WorkloadKind::Scheme,
            ..ZoneConfig::typed()
        }
    }

    /// Replaces the engine.
    pub fn with_engine(mut self, engine: Engine) -> ZoneConfig {
        self.engine = engine;
        self
    }

    /// Sets the per-zone segment watermark.
    pub fn with_max_segments(mut self, max: usize) -> ZoneConfig {
        self.max_segments = Some(max);
        self
    }

    /// Sets the collection trigger (bytes allocated between safe-point
    /// collections).
    pub fn with_trigger_bytes(mut self, bytes: usize) -> ZoneConfig {
        self.gc.trigger_bytes = bytes;
        self
    }

    /// Sets the per-zone autotuner mode.
    pub fn with_autotune(mut self, mode: AutotuneMode) -> ZoneConfig {
        self.autotune = mode;
        self
    }
}

impl Default for ZoneConfig {
    fn default() -> ZoneConfig {
        ZoneConfig::typed()
    }
}

impl_trace! {
    /// A tenant session as the typed front-end sees it: identity plus the
    /// two external resources the guardian reclaims (fd, arena block) and
    /// a work counter.
    pub struct Session {
        /// Session id.
        pub id: i64,
        /// Simulated-OS file descriptor owned by the session.
        pub fd: i64,
        /// External arena block owned by the session.
        pub block: i64,
        /// Accumulated work units.
        pub hits: i64,
    }
}

/// A request dispatched into a zone at a safe point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open a session: allocate its record, open its fd, malloc its
    /// block, register it with the zone's guardian.
    Open {
        /// Session id.
        session: u64,
    },
    /// Perform `amount` units of allocating work attributed to a session.
    Work {
        /// Session id.
        session: u64,
        /// Work units.
        amount: u32,
    },
    /// Evict the session: drop its root. The guardian proves it dead at a
    /// later collection, after which the zone closes its fd and frees its
    /// block — program-controlled reclamation, per the paper.
    Evict {
        /// Session id.
        session: u64,
    },
}

impl Request {
    /// The session this request addresses (the router's hash key).
    pub fn session(self) -> u64 {
        match self {
            Request::Open { session }
            | Request::Work { session, .. }
            | Request::Evict { session } => session,
        }
    }
}

/// The deterministic observables of one zone: identical across engines,
/// across private-vs-pooled heaps, and across solo-vs-fleet placement for
/// the same request sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ZoneObservables {
    /// Requests dispatched.
    pub requests: u64,
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions evicted (roots dropped).
    pub sessions_evicted: u64,
    /// Evicted sessions whose resources the guardian path reclaimed.
    pub reclaimed_sessions: u64,
    /// Fds closed by reclamation.
    pub fds_closed: u64,
    /// Arena blocks freed by reclamation.
    pub blocks_freed: u64,
    /// FNV-folded checksum over request results.
    pub checksum: u64,
    /// Collections performed by the zone's heap.
    pub collections: u64,
    /// Pairs allocated.
    pub pairs_allocated: u64,
    /// Typed objects allocated.
    pub objects_allocated: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// Guardian registrations.
    pub guardian_registrations: u64,
    /// Sessions still live.
    pub live_sessions: u64,
    /// Tenant fds ever opened.
    pub os_opens: u64,
    /// Tenant fds closed.
    pub os_closes: u64,
    /// Tenant fds currently open (the leak metric).
    pub open_fds: u64,
    /// Arena blocks currently live (the leak metric).
    pub ext_live_blocks: u64,
}

/// A `Send`able point-in-time summary of one zone, for fleet roll-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneSnapshot {
    /// Zone id.
    pub zone: u64,
    /// Engine label.
    pub engine: String,
    /// Workload label.
    pub workload: String,
    /// Deterministic observables.
    pub obs: ZoneObservables,
    /// Pause p50 (ns) from the zone's own `gc.pause_ns` histogram.
    pub pause_p50_ns: u64,
    /// Pause p99 (ns).
    pub pause_p99_ns: u64,
    /// Pause max (ns).
    pub pause_max_ns: u64,
    /// Segments currently held by the zone's heap.
    pub segments: u64,
    /// Live words (census).
    pub live_words: u64,
    /// Live objects (census).
    pub live_objects: u64,
}

impl ZoneSnapshot {
    /// Deterministic JSON rendering with a fixed key order.
    pub fn to_json(&self) -> String {
        let o = &self.obs;
        format!(
            "{{\"zone\":{},\"engine\":\"{}\",\"workload\":\"{}\",\
             \"requests\":{},\"sessions_opened\":{},\"sessions_evicted\":{},\
             \"reclaimed_sessions\":{},\"fds_closed\":{},\"blocks_freed\":{},\
             \"live_sessions\":{},\"open_fds\":{},\"ext_live_blocks\":{},\
             \"checksum\":{},\"collections\":{},\"words_allocated\":{},\
             \"guardian_registrations\":{},\"pause_p50_ns\":{},\"pause_p99_ns\":{},\
             \"pause_max_ns\":{},\"segments\":{},\"live_words\":{},\"live_objects\":{}}}",
            self.zone,
            self.engine,
            self.workload,
            o.requests,
            o.sessions_opened,
            o.sessions_evicted,
            o.reclaimed_sessions,
            o.fds_closed,
            o.blocks_freed,
            o.live_sessions,
            o.open_fds,
            o.ext_live_blocks,
            o.checksum,
            o.collections,
            o.words_allocated,
            o.guardian_registrations,
            self.pause_p50_ns,
            self.pause_p99_ns,
            self.pause_max_ns,
            self.segments,
            self.live_words,
            self.live_objects,
        )
    }
}

/// The Scheme-side work procedures installed into a Scheme zone.
const ZONE_PRELUDE: &str = "\
    (define (ziota n) \
      (let lp ((i 0) (acc '())) \
        (if (= i n) acc (lp (+ i 1) (cons i acc))))) \
    (define (zchurn n) \
      (length (map (lambda (x) (* x x)) (ziota n))))";

enum SessionHandle {
    Typed(Root<Session>),
    Raw(Rooted),
}

enum Backend {
    Typed {
        heap: Box<GcHeap>,
        guardian: TypedGuardian<Session>,
    },
    Scheme {
        interp: Box<Interp>,
        guardian: RawGuardian,
        tag: Rooted,
    },
}

/// One tenant zone. See the module docs.
pub struct Zone {
    id: u64,
    engine: Engine,
    workload: WorkloadKind,
    backend: Backend,
    os: SimOs,
    arena: ExtArena,
    sessions: BTreeMap<u64, SessionHandle>,
    requests: u64,
    sessions_opened: u64,
    sessions_evicted: u64,
    reclaimed_sessions: u64,
    fds_closed: u64,
    blocks_freed: u64,
    checksum: u64,
}

impl Zone {
    /// Builds a zone over a private heap.
    pub fn new(id: u64, config: &ZoneConfig) -> Zone {
        Zone::build(id, config, None)
    }

    /// Builds a zone whose heap draws on the shared pool, bounded by the
    /// config's `max_segments` watermark.
    pub fn with_pool(id: u64, config: &ZoneConfig, pool: Arc<SegmentPool>) -> Zone {
        Zone::build(id, config, Some(pool))
    }

    fn build(id: u64, config: &ZoneConfig, pool: Option<Arc<SegmentPool>>) -> Zone {
        let gc = config.engine.apply(config.gc.clone());
        let mut heap = match pool {
            Some(p) => Heap::with_pool(gc, p, config.max_segments),
            None => Heap::new(gc),
        };
        match config.autotune {
            AutotuneMode::Off => {}
            AutotuneMode::Observe => heap.enable_autotune(AutotuneConfig::observe()),
            AutotuneMode::Active => heap.enable_autotune(AutotuneConfig::active()),
        }
        let backend = match config.workload {
            WorkloadKind::Typed => {
                let mut heap = Box::new(GcHeap::from_heap(heap));
                let guardian = heap.guardian::<Session>();
                Backend::Typed { heap, guardian }
            }
            WorkloadKind::Scheme => {
                let mut interp = Box::new(Interp::with_heap(heap, EvalMode::Vm));
                interp
                    .eval_str(ZONE_PRELUDE)
                    .expect("zone prelude evaluates");
                let guardian = interp.heap_mut().make_guardian();
                let tag = {
                    let h = interp.heap_mut();
                    let s = h.make_symbol("zone-session");
                    h.root(s)
                };
                Backend::Scheme {
                    interp,
                    guardian,
                    tag,
                }
            }
        };
        Zone {
            id,
            engine: config.engine,
            workload: config.workload,
            backend,
            os: SimOs::with_fd_limit(config.fd_limit),
            arena: ExtArena::new(),
            sessions: BTreeMap::new(),
            requests: 0,
            sessions_opened: 0,
            sessions_evicted: 0,
            reclaimed_sessions: 0,
            fds_closed: 0,
            blocks_freed: 0,
            checksum: 0,
        }
    }

    /// Zone id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The zone's heap, shared (telemetry, verification).
    pub fn heap(&self) -> &Heap {
        match &self.backend {
            Backend::Typed { heap, .. } => heap.raw(),
            Backend::Scheme { interp, .. } => interp.heap(),
        }
    }

    /// The zone's heap, exclusive (tracing set-up, metrics export).
    pub fn heap_mut(&mut self) -> &mut Heap {
        match &mut self.backend {
            Backend::Typed { heap, .. } => heap.raw_mut(),
            Backend::Scheme { interp, .. } => interp.heap_mut(),
        }
    }

    /// Segments the zone's heap currently holds against the shared pool
    /// (or its private backing) — the demand signal quota rebalancing
    /// divides the pool by.
    pub fn segments_held(&self) -> usize {
        self.heap()
            .generation_usage()
            .iter()
            .map(|u| u.segments)
            .sum()
    }

    /// Replaces the zone's segment quota (watermark against the shared
    /// pool). `None` removes the watermark.
    pub fn set_quota(&mut self, max: Option<usize>) {
        self.heap_mut().set_max_segments(max);
    }

    /// The tenant's simulated OS (fd accounting).
    pub fn os(&self) -> &SimOs {
        &self.os
    }

    /// The tenant's external arena (block accounting).
    pub fn arena(&self) -> &ExtArena {
        &self.arena
    }

    fn mix(&mut self, x: u64) {
        self.checksum = (self.checksum ^ x).wrapping_mul(0x100_0000_01b3);
    }

    /// Dispatches one request, then runs the zone's safe point (policy
    /// collection plus guardian drain) — the router's per-request
    /// contract.
    pub fn dispatch(&mut self, req: Request) {
        self.requests += 1;
        match req {
            Request::Open { session } => self.open(session),
            Request::Work { session, amount } => self.work(session, amount),
            Request::Evict { session } => self.evict(session),
        }
        self.safe_point();
    }

    fn open(&mut self, session: u64) {
        if self.sessions.contains_key(&session) {
            return; // idempotent: the session is already live
        }
        let fd = self
            .os
            .open_output(&format!("zone{}-s{}", self.id, session))
            .expect("zone fd table sized for the session load");
        self.os.write(fd, b"open\n").expect("fresh fd is writable");
        let block = self.arena.malloc(64 + (session as usize % 7) * 8);
        let handle = match &mut self.backend {
            Backend::Typed { heap, guardian } => {
                let root = heap.alloc(&Session {
                    id: session as i64,
                    fd: i64::from(fd.0),
                    block: block.0 as i64,
                    hits: 0,
                });
                heap.guard(guardian, &root);
                SessionHandle::Typed(root)
            }
            Backend::Scheme {
                interp,
                guardian,
                tag,
            } => {
                let h = interp.heap_mut();
                let fields = [
                    Value::fixnum(session as i64),
                    Value::fixnum(i64::from(fd.0)),
                    Value::fixnum(block.0 as i64),
                    Value::fixnum(0),
                ];
                let rec = h.make_record(tag.get(), &fields);
                guardian.register(h, rec);
                SessionHandle::Raw(h.root(rec))
            }
        };
        self.sessions.insert(session, handle);
        self.sessions_opened += 1;
        self.mix(session.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }

    fn work(&mut self, session: u64, amount: u32) {
        let Some(handle) = self.sessions.get(&session) else {
            return; // no such tenant session: a counted no-op
        };
        match (&mut self.backend, handle) {
            (Backend::Typed { heap, .. }, SessionHandle::Typed(root)) => {
                let hits: i64 = heap.field(root, 3);
                let hits = hits + i64::from(amount);
                heap.set_field(root, 3, &hits);
                // Allocation churn through the typed API: short-lived
                // records the next young collection reclaims.
                for k in 0..amount {
                    let scratch = heap.alloc(&Session {
                        id: -1,
                        fd: -1,
                        block: -1,
                        hits: i64::from(k),
                    });
                    drop(scratch);
                }
                let digest = (session << 17) ^ hits as u64;
                self.mix(digest);
            }
            (Backend::Scheme { interp, .. }, SessionHandle::Raw(root)) => {
                let n = 8 + amount % 64;
                let out = interp
                    .eval_to_string(&format!("(zchurn {n})"))
                    .expect("zone work program evaluates");
                let h = interp.heap_mut();
                let rec = root.get();
                let hits = h.record_ref(rec, 3).as_fixnum() + i64::from(amount);
                h.record_set(rec, 3, Value::fixnum(hits));
                let mut digest = (session << 17) ^ hits as u64;
                for b in out.bytes() {
                    digest = (digest ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
                self.mix(digest);
            }
            _ => unreachable!("session handle kind always matches the backend"),
        }
    }

    fn evict(&mut self, session: u64) {
        if self.sessions.remove(&session).is_some() {
            self.sessions_evicted += 1;
            self.mix(session.rotate_left(32) | 1);
        }
    }

    /// The zone's safe point: a policy-driven collection opportunity
    /// (one bounded increment under a `pause_budget` engine) followed by
    /// reclamation of every session the collector has proven dead.
    pub fn safe_point(&mut self) {
        match &mut self.backend {
            Backend::Typed { heap, .. } => {
                heap.maybe_collect();
            }
            Backend::Scheme { interp, .. } => {
                interp.heap_mut().maybe_collect();
            }
        }
        self.drain_reclaimed();
    }

    /// Drains the zone guardian: for each session record proven
    /// inaccessible, closes its fd and frees its arena block — the
    /// guardian-driven resource reclamation the paper's Section 2 motivates,
    /// performed by the mutator, never the collector.
    pub fn drain_reclaimed(&mut self) {
        loop {
            let (fd, block) = match &mut self.backend {
                Backend::Typed { heap, guardian } => match heap.poll(guardian) {
                    None => break,
                    Some(root) => {
                        let s: Session = heap.load(&root);
                        (s.fd, s.block)
                    }
                },
                Backend::Scheme {
                    interp, guardian, ..
                } => {
                    let h = interp.heap_mut();
                    match guardian.poll(h) {
                        None => break,
                        Some(rec) => (
                            h.record_ref(rec, 1).as_fixnum(),
                            h.record_ref(rec, 2).as_fixnum(),
                        ),
                    }
                }
            };
            self.os
                .close(Fd(fd as u32))
                .expect("reclaimed session fd was open");
            self.arena
                .free(BlockId(block as u64))
                .expect("reclaimed session block was live");
            self.reclaimed_sessions += 1;
            self.fds_closed += 1;
            self.blocks_freed += 1;
        }
    }

    /// Runs the zone to a quiescent state: finishes any suspended
    /// incremental cycle, then performs two full collections with
    /// guardian drains — enough to prove every evicted session dead and
    /// reclaim its resources deterministically on any engine.
    pub fn quiesce(&mut self) {
        let max_gen = {
            let heap = self.heap_mut();
            while heap.incremental_in_progress() {
                heap.gc_step();
            }
            heap.config().generations - 1
        };
        for _ in 0..2 {
            self.heap_mut().collect(max_gen);
            self.drain_reclaimed();
        }
    }

    /// Verifies the zone's heap invariants (including the §2c
    /// no-lingering-collector-owner check).
    ///
    /// # Errors
    ///
    /// Returns the heap's [`guardians_gc::VerifyError`] on any violation.
    pub fn verify(&self) -> Result<(), guardians_gc::VerifyError> {
        self.heap().verify()
    }

    /// The zone's deterministic observables.
    pub fn observables(&self) -> ZoneObservables {
        let stats = self.heap().stats();
        ZoneObservables {
            requests: self.requests,
            sessions_opened: self.sessions_opened,
            sessions_evicted: self.sessions_evicted,
            reclaimed_sessions: self.reclaimed_sessions,
            fds_closed: self.fds_closed,
            blocks_freed: self.blocks_freed,
            checksum: self.checksum,
            collections: self.heap().collection_count(),
            pairs_allocated: stats.pairs_allocated,
            objects_allocated: stats.objects_allocated,
            words_allocated: stats.words_allocated,
            guardian_registrations: stats.guardian_registrations,
            live_sessions: self.sessions.len() as u64,
            os_opens: self.os.stats().opens,
            os_closes: self.os.stats().closes,
            open_fds: self.os.open_count() as u64,
            ext_live_blocks: self.arena.live_blocks() as u64,
        }
    }

    /// A `Send`able snapshot: observables plus this zone's own pause
    /// percentiles and census totals (attributable per zone because every
    /// registry is per-heap).
    pub fn snapshot(&mut self) -> ZoneSnapshot {
        let (p50, p99, max) = {
            let m = self.heap_mut().metrics();
            match m.get_histogram("gc.pause_ns") {
                Some(h) => (
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                ),
                None => (0, 0, 0),
            }
        };
        let census = self.heap().census();
        let segments = self.segments_held();
        ZoneSnapshot {
            zone: self.id,
            engine: self.engine.label(),
            workload: self.workload.label().to_string(),
            obs: self.observables(),
            pause_p50_ns: p50,
            pause_p99_ns: p99,
            pause_max_ns: max,
            segments: segments as u64,
            live_words: census.total_words(),
            live_objects: census.total_objects(),
        }
    }

    /// Enables event tracing on the zone's heap (gcprof export).
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.heap_mut().enable_tracing(cfg);
    }

    /// Drains the zone's trace ring.
    pub fn drain_trace_events(&mut self) -> Vec<TracedEvent> {
        self.heap_mut().drain_trace_events()
    }
}

impl std::fmt::Debug for Zone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Zone")
            .field("id", &self.id)
            .field("engine", &self.engine.label())
            .field("workload", &self.workload.label())
            .field("sessions", &self.sessions.len())
            .field("requests", &self.requests)
            .finish()
    }
}
