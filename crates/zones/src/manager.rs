//! Single-threaded multi-tenant zone manager: creates zones over one
//! shared [`SegmentPool`], dispatches requests into them, and tears
//! zones down returning their segments to the pool.

use crate::zone::{Request, Zone, ZoneConfig, ZoneSnapshot};
use guardians_gc::{PoolStats, SegmentPool};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Owns a set of zones drawing segments from one shared pool.
///
/// Zone ids are dense-ish `u64`s chosen by the caller; iteration order is
/// ascending id (a `BTreeMap`), so every fleet-wide operation is
/// deterministic.
pub struct ZoneManager {
    pool: Arc<SegmentPool>,
    zones: BTreeMap<u64, Zone>,
}

impl ZoneManager {
    /// A manager over an unbounded shared pool.
    pub fn new() -> ZoneManager {
        ZoneManager::with_pool(SegmentPool::unbounded())
    }

    /// A manager over a pool capped at `segments` outstanding segments.
    pub fn with_capacity(segments: usize) -> ZoneManager {
        ZoneManager::with_pool(SegmentPool::with_capacity(segments))
    }

    /// A manager over an existing pool (shared with other managers or
    /// router workers).
    pub fn with_pool(pool: Arc<SegmentPool>) -> ZoneManager {
        ZoneManager {
            pool,
            zones: BTreeMap::new(),
        }
    }

    /// The shared pool.
    pub fn pool(&self) -> &Arc<SegmentPool> {
        &self.pool
    }

    /// Shared-pool accounting.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Creates a zone with `id` drawing on the shared pool.
    ///
    /// # Panics
    ///
    /// Panics if a zone with this id already exists.
    pub fn create_zone(&mut self, id: u64, config: &ZoneConfig) -> &mut Zone {
        assert!(!self.zones.contains_key(&id), "zone {id} already exists");
        let zone = Zone::with_pool(id, config, Arc::clone(&self.pool));
        self.zones.entry(id).or_insert(zone)
    }

    /// Number of live zones.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// Whether the manager has no zones.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// The zone with `id`, if live.
    pub fn zone(&self, id: u64) -> Option<&Zone> {
        self.zones.get(&id)
    }

    /// The zone with `id`, exclusive.
    pub fn zone_mut(&mut self, id: u64) -> Option<&mut Zone> {
        self.zones.get_mut(&id)
    }

    /// Live zone ids, ascending.
    pub fn zone_ids(&self) -> Vec<u64> {
        self.zones.keys().copied().collect()
    }

    /// Dispatches `req` into zone `id` (safe point included).
    ///
    /// # Panics
    ///
    /// Panics if the zone does not exist — routing to a dead zone is a
    /// harness bug, not a tenant condition.
    pub fn dispatch(&mut self, id: u64, req: Request) {
        self.zones
            .get_mut(&id)
            .unwrap_or_else(|| panic!("dispatch to nonexistent zone {id}"))
            .dispatch(req);
    }

    /// Quiesces every zone (ascending id order).
    pub fn quiesce(&mut self) {
        for zone in self.zones.values_mut() {
            zone.quiesce();
        }
    }

    /// Tears zone `id` down: quiesces it (reclaiming evicted-session
    /// resources through its guardian), snapshots it, then drops it — the
    /// drop returns every segment the zone's heap held to the shared pool.
    /// Returns the final snapshot, or `None` if no such zone.
    pub fn teardown_zone(&mut self, id: u64) -> Option<ZoneSnapshot> {
        let mut zone = self.zones.remove(&id)?;
        zone.quiesce();
        let snap = zone.snapshot();
        drop(zone);
        Some(snap)
    }

    /// Snapshots every live zone, ascending id order.
    pub fn snapshots(&mut self) -> Vec<ZoneSnapshot> {
        self.zones.values_mut().map(Zone::snapshot).collect()
    }

    /// Re-divides the bounded pool's capacity among live zones in
    /// proportion to each zone's current segment holdings, applying the
    /// result through each heap's watermark
    /// ([`guardians_gc::Heap::set_max_segments`]): an idle tenant's
    /// unused quota flows to its busy siblings without any zone losing
    /// what it already holds.
    ///
    /// Invariants of the returned `(zone id, quota)` assignment, in
    /// ascending id order:
    ///
    /// * every quota ≥ the zone's currently held segments (a quota below
    ///   the zone's footprint could never be satisfied), with one spare
    ///   segment of headroom per zone when the capacity affords it;
    /// * the quotas sum to ≤ the pool's capacity, so the watermarks are
    ///   collectively admissible — the pool can honor all of them at
    ///   once.
    ///
    /// Returns an empty vec when the pool is unbounded (no capacity to
    /// divide) or the manager has no zones. Deterministic: holdings are
    /// read and quotas applied in ascending zone-id order, and the
    /// arithmetic is integer-exact.
    pub fn rebalance_quotas(&mut self) -> Vec<(u64, usize)> {
        let Some(capacity) = self.pool.stats().capacity else {
            return Vec::new();
        };
        if self.zones.is_empty() {
            return Vec::new();
        }
        let held: Vec<(u64, usize)> = self
            .zones
            .iter()
            .map(|(id, z)| (*id, z.segments_held()))
            .collect();
        let n = held.len();
        let total_held: usize = held.iter().map(|&(_, h)| h).sum();
        // The pool enforces outstanding <= capacity, so total_held fits;
        // grant per-zone headroom only when it also fits.
        let (headroom, budget) = if total_held + n <= capacity {
            (1usize, capacity - total_held - n)
        } else {
            (0, capacity - total_held)
        };
        let mut out = Vec::with_capacity(n);
        for &(id, h) in &held {
            // Proportional share of the leftover budget (equal split for
            // an all-idle fleet); flooring keeps the sum within budget.
            let share = if total_held == 0 {
                budget / n
            } else {
                usize::try_from(budget as u128 * h as u128 / total_held as u128)
                    .expect("share <= budget")
            };
            let quota = h + headroom + share;
            self.zones
                .get_mut(&id)
                .expect("held was built from live zones")
                .set_quota(Some(quota));
            out.push((id, quota));
        }
        out
    }
}

impl Default for ZoneManager {
    fn default() -> ZoneManager {
        ZoneManager::new()
    }
}

impl std::fmt::Debug for ZoneManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZoneManager")
            .field("zones", &self.zone_ids())
            .field("pool", &self.pool.stats())
            .finish()
    }
}
