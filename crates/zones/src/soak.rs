//! Multi-zone soak: a seed-driven schedule of zone create / dispatch /
//! evict / teardown operations run against a shared-pool fleet, with a
//! built-in oracle — every zone's op subsequence is replayed on a
//! private-heap zone and the two [`ZoneObservables`] must match exactly.
//! Divergence renders the schedule as a committable text artifact
//! (nightly CI uploads it), and the op list is `ddmin`-shrinkable: ops
//! referencing zones or sessions that a shrunk prefix never created are
//! skipped, so any subsequence is a valid schedule.

use crate::zone::{Engine, Request, WorkloadKind, Zone, ZoneConfig, ZoneObservables};
use crate::ZoneManager;
use std::collections::BTreeMap;
use std::fmt;

/// One soak operation. All routing is explicit (recorded at generation
/// time), so a schedule replays identically however it is partitioned.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SoakOp {
    /// Create zone `zone` (config derived from the id, see
    /// [`zone_config_for`]).
    Create {
        /// Zone id.
        zone: u64,
    },
    /// Open session `session` in zone `zone`.
    Open {
        /// Zone id.
        zone: u64,
        /// Session id.
        session: u64,
    },
    /// Work in zone `zone` attributed to `session`.
    Work {
        /// Zone id.
        zone: u64,
        /// Session id.
        session: u64,
        /// Work units.
        amount: u32,
    },
    /// Evict `session` from zone `zone`.
    Evict {
        /// Zone id.
        zone: u64,
        /// Session id.
        session: u64,
    },
    /// Tear zone `zone` down (oracle checkpoint: its observables are
    /// compared against a private replay here).
    Teardown {
        /// Zone id.
        zone: u64,
    },
    /// Quiesce every live zone.
    Quiesce,
}

/// A full soak schedule: seed (for the artifact header) plus ops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoakSchedule {
    /// Generating seed.
    pub seed: u64,
    /// The operation sequence.
    pub ops: Vec<SoakOp>,
}

/// The zone configuration the soak derives from a zone id: the engine
/// rotates through [`Engine::MATRIX`], the workload alternates
/// typed/Scheme, and the trigger is small enough that even short
/// schedules collect.
pub fn zone_config_for(zone: u64) -> ZoneConfig {
    let engine = Engine::MATRIX[(zone % 3) as usize];
    let base = if zone.is_multiple_of(2) {
        ZoneConfig::typed()
    } else {
        ZoneConfig::scheme()
    };
    base.with_engine(engine).with_trigger_bytes(1 << 16)
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a randomized (but fully seed-determined) schedule of `nops`
/// operations touching up to `max_zones` concurrently live zones.
pub fn generate(seed: u64, nops: usize, max_zones: usize) -> SoakSchedule {
    assert!(max_zones > 0);
    let mut rng = SplitMix64(seed);
    let mut ops = Vec::with_capacity(nops);
    let mut live_zones: Vec<u64> = Vec::new();
    let mut sessions: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut next_zone = 0u64;
    let mut next_session = 0u64;
    while ops.len() < nops {
        let have_zones = !live_zones.is_empty();
        let roll = rng.below(100);
        let op = if !have_zones || (roll < 6 && live_zones.len() < max_zones) {
            let zone = next_zone;
            next_zone += 1;
            live_zones.push(zone);
            sessions.insert(zone, Vec::new());
            SoakOp::Create { zone }
        } else if roll < 30 {
            let zone = live_zones[rng.below(live_zones.len() as u64) as usize];
            let session = next_session;
            next_session += 1;
            sessions.get_mut(&zone).expect("zone live").push(session);
            SoakOp::Open { zone, session }
        } else if roll < 80 {
            let zone = live_zones[rng.below(live_zones.len() as u64) as usize];
            let open = &sessions[&zone];
            if open.is_empty() {
                continue;
            }
            let session = open[rng.below(open.len() as u64) as usize];
            let amount = 1 + rng.below(24) as u32;
            SoakOp::Work {
                zone,
                session,
                amount,
            }
        } else if roll < 94 {
            let zone = live_zones[rng.below(live_zones.len() as u64) as usize];
            let open = sessions.get_mut(&zone).expect("zone live");
            if open.is_empty() {
                continue;
            }
            let session = open.swap_remove(rng.below(open.len() as u64) as usize);
            SoakOp::Evict { zone, session }
        } else if roll < 97 && live_zones.len() > 1 {
            let i = rng.below(live_zones.len() as u64) as usize;
            let zone = live_zones.swap_remove(i);
            sessions.remove(&zone);
            SoakOp::Teardown { zone }
        } else {
            SoakOp::Quiesce
        };
        ops.push(op);
    }
    SoakSchedule { seed, ops }
}

/// Statistics from a passing soak run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SoakStats {
    /// Ops applied (including skipped no-ops).
    pub ops: u64,
    /// Zones created.
    pub zones_created: u64,
    /// Zones torn down (each one an oracle checkpoint that passed).
    pub zones_checked: u64,
    /// Requests dispatched into zones.
    pub requests: u64,
    /// Sessions reclaimed through guardians, fleet-wide.
    pub reclaimed: u64,
}

/// A soak divergence: the shared-pool fleet run and the private replay
/// disagreed, or an invariant failed.
#[derive(Clone, Debug)]
pub struct SoakFailure {
    /// Generating seed.
    pub seed: u64,
    /// Index of the op at which the failure surfaced.
    pub op_index: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SoakFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soak seed={} diverged at op {}: {}",
            self.seed, self.op_index, self.message
        )
    }
}

impl std::error::Error for SoakFailure {}

/// Replays one zone's op subsequence on a private (non-pooled) zone and
/// returns its final observables after the same quiesce the fleet side
/// performs at teardown.
fn replay_private(zone_id: u64, ops: &[SoakOp]) -> ZoneObservables {
    let config = zone_config_for(zone_id);
    let mut zone = Zone::new(zone_id, &config);
    for op in ops {
        match *op {
            SoakOp::Open { session, .. } => zone.dispatch(Request::Open { session }),
            SoakOp::Work {
                session, amount, ..
            } => zone.dispatch(Request::Work { session, amount }),
            SoakOp::Evict { session, .. } => zone.dispatch(Request::Evict { session }),
            SoakOp::Quiesce => zone.quiesce(),
            SoakOp::Create { .. } | SoakOp::Teardown { .. } => {}
        }
    }
    zone.quiesce();
    zone.observables()
}

/// Runs a schedule on a shared-pool fleet with the private-replay oracle
/// at every teardown (and for every zone still live at the end), plus
/// heap verification at each quiesce and pool accounting at exit.
///
/// Ops referencing dead zones or sessions are counted but skipped, so
/// shrunk subsequences are always runnable.
///
/// # Errors
///
/// Returns the first [`SoakFailure`] (oracle divergence, heap
/// verification failure, or leaked pool segments).
pub fn run_schedule(schedule: &SoakSchedule) -> Result<SoakStats, SoakFailure> {
    let mut mgr = ZoneManager::new();
    let mut per_zone: BTreeMap<u64, Vec<SoakOp>> = BTreeMap::new();
    let mut stats = SoakStats::default();
    let fail = |i: usize, message: String| SoakFailure {
        seed: schedule.seed,
        op_index: i,
        message,
    };
    let check_zone = |i: usize,
                      zone_id: u64,
                      got: &ZoneObservables,
                      ops: &[SoakOp]|
     -> Result<(), SoakFailure> {
        let want = replay_private(zone_id, ops);
        if *got != want {
            return Err(fail(
                i,
                format!(
                    "zone {zone_id} shared-pool observables diverge from private replay\n\
                     shared:  {got:?}\nprivate: {want:?}"
                ),
            ));
        }
        Ok(())
    };
    for (i, op) in schedule.ops.iter().enumerate() {
        stats.ops += 1;
        match *op {
            SoakOp::Create { zone } => {
                if mgr.zone(zone).is_none() {
                    mgr.create_zone(zone, &zone_config_for(zone));
                    per_zone.insert(zone, Vec::new());
                    stats.zones_created += 1;
                }
            }
            SoakOp::Open { zone, session } => {
                if mgr.zone(zone).is_some() {
                    mgr.dispatch(zone, Request::Open { session });
                    per_zone.get_mut(&zone).expect("tracked").push(*op);
                    stats.requests += 1;
                }
            }
            SoakOp::Work {
                zone,
                session,
                amount,
            } => {
                if mgr.zone(zone).is_some() {
                    mgr.dispatch(zone, Request::Work { session, amount });
                    per_zone.get_mut(&zone).expect("tracked").push(*op);
                    stats.requests += 1;
                }
            }
            SoakOp::Evict { zone, session } => {
                if mgr.zone(zone).is_some() {
                    mgr.dispatch(zone, Request::Evict { session });
                    per_zone.get_mut(&zone).expect("tracked").push(*op);
                    stats.requests += 1;
                }
            }
            SoakOp::Teardown { zone } => {
                if mgr.zone(zone).is_some() {
                    let snap = mgr.teardown_zone(zone).expect("zone live");
                    let ops = per_zone.remove(&zone).expect("tracked");
                    check_zone(i, zone, &snap.obs, &ops)?;
                    stats.zones_checked += 1;
                    stats.reclaimed += snap.obs.reclaimed_sessions;
                }
            }
            SoakOp::Quiesce => {
                mgr.quiesce();
                for id in mgr.zone_ids() {
                    per_zone
                        .get_mut(&id)
                        .expect("tracked")
                        .push(SoakOp::Quiesce);
                    if let Err(e) = mgr.zone(id).expect("live").verify() {
                        return Err(fail(i, format!("zone {id} failed verify: {e}")));
                    }
                }
            }
        }
    }
    let last = schedule.ops.len();
    for id in mgr.zone_ids() {
        let snap = mgr.teardown_zone(id).expect("zone live");
        let ops = per_zone.remove(&id).expect("tracked");
        check_zone(last, id, &snap.obs, &ops)?;
        stats.zones_checked += 1;
        stats.reclaimed += snap.obs.reclaimed_sessions;
    }
    let pool = mgr.pool_stats();
    if pool.outstanding != 0 || pool.attached_tables != 0 {
        return Err(fail(
            last,
            format!(
                "pool leaked after full teardown: {} segments outstanding, {} tables attached",
                pool.outstanding, pool.attached_tables
            ),
        ));
    }
    Ok(stats)
}

/// Generates and runs one soak seed: the unit of the nightly campaign.
///
/// # Errors
///
/// Propagates [`run_schedule`]'s failure.
pub fn check_seed(seed: u64, nops: usize, max_zones: usize) -> Result<SoakStats, SoakFailure> {
    run_schedule(&generate(seed, nops, max_zones))
}

impl SoakSchedule {
    /// Renders the schedule as a line-oriented text artifact (the
    /// fail-out format nightly CI uploads; [`SoakSchedule::from_text`]
    /// parses it back).
    pub fn to_text(&self) -> String {
        let mut out = format!("soak-schedule seed={}\n", self.seed);
        for op in &self.ops {
            let line = match *op {
                SoakOp::Create { zone } => format!("create {zone}"),
                SoakOp::Open { zone, session } => format!("open {zone} {session}"),
                SoakOp::Work {
                    zone,
                    session,
                    amount,
                } => format!("work {zone} {session} {amount}"),
                SoakOp::Evict { zone, session } => format!("evict {zone} {session}"),
                SoakOp::Teardown { zone } => format!("teardown {zone}"),
                SoakOp::Quiesce => "quiesce".to_string(),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses [`SoakSchedule::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<SoakSchedule, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty schedule")?;
        let seed = header
            .strip_prefix("soak-schedule seed=")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| format!("bad header: {header:?}"))?;
        let mut ops = Vec::new();
        for line in lines {
            let mut w = line.split_whitespace();
            let kind = w.next().ok_or_else(|| format!("bad line: {line:?}"))?;
            let mut num = |what: &str| -> Result<u64, String> {
                w.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad {what} in line: {line:?}"))
            };
            let op = match kind {
                "create" => SoakOp::Create { zone: num("zone")? },
                "open" => SoakOp::Open {
                    zone: num("zone")?,
                    session: num("session")?,
                },
                "work" => SoakOp::Work {
                    zone: num("zone")?,
                    session: num("session")?,
                    amount: num("amount")? as u32,
                },
                "evict" => SoakOp::Evict {
                    zone: num("zone")?,
                    session: num("session")?,
                },
                "teardown" => SoakOp::Teardown { zone: num("zone")? },
                "quiesce" => SoakOp::Quiesce,
                other => return Err(format!("unknown op {other:?}")),
            };
            ops.push(op);
        }
        Ok(SoakSchedule { seed, ops })
    }
}

/// True when the schedule mixes both workload kinds across its created
/// zones (used by tests to confirm the derived configs cover the matrix).
pub fn covers_both_workloads(schedule: &SoakSchedule) -> bool {
    let mut typed = false;
    let mut scheme = false;
    for op in &schedule.ops {
        if let SoakOp::Create { zone } = op {
            match zone_config_for(*zone).workload {
                WorkloadKind::Typed => typed = true,
                WorkloadKind::Scheme => scheme = true,
            }
        }
    }
    typed && scheme
}
