//! Fleet roll-up: aggregates per-zone snapshots and shared-pool
//! accounting into one deterministic JSON document (the `fleet_stats`
//! export consumed by gcprof and experiment E21).

use crate::zone::ZoneSnapshot;
use guardians_gc::PoolStats;

/// Fleet-wide aggregate over a set of zone snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Zones summarized.
    pub zones: u64,
    /// Total requests dispatched.
    pub requests: u64,
    /// Total sessions opened.
    pub sessions_opened: u64,
    /// Total sessions evicted.
    pub sessions_evicted: u64,
    /// Total sessions whose resources the guardian path reclaimed.
    pub reclaimed_sessions: u64,
    /// Total fds closed by reclamation.
    pub fds_closed: u64,
    /// Total arena blocks freed by reclamation.
    pub blocks_freed: u64,
    /// Sessions still live across the fleet.
    pub live_sessions: u64,
    /// Fds still open across the fleet.
    pub open_fds: u64,
    /// Arena blocks still live across the fleet.
    pub ext_live_blocks: u64,
    /// Total collections across all zone heaps.
    pub collections: u64,
    /// Total words allocated across all zone heaps.
    pub words_allocated: u64,
    /// Worst per-zone pause p99 (ns) — the fleet's tail-latency figure.
    pub worst_pause_p99_ns: u64,
    /// Worst per-zone pause max (ns).
    pub worst_pause_max_ns: u64,
    /// Segments held across all zone heaps.
    pub segments: u64,
    /// Live words across all zone heaps (census).
    pub live_words: u64,
}

impl FleetStats {
    /// Aggregates `snaps` (any order; the result is order-independent).
    pub fn aggregate(snaps: &[ZoneSnapshot]) -> FleetStats {
        let mut f = FleetStats {
            zones: snaps.len() as u64,
            ..FleetStats::default()
        };
        for s in snaps {
            f.requests += s.obs.requests;
            f.sessions_opened += s.obs.sessions_opened;
            f.sessions_evicted += s.obs.sessions_evicted;
            f.reclaimed_sessions += s.obs.reclaimed_sessions;
            f.fds_closed += s.obs.fds_closed;
            f.blocks_freed += s.obs.blocks_freed;
            f.live_sessions += s.obs.live_sessions;
            f.open_fds += s.obs.open_fds;
            f.ext_live_blocks += s.obs.ext_live_blocks;
            f.collections += s.obs.collections;
            f.words_allocated += s.obs.words_allocated;
            f.worst_pause_p99_ns = f.worst_pause_p99_ns.max(s.pause_p99_ns);
            f.worst_pause_max_ns = f.worst_pause_max_ns.max(s.pause_max_ns);
            f.segments += s.segments;
            f.live_words += s.live_words;
        }
        f
    }
}

/// Renders the full fleet document: a `fleet` aggregate object, a
/// `pool` accounting object, and a `zones` array of per-zone snapshots
/// sorted by zone id. `elapsed_ns` (wall-clock for the run, 0 if not
/// timed) yields the `requests_per_sec` throughput figure.
pub fn fleet_stats_json(snaps: &[ZoneSnapshot], pool: &PoolStats, elapsed_ns: u64) -> String {
    let mut snaps: Vec<&ZoneSnapshot> = snaps.iter().collect();
    snaps.sort_by_key(|s| s.zone);
    let f = FleetStats::aggregate(&snaps.iter().map(|s| (*s).clone()).collect::<Vec<_>>());
    let throughput = if elapsed_ns == 0 {
        0.0
    } else {
        f.requests as f64 * 1e9 / elapsed_ns as f64
    };
    let capacity = match pool.capacity {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    let zones: Vec<String> = snaps.iter().map(|s| s.to_json()).collect();
    format!(
        "{{\n  \"fleet\": {{\"zones\":{},\"requests\":{},\"requests_per_sec\":{:.1},\
         \"sessions_opened\":{},\"sessions_evicted\":{},\"reclaimed_sessions\":{},\
         \"fds_closed\":{},\"blocks_freed\":{},\"live_sessions\":{},\"open_fds\":{},\
         \"ext_live_blocks\":{},\"collections\":{},\"words_allocated\":{},\
         \"worst_pause_p99_ns\":{},\"worst_pause_max_ns\":{},\"segments\":{},\
         \"live_words\":{},\"elapsed_ns\":{}}},\n  \"pool\": {{\"capacity\":{},\
         \"outstanding\":{},\"free\":{},\"peak_outstanding\":{},\"acquires\":{},\
         \"releases\":{},\"attached_tables\":{}}},\n  \"zones\": [\n    {}\n  ]\n}}",
        f.zones,
        f.requests,
        throughput,
        f.sessions_opened,
        f.sessions_evicted,
        f.reclaimed_sessions,
        f.fds_closed,
        f.blocks_freed,
        f.live_sessions,
        f.open_fds,
        f.ext_live_blocks,
        f.collections,
        f.words_allocated,
        f.worst_pause_p99_ns,
        f.worst_pause_max_ns,
        f.segments,
        f.live_words,
        elapsed_ns,
        capacity,
        pool.outstanding,
        pool.free,
        pool.peak_outstanding,
        pool.acquires,
        pool.releases,
        pool.attached_tables,
        zones.join(",\n    "),
    )
}
