//! Multi-tenant heap zones over a shared segment pool.
//!
//! A *zone* ([`Zone`]) is one tenant's isolated world: its own
//! [`Heap`](guardians_gc::Heap) (generations, guardians, metrics, census),
//! its own simulated OS fd table and external arena — while every zone's
//! heap draws segment *capacity* from one shared
//! [`SegmentPool`](guardians_gc::SegmentPool). Scarcity is shared;
//! everything observable is not: a zone's request-level observables are
//! byte-identical whether its heap is private or pooled, whichever
//! collector engine runs it, and whether it runs alone or among a fleet.
//!
//! Tenant sessions hold real external resources (an fd, an arena block).
//! Eviction just drops the session's root; the zone's guardian proves the
//! session dead at a later collection and only then does the zone close
//! the fd and free the block — the paper's program-controlled
//! finalization doing fleet resource reclamation.
//!
//! [`ZoneManager`] runs a fleet single-threaded; [`ZoneRouter`] is the
//! thread-per-core front end (zones pinned to workers, requests over
//! per-worker FIFO channels — heaps are `!Send` and never migrate).
//! [`fleet_stats_json`] rolls per-zone snapshots and pool accounting into
//! one JSON document; [`soak`] is the randomized create/dispatch/evict
//! campaign with a private-replay oracle, used by nightly CI.
//!
//! Lock order: the segment pool's mutex is a leaf — it is only taken
//! inside `SegmentPool` methods, which never call back into any heap or
//! table, so zone code may hold no lock while allocating and the
//! router's workers cannot deadlock through the pool.

#![warn(missing_docs)]

pub mod fleet;
pub mod manager;
pub mod router;
pub mod soak;
pub mod zone;

pub use fleet::{fleet_stats_json, FleetStats};
pub use manager::ZoneManager;
pub use router::{session_zone, ZoneRouter};
pub use zone::{
    Engine, Request, Session, WorkloadKind, Zone, ZoneConfig, ZoneObservables, ZoneSnapshot,
};
