//! Primitive procedures.
//!
//! The set covers everything the paper's code uses (`cons`, `weak-cons`,
//! `make-guardian`, `assq`, `remq`, vectors, ports, `collect`, …) plus
//! enough of R7RS-small to write realistic programs.

use crate::error::{err, SResult};
use crate::interp::Interp;
use guardians_gc::{Heap, Value};
use guardians_runtime::lists;
use guardians_runtime::ports;
use guardians_runtime::printer::{display_value, write_value};
use guardians_runtime::rtags;

/// The signature every primitive implements.
pub(crate) type PrimFn = fn(&mut Interp, &[Value]) -> SResult<Value>;

/// Registry entry for a primitive.
pub(crate) struct PrimEntry {
    pub name: &'static str,
    pub func: PrimFn,
    pub min_args: usize,
    pub max_args: Option<usize>,
}

macro_rules! prims {
    ($(($name:literal, $func:expr, $min:expr, $max:expr)),* $(,)?) => {
        &[$(PrimEntry { name: $name, func: $func, min_args: $min, max_args: $max }),*]
    };
}

fn table() -> &'static [PrimEntry] {
    prims![
        // Pairs and lists
        ("cons", p_cons, 2, Some(2)),
        ("car", p_car, 1, Some(1)),
        ("cdr", p_cdr, 1, Some(1)),
        ("set-car!", p_set_car, 2, Some(2)),
        ("set-cdr!", p_set_cdr, 2, Some(2)),
        ("pair?", p_is_pair, 1, Some(1)),
        ("null?", p_is_null, 1, Some(1)),
        ("list", p_list, 0, None),
        ("length", p_length, 1, Some(1)),
        ("reverse", p_reverse, 1, Some(1)),
        ("append", p_append, 0, None),
        ("memq", p_memq, 2, Some(2)),
        ("memv", p_memv, 2, Some(2)),
        ("member", p_member, 2, Some(2)),
        ("assq", p_assq, 2, Some(2)),
        ("assv", p_assv, 2, Some(2)),
        ("assoc", p_assoc, 2, Some(2)),
        ("remq", p_remq, 2, Some(2)),
        ("list-ref", p_list_ref, 2, Some(2)),
        ("list-tail", p_list_tail, 2, Some(2)),
        ("list?", p_is_list, 1, Some(1)),
        ("caar", p_caar, 1, Some(1)),
        ("cadr", p_cadr, 1, Some(1)),
        ("cdar", p_cdar, 1, Some(1)),
        ("cddr", p_cddr, 1, Some(1)),
        ("caddr", p_caddr, 1, Some(1)),
        ("map", p_map, 2, None),
        ("for-each", p_for_each, 2, None),
        // Weak pairs
        ("weak-cons", p_weak_cons, 2, Some(2)),
        ("weak-pair?", p_is_weak_pair, 1, Some(1)),
        // Guardians and GC
        ("make-guardian", p_make_guardian, 0, Some(0)),
        ("guardian?", p_is_guardian, 1, Some(1)),
        ("collect", p_collect, 0, Some(1)),
        (
            "collect-request-handler",
            p_collect_request_handler,
            1,
            Some(1)
        ),
        ("collection-count", p_collection_count, 0, Some(0)),
        ("generation-of", p_generation_of, 1, Some(1)),
        // Numbers
        ("+", p_add, 0, None),
        ("-", p_sub, 1, None),
        ("*", p_mul, 0, None),
        ("=", p_num_eq, 2, None),
        ("<", p_lt, 2, None),
        (">", p_gt, 2, None),
        ("<=", p_le, 2, None),
        (">=", p_ge, 2, None),
        ("quotient", p_quotient, 2, Some(2)),
        ("remainder", p_remainder, 2, Some(2)),
        ("modulo", p_modulo, 2, Some(2)),
        ("zero?", p_is_zero, 1, Some(1)),
        ("even?", p_is_even, 1, Some(1)),
        ("odd?", p_is_odd, 1, Some(1)),
        ("number?", p_is_number, 1, Some(1)),
        ("abs", p_abs, 1, Some(1)),
        ("min", p_min, 1, None),
        ("max", p_max, 1, None),
        // Predicates
        ("eq?", p_eq, 2, Some(2)),
        ("eqv?", p_eqv, 2, Some(2)),
        ("equal?", p_equal, 2, Some(2)),
        ("not", p_not, 1, Some(1)),
        ("boolean?", p_is_boolean, 1, Some(1)),
        ("symbol?", p_is_symbol, 1, Some(1)),
        ("string?", p_is_string, 1, Some(1)),
        ("char?", p_is_char, 1, Some(1)),
        ("vector?", p_is_vector, 1, Some(1)),
        ("procedure?", p_is_procedure, 1, Some(1)),
        ("box?", p_is_box, 1, Some(1)),
        // Vectors
        ("make-vector", p_make_vector, 1, Some(2)),
        ("vector", p_vector, 0, None),
        ("vector-ref", p_vector_ref, 2, Some(2)),
        ("vector-set!", p_vector_set, 3, Some(3)),
        ("vector-length", p_vector_length, 1, Some(1)),
        // Strings, symbols, chars
        ("string-length", p_string_length, 1, Some(1)),
        ("string-append", p_string_append, 0, None),
        ("substring", p_substring, 3, Some(3)),
        ("string=?", p_string_eq, 2, Some(2)),
        ("string<?", p_string_lt, 2, Some(2)),
        ("char=?", p_char_eq, 2, Some(2)),
        ("vector->list", p_vector_to_list, 1, Some(1)),
        ("list->vector", p_list_to_vector, 1, Some(1)),
        ("symbol->string", p_symbol_to_string, 1, Some(1)),
        ("string->symbol", p_string_to_symbol, 1, Some(1)),
        ("number->string", p_number_to_string, 1, Some(1)),
        ("char->integer", p_char_to_integer, 1, Some(1)),
        ("integer->char", p_integer_to_char, 1, Some(1)),
        ("gensym", p_gensym, 0, Some(0)),
        ("string-hash", p_string_hash, 1, Some(1)),
        ("equal-hash", p_equal_hash, 1, Some(1)),
        // Records (used by the define-record-type expansion)
        ("%fresh-symbol", p_fresh_symbol, 1, Some(1)),
        ("%make-record", p_make_record, 1, None),
        ("%record-of-type?", p_record_of_type, 2, Some(2)),
        ("%record-ref", p_record_ref, 3, Some(3)),
        ("%record-set!", p_record_set, 4, Some(4)),
        // Boxes
        ("box", p_box, 1, Some(1)),
        ("unbox", p_unbox, 1, Some(1)),
        ("set-box!", p_set_box, 2, Some(2)),
        // I/O
        ("open-input-file", p_open_input_file, 1, Some(1)),
        ("open-output-file", p_open_output_file, 1, Some(1)),
        ("close-input-port", p_close_port, 1, Some(1)),
        ("close-output-port", p_close_port, 1, Some(1)),
        ("close-port", p_close_port, 1, Some(1)),
        ("flush-output-port", p_flush_output_port, 1, Some(1)),
        ("read-char", p_read_char, 1, Some(1)),
        ("write-char", p_write_char, 2, Some(2)),
        ("write-string", p_write_string, 2, Some(2)),
        ("port?", p_is_port, 1, Some(1)),
        ("input-port?", p_is_input_port, 1, Some(1)),
        ("output-port?", p_is_output_port, 1, Some(1)),
        ("port-open?", p_is_port_open, 1, Some(1)),
        ("eof-object?", p_is_eof, 1, Some(1)),
        ("eof-object", p_eof_object, 0, Some(0)),
        ("file-exists?", p_file_exists, 1, Some(1)),
        ("delete-file", p_delete_file, 1, Some(1)),
        ("display", p_display, 1, Some(2)),
        ("write", p_write, 1, Some(2)),
        ("newline", p_newline, 0, Some(1)),
        // Control
        ("apply", p_apply, 2, None),
        ("error", p_error, 1, None),
        ("void", p_void, 0, Some(0)),
    ]
}

/// Installs every primitive into the interpreter's global environment.
pub(crate) fn register_all(interp: &mut Interp) {
    for (index, entry) in table().iter().enumerate() {
        let name_v = interp.heap.make_string(entry.name);
        let rec = interp
            .heap
            .make_record(rtags::primitive(), &[Value::fixnum(index as i64), name_v]);
        let sym = interp.symbols.intern(&mut interp.heap, entry.name);
        interp.define_global(sym, rec);
        interp.prims.push(PrimEntry { ..*entry });
    }
}

impl Clone for PrimEntry {
    fn clone(&self) -> Self {
        PrimEntry { ..*self }
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

fn want_pair(heap: &Heap, v: Value, who: &str) -> SResult<Value> {
    if heap.is_pair(v) {
        Ok(v)
    } else {
        err(format!("{who}: not a pair: {}", write_value(heap, v)))
    }
}

fn want_fixnum(v: Value, who: &str) -> SResult<i64> {
    if v.is_fixnum() {
        Ok(v.as_fixnum())
    } else {
        err(format!("{who}: not an integer"))
    }
}

fn want_string(heap: &Heap, v: Value, who: &str) -> SResult<String> {
    if heap.is_string(v) {
        Ok(heap.string_value(v))
    } else {
        err(format!("{who}: not a string: {}", write_value(heap, v)))
    }
}

/// Type check only — read paths then borrow bytes via
/// [`Heap::string_bytes`] instead of copying into a `String`.
fn check_string(heap: &Heap, v: Value, who: &str) -> SResult<()> {
    if heap.is_string(v) {
        Ok(())
    } else {
        err(format!("{who}: not a string: {}", write_value(heap, v)))
    }
}

#[derive(Copy, Clone)]
enum Num {
    Fix(i64),
    Flo(f64),
}

fn want_num(heap: &Heap, v: Value, who: &str) -> SResult<Num> {
    if v.is_fixnum() {
        Ok(Num::Fix(v.as_fixnum()))
    } else if heap.is_flonum(v) {
        Ok(Num::Flo(heap.flonum_value(v)))
    } else {
        err(format!("{who}: not a number: {}", write_value(heap, v)))
    }
}

fn num_value(heap: &mut Heap, n: Num) -> Value {
    match n {
        Num::Fix(i) => Value::fixnum(i),
        Num::Flo(f) => heap.make_flonum(f),
    }
}

fn as_f64(n: Num) -> f64 {
    match n {
        Num::Fix(i) => i as f64,
        Num::Flo(f) => f,
    }
}

fn fold_nums(
    it: &mut Interp,
    args: &[Value],
    who: &str,
    init: Num,
    fix: fn(i64, i64) -> Option<i64>,
    flo: fn(f64, f64) -> f64,
) -> SResult<Value> {
    let mut acc = init;
    for &a in args {
        let n = want_num(&it.heap, a, who)?;
        acc = match (acc, n) {
            (Num::Fix(x), Num::Fix(y)) => match fix(x, y) {
                Some(z) => Num::Fix(z),
                None => Num::Flo(flo(x as f64, y as f64)),
            },
            (x, y) => Num::Flo(flo(as_f64(x), as_f64(y))),
        };
    }
    Ok(num_value(&mut it.heap, acc))
}

fn compare_chain(
    it: &Interp,
    args: &[Value],
    who: &str,
    ok: fn(f64, f64) -> bool,
) -> SResult<Value> {
    for w in args.windows(2) {
        let a = as_f64(want_num(&it.heap, w[0], who)?);
        let b = as_f64(want_num(&it.heap, w[1], who)?);
        if !ok(a, b) {
            return Ok(Value::FALSE);
        }
    }
    Ok(Value::TRUE)
}

// ----------------------------------------------------------------------
// Pairs and lists
// ----------------------------------------------------------------------

fn p_cons(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(it.heap.cons(a[0], a[1]))
}

fn p_car(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_pair(&it.heap, a[0], "car")?;
    Ok(it.heap.car(a[0]))
}

fn p_cdr(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_pair(&it.heap, a[0], "cdr")?;
    Ok(it.heap.cdr(a[0]))
}

fn p_set_car(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_pair(&it.heap, a[0], "set-car!")?;
    it.heap.set_car(a[0], a[1]);
    Ok(Value::VOID)
}

fn p_set_cdr(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_pair(&it.heap, a[0], "set-cdr!")?;
    it.heap.set_cdr(a[0], a[1]);
    Ok(Value::VOID)
}

fn p_is_pair(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.is_pair(a[0])))
}

fn p_is_null(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0].is_nil()))
}

fn p_list(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(lists::list(&mut it.heap, a))
}

fn p_length(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut n = 0i64;
    let mut cur = a[0];
    while !cur.is_nil() {
        want_pair(&it.heap, cur, "length")?;
        n += 1;
        cur = it.heap.cdr(cur);
    }
    Ok(Value::fixnum(n))
}

fn p_reverse(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(lists::reverse(&mut it.heap, a[0]))
}

fn p_append(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut out = *a.last().unwrap_or(&Value::NIL);
    for &l in a[..a.len().saturating_sub(1)].iter().rev() {
        out = lists::append(&mut it.heap, l, out);
    }
    Ok(out)
}

fn p_memq(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(lists::memq(&it.heap, a[0], a[1]))
}

fn p_assq(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(lists::assq(&it.heap, a[0], a[1]))
}

fn p_remq(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(lists::remq(&mut it.heap, a[0], a[1]))
}

fn p_list_ref(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let n = want_fixnum(a[1], "list-ref")?;
    let mut cur = a[0];
    for _ in 0..n {
        want_pair(&it.heap, cur, "list-ref")?;
        cur = it.heap.cdr(cur);
    }
    want_pair(&it.heap, cur, "list-ref")?;
    Ok(it.heap.car(cur))
}

fn p_memv(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut ls = a[1];
    while !ls.is_nil() {
        if it.heap.eqv(it.heap.car(ls), a[0]) {
            return Ok(ls);
        }
        ls = it.heap.cdr(ls);
    }
    Ok(Value::FALSE)
}

fn p_member(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut ls = a[1];
    while !ls.is_nil() {
        if equal_rec(&it.heap, it.heap.car(ls), a[0], 0) {
            return Ok(ls);
        }
        ls = it.heap.cdr(ls);
    }
    Ok(Value::FALSE)
}

fn assoc_by(
    it: &Interp,
    key: Value,
    mut ls: Value,
    pred: impl Fn(&Heap, Value, Value) -> bool,
) -> Value {
    while !ls.is_nil() {
        let entry = it.heap.car(ls);
        if it.heap.is_pair(entry) && pred(&it.heap, it.heap.car(entry), key) {
            return entry;
        }
        ls = it.heap.cdr(ls);
    }
    Value::FALSE
}

fn p_assv(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(assoc_by(it, a[0], a[1], |h, x, y| h.eqv(x, y)))
}

fn p_assoc(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(assoc_by(it, a[0], a[1], |h, x, y| equal_rec(h, x, y, 0)))
}

fn p_list_tail(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let n = want_fixnum(a[1], "list-tail")?;
    let mut cur = a[0];
    for _ in 0..n {
        want_pair(&it.heap, cur, "list-tail")?;
        cur = it.heap.cdr(cur);
    }
    Ok(cur)
}

fn p_is_list(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    // Proper-list check with a cycle guard (tortoise and hare).
    let mut slow = a[0];
    let mut fast = a[0];
    loop {
        if fast.is_nil() {
            return Ok(Value::TRUE);
        }
        if !it.heap.is_pair(fast) {
            return Ok(Value::FALSE);
        }
        fast = it.heap.cdr(fast);
        if fast.is_nil() {
            return Ok(Value::TRUE);
        }
        if !it.heap.is_pair(fast) {
            return Ok(Value::FALSE);
        }
        fast = it.heap.cdr(fast);
        slow = it.heap.cdr(slow);
        if slow == fast {
            return Ok(Value::FALSE); // cyclic
        }
    }
}

fn cxr(it: &Interp, v: Value, path: &[char], who: &str) -> SResult<Value> {
    let mut cur = v;
    for c in path.iter().rev() {
        want_pair(&it.heap, cur, who)?;
        cur = if *c == 'a' {
            it.heap.car(cur)
        } else {
            it.heap.cdr(cur)
        };
    }
    Ok(cur)
}

fn p_caar(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    cxr(it, a[0], &['a', 'a'], "caar")
}

fn p_cadr(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    cxr(it, a[0], &['a', 'd'], "cadr")
}

fn p_cdar(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    cxr(it, a[0], &['d', 'a'], "cdar")
}

fn p_cddr(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    cxr(it, a[0], &['d', 'd'], "cddr")
}

fn p_caddr(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    cxr(it, a[0], &['a', 'd', 'd'], "caddr")
}

/// Shared walker for `map`/`for-each`: applies `f` across parallel lists
/// until the shortest is exhausted; collects results when `collect`.
fn map_walk(it: &mut Interp, a: &[Value], collect: bool, who: &str) -> SResult<Value> {
    let f = a[0];
    // Roots: the procedure, the current list tails, and collected results
    // all live on the interpreter's rooted stack via this helper vector.
    let tails = it.heap.make_vector(a.len() - 1, Value::NIL);
    for (i, l) in a[1..].iter().enumerate() {
        it.heap.vector_set(tails, i, *l);
    }
    let state = it.heap.cons(f, tails); // (f . tails)
    let results_cell = it.heap.make_box(Value::NIL);
    let root = it.heap.root(state);
    let results_root = it.heap.root(results_cell);
    loop {
        let state = root.get();
        let tails = it.heap.cdr(state);
        let n = it.heap.vector_len(tails);
        let mut args = Vec::with_capacity(n);
        let mut done = false;
        for i in 0..n {
            let t = it.heap.vector_ref(tails, i);
            if !it.heap.is_pair(t) {
                if !t.is_nil() {
                    return err(format!("{who}: improper list"));
                }
                done = true;
                break;
            }
            args.push(it.heap.car(t));
        }
        if done {
            break;
        }
        // Advance the tails before applying (apply may collect; the
        // vector is rooted via `state`).
        for i in 0..n {
            let t = it.heap.vector_ref(tails, i);
            let next = it.heap.cdr(t);
            it.heap.vector_set(tails, i, next);
        }
        let f = it.heap.car(root.get());
        let v = it.apply(f, &args)?;
        if collect {
            let results = results_root.get();
            let acc = it.heap.box_ref(results);
            let cell = it.heap.cons(v, acc);
            let results = results_root.get();
            it.heap.box_set(results, cell);
        }
    }
    if collect {
        let acc = it.heap.box_ref(results_root.get());
        Ok(guardians_runtime::lists::reverse(&mut it.heap, acc))
    } else {
        Ok(Value::VOID)
    }
}

fn p_map(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    map_walk(it, a, true, "map")
}

fn p_for_each(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    map_walk(it, a, false, "for-each")
}

// ----------------------------------------------------------------------
// Weak pairs, guardians, GC
// ----------------------------------------------------------------------

fn p_weak_cons(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(it.heap.weak_cons(a[0], a[1]))
}

fn p_is_weak_pair(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.is_weak_pair(a[0])))
}

fn p_make_guardian(it: &mut Interp, _: &[Value]) -> SResult<Value> {
    let tconc = it.heap.make_tconc();
    Ok(it.heap.make_record(rtags::guardian(), &[tconc]))
}

fn p_is_guardian(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(
        it.heap.is_record(a[0]) && it.heap.record_descriptor(a[0]) == rtags::guardian(),
    ))
}

fn p_collect(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let gen = match a.first() {
        Some(v) => {
            let g = want_fixnum(*v, "collect")?;
            if g < 0 || g >= it.heap.config().generations as i64 {
                return err(format!("collect: no such generation: {g}"));
            }
            g as u8
        }
        None => it
            .heap
            .config()
            .generation_for_collection(it.heap.collection_count() + 1),
    };
    it.heap.collect(gen);
    Ok(Value::VOID)
}

fn p_collect_request_handler(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if a[0].is_false() {
        it.collect_handler = None;
    } else {
        it.collect_handler = Some(it.heap.root(a[0]));
    }
    Ok(Value::VOID)
}

fn p_collection_count(it: &mut Interp, _: &[Value]) -> SResult<Value> {
    Ok(Value::fixnum(it.heap.collection_count() as i64))
}

fn p_generation_of(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(match it.heap.generation_of(a[0]) {
        Some(g) => Value::fixnum(g as i64),
        None => Value::FALSE,
    })
}

// ----------------------------------------------------------------------
// Numbers
// ----------------------------------------------------------------------

fn p_add(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    fold_nums(it, a, "+", Num::Fix(0), i64::checked_add, |x, y| x + y)
}

fn p_mul(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    fold_nums(it, a, "*", Num::Fix(1), i64::checked_mul, |x, y| x * y)
}

fn p_sub(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if a.len() == 1 {
        return match want_num(&it.heap, a[0], "-")? {
            Num::Fix(i) => Ok(Value::fixnum(-i)),
            Num::Flo(f) => Ok(it.heap.make_flonum(-f)),
        };
    }
    let first = want_num(&it.heap, a[0], "-")?;
    let mut acc = first;
    for &v in &a[1..] {
        let n = want_num(&it.heap, v, "-")?;
        acc = match (acc, n) {
            (Num::Fix(x), Num::Fix(y)) => match x.checked_sub(y) {
                Some(z) => Num::Fix(z),
                None => Num::Flo(x as f64 - y as f64),
            },
            (x, y) => Num::Flo(as_f64(x) - as_f64(y)),
        };
    }
    Ok(num_value(&mut it.heap, acc))
}

fn p_num_eq(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    compare_chain(it, a, "=", |x, y| x == y)
}

fn p_lt(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    compare_chain(it, a, "<", |x, y| x < y)
}

fn p_gt(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    compare_chain(it, a, ">", |x, y| x > y)
}

fn p_le(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    compare_chain(it, a, "<=", |x, y| x <= y)
}

fn p_ge(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    compare_chain(it, a, ">=", |x, y| x >= y)
}

fn int2(it: &Interp, a: &[Value], who: &str) -> SResult<(i64, i64)> {
    let _ = it;
    let x = want_fixnum(a[0], who)?;
    let y = want_fixnum(a[1], who)?;
    if y == 0 {
        return err(format!("{who}: division by zero"));
    }
    Ok((x, y))
}

fn p_quotient(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let (x, y) = int2(it, a, "quotient")?;
    Ok(Value::fixnum(x / y))
}

fn p_remainder(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let (x, y) = int2(it, a, "remainder")?;
    Ok(Value::fixnum(x % y))
}

fn p_modulo(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let (x, y) = int2(it, a, "modulo")?;
    Ok(Value::fixnum(x.rem_euclid(y)))
}

fn p_is_zero(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(
        as_f64(want_num(&it.heap, a[0], "zero?")?) == 0.0,
    ))
}

fn p_is_even(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(want_fixnum(a[0], "even?")? % 2 == 0))
}

fn p_is_odd(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(want_fixnum(a[0], "odd?")? % 2 != 0))
}

fn p_is_number(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0].is_fixnum() || it.heap.is_flonum(a[0])))
}

fn p_abs(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    match want_num(&it.heap, a[0], "abs")? {
        Num::Fix(i) => Ok(Value::fixnum(i.abs())),
        Num::Flo(f) => Ok(it.heap.make_flonum(f.abs())),
    }
}

fn p_min(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut best = a[0];
    for &v in &a[1..] {
        if as_f64(want_num(&it.heap, v, "min")?) < as_f64(want_num(&it.heap, best, "min")?) {
            best = v;
        }
    }
    Ok(best)
}

fn p_max(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut best = a[0];
    for &v in &a[1..] {
        if as_f64(want_num(&it.heap, v, "max")?) > as_f64(want_num(&it.heap, best, "max")?) {
            best = v;
        }
    }
    Ok(best)
}

// ----------------------------------------------------------------------
// Predicates
// ----------------------------------------------------------------------

fn p_eq(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0] == a[1]))
}

fn p_eqv(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.eqv(a[0], a[1])))
}

fn equal_rec(heap: &Heap, a: Value, b: Value, depth: usize) -> bool {
    if a == b {
        return true;
    }
    if depth > 10_000 {
        return false; // cyclic-equality cutoff
    }
    if heap.is_pair(a) && heap.is_pair(b) {
        return equal_rec(heap, heap.car(a), heap.car(b), depth + 1)
            && equal_rec(heap, heap.cdr(a), heap.cdr(b), depth + 1);
    }
    if heap.is_string(a) && heap.is_string(b) {
        return heap.string_len(a) == heap.string_len(b)
            && heap.string_bytes(a).eq(heap.string_bytes(b));
    }
    if heap.is_flonum(a) && heap.is_flonum(b) {
        return heap.flonum_value(a).to_bits() == heap.flonum_value(b).to_bits();
    }
    if heap.is_vector(a) && heap.is_vector(b) {
        let n = heap.vector_len(a);
        if n != heap.vector_len(b) {
            return false;
        }
        return (0..n).all(|i| {
            equal_rec(
                heap,
                heap.vector_ref(a, i),
                heap.vector_ref(b, i),
                depth + 1,
            )
        });
    }
    false
}

fn p_equal(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(equal_rec(&it.heap, a[0], a[1], 0)))
}

fn p_not(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0].is_false()))
}

fn p_is_boolean(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0] == Value::TRUE || a[0] == Value::FALSE))
}

fn p_is_symbol(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.is_symbol(a[0])))
}

fn p_is_string(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.is_string(a[0])))
}

fn p_is_char(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0].as_char().is_some()))
}

fn p_is_vector(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.is_vector(a[0])))
}

fn p_is_procedure(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let v = a[0];
    let is_proc = it.heap.is_record(v) && {
        let d = it.heap.record_descriptor(v);
        d == rtags::closure()
            || d == rtags::compiled_closure()
            || d == rtags::primitive()
            || d == rtags::guardian()
    };
    Ok(Value::bool(is_proc))
}

fn p_is_box(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(it.heap.is_box(a[0])))
}

// ----------------------------------------------------------------------
// Vectors
// ----------------------------------------------------------------------

fn p_make_vector(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let n = want_fixnum(a[0], "make-vector")?;
    if n < 0 {
        return err("make-vector: negative length");
    }
    let fill = a.get(1).copied().unwrap_or(Value::NIL);
    Ok(it.heap.make_vector(n as usize, fill))
}

fn p_vector(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let v = it.heap.make_vector(a.len(), Value::NIL);
    for (i, x) in a.iter().enumerate() {
        it.heap.vector_set(v, i, *x);
    }
    Ok(v)
}

fn vec_index(it: &Interp, v: Value, i: Value, who: &str) -> SResult<usize> {
    if !it.heap.is_vector(v) {
        return err(format!("{who}: not a vector"));
    }
    let i = want_fixnum(i, who)?;
    if i < 0 || i as usize >= it.heap.vector_len(v) {
        return err(format!("{who}: index {i} out of range"));
    }
    Ok(i as usize)
}

fn p_vector_ref(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let i = vec_index(it, a[0], a[1], "vector-ref")?;
    Ok(it.heap.vector_ref(a[0], i))
}

fn p_vector_set(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let i = vec_index(it, a[0], a[1], "vector-set!")?;
    it.heap.vector_set(a[0], i, a[2]);
    Ok(Value::VOID)
}

fn p_vector_length(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if !it.heap.is_vector(a[0]) {
        return err("vector-length: not a vector");
    }
    Ok(Value::fixnum(it.heap.vector_len(a[0]) as i64))
}

// ----------------------------------------------------------------------
// Strings, symbols, chars
// ----------------------------------------------------------------------

fn p_string_length(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    check_string(&it.heap, a[0], "string-length")?;
    Ok(Value::fixnum(it.heap.string_char_count(a[0]) as i64))
}

fn p_string_append(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut out: Vec<u8> = Vec::new();
    for &v in a {
        check_string(&it.heap, v, "string-append")?;
        out.extend(it.heap.string_bytes(v));
    }
    let s = String::from_utf8(out).expect("heap strings are always valid UTF-8");
    Ok(it.heap.make_string(&s))
}

fn p_substring(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    check_string(&it.heap, a[0], "substring")?;
    let start = want_fixnum(a[1], "substring")? as usize;
    let end = want_fixnum(a[2], "substring")? as usize;
    if start > end {
        return err("substring: index out of range");
    }
    // One borrowed pass: keep the bytes of characters start..end, count
    // characters to bounds-check `end`. Only the result allocates.
    let mut out: Vec<u8> = Vec::new();
    let mut chars_seen = 0usize;
    for b in it.heap.string_bytes(a[0]) {
        if b & 0xC0 != 0x80 {
            chars_seen += 1;
        }
        if chars_seen > start && chars_seen <= end {
            out.push(b);
        }
    }
    if end > chars_seen {
        return err("substring: index out of range");
    }
    let sub = String::from_utf8(out).expect("heap strings are always valid UTF-8");
    Ok(it.heap.make_string(&sub))
}

fn p_string_eq(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    check_string(&it.heap, a[0], "string=?")?;
    check_string(&it.heap, a[1], "string=?")?;
    let same = it.heap.string_len(a[0]) == it.heap.string_len(a[1])
        && it.heap.string_bytes(a[0]).eq(it.heap.string_bytes(a[1]));
    Ok(Value::bool(same))
}

fn p_string_lt(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    check_string(&it.heap, a[0], "string<?")?;
    check_string(&it.heap, a[1], "string<?")?;
    Ok(Value::bool(
        it.heap.string_bytes(a[0]).lt(it.heap.string_bytes(a[1])),
    ))
}

fn p_char_eq(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    match (a[0].as_char(), a[1].as_char()) {
        (Some(x), Some(y)) => Ok(Value::bool(x == y)),
        _ => err("char=?: not characters"),
    }
}

fn p_vector_to_list(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if !it.heap.is_vector(a[0]) {
        return err("vector->list: not a vector");
    }
    let n = it.heap.vector_len(a[0]);
    let mut out = Value::NIL;
    for i in (0..n).rev() {
        let v = it.heap.vector_ref(a[0], i);
        out = it.heap.cons(v, out);
    }
    Ok(out)
}

fn p_list_to_vector(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let items = {
        let mut items = Vec::new();
        let mut cur = a[0];
        while !cur.is_nil() {
            want_pair(&it.heap, cur, "list->vector")?;
            items.push(it.heap.car(cur));
            cur = it.heap.cdr(cur);
        }
        items
    };
    let v = it.heap.make_vector(items.len(), Value::NIL);
    for (i, x) in items.into_iter().enumerate() {
        it.heap.vector_set(v, i, x);
    }
    Ok(v)
}

fn p_symbol_to_string(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if !it.heap.is_symbol(a[0]) {
        return err("symbol->string: not a symbol");
    }
    let name = it.heap.symbol_name(a[0]);
    Ok(it.heap.make_string(&name))
}

fn p_string_to_symbol(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let s = want_string(&it.heap, a[0], "string->symbol")?;
    Ok(it.symbols.intern(&mut it.heap, &s))
}

fn p_number_to_string(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let s = write_value(&it.heap, a[0]);
    if !a[0].is_fixnum() && !it.heap.is_flonum(a[0]) {
        return err("number->string: not a number");
    }
    Ok(it.heap.make_string(&s))
}

fn p_char_to_integer(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    match a[0].as_char() {
        Some(c) => Ok(Value::fixnum(c as i64)),
        None => err("char->integer: not a character"),
    }
}

fn p_integer_to_char(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    let n = want_fixnum(a[0], "integer->char")?;
    match u32::try_from(n).ok().and_then(char::from_u32) {
        Some(c) => Ok(Value::char(c)),
        None => err("integer->char: not a valid code point"),
    }
}

fn p_gensym(it: &mut Interp, _: &[Value]) -> SResult<Value> {
    it.gensym_counter += 1;
    let name = format!("g{}", it.gensym_counter);
    // Gensyms are uninterned: a fresh symbol object each time.
    Ok(it.heap.make_symbol(&name))
}

fn p_string_hash(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    check_string(&it.heap, a[0], "string-hash")?;
    let mut h: u64 = 0xcbf29ce484222325;
    for b in it.heap.string_bytes(a[0]) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    Ok(Value::fixnum((h % (1 << 60)) as i64))
}

fn p_equal_hash(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let h = guardians_runtime::hashtab::content_hash(&it.heap, a[0]);
    Ok(Value::fixnum((h % (1 << 60)) as i64))
}

// ----------------------------------------------------------------------
// Records
// ----------------------------------------------------------------------

fn p_make_record(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(it.heap.make_record(a[0], &a[1..]))
}

/// A fresh uninterned symbol with the given symbol's name — the staged
/// `define-record-type` expansion's eq-unique type descriptor (the naive
/// evaluator allocates the same fresh symbol directly).
fn p_fresh_symbol(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if !it.heap.is_symbol(a[0]) {
        return err("%fresh-symbol: expects a symbol");
    }
    let name = it.heap.symbol_name(a[0]);
    Ok(it.heap.make_symbol(&name))
}

fn p_record_of_type(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(
        it.heap.is_record(a[0]) && it.heap.record_descriptor(a[0]) == a[1],
    ))
}

fn record_field(it: &Interp, a: &[Value], who: &str) -> SResult<usize> {
    if !it.heap.is_record(a[0]) || it.heap.record_descriptor(a[0]) != a[1] {
        return err(format!("{who}: wrong record type"));
    }
    let idx = want_fixnum(a[2], who)?;
    if idx < 0 || idx as usize >= it.heap.record_len(a[0]) {
        return err(format!("{who}: field index out of range"));
    }
    Ok(idx as usize)
}

fn p_record_ref(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let idx = record_field(it, a, "record accessor")?;
    Ok(it.heap.record_ref(a[0], idx))
}

fn p_record_set(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let idx = record_field(it, a, "record mutator")?;
    it.heap.record_set(a[0], idx, a[3]);
    Ok(Value::VOID)
}

// ----------------------------------------------------------------------
// Boxes
// ----------------------------------------------------------------------

fn p_box(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(it.heap.make_box(a[0]))
}

fn p_unbox(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if !it.heap.is_box(a[0]) {
        return err("unbox: not a box");
    }
    Ok(it.heap.box_ref(a[0]))
}

fn p_set_box(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    if !it.heap.is_box(a[0]) {
        return err("set-box!: not a box");
    }
    it.heap.box_set(a[0], a[1]);
    Ok(Value::VOID)
}

// ----------------------------------------------------------------------
// I/O
// ----------------------------------------------------------------------

fn os_err(e: guardians_runtime::simos::OsError) -> crate::error::SchemeError {
    crate::error::SchemeError::new(e.to_string())
}

fn p_open_input_file(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let path = want_string(&it.heap, a[0], "open-input-file")?;
    ports::open_input_port(&mut it.heap, &mut it.os, &path).map_err(os_err)
}

fn p_open_output_file(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let path = want_string(&it.heap, a[0], "open-output-file")?;
    ports::open_output_port(&mut it.heap, &mut it.os, &path).map_err(os_err)
}

fn want_port(it: &Interp, v: Value, who: &str) -> SResult<()> {
    if ports::is_port(&it.heap, v) {
        Ok(())
    } else {
        err(format!("{who}: not a port"))
    }
}

fn p_close_port(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_port(it, a[0], "close-port")?;
    ports::close_port(&mut it.heap, &mut it.os, a[0]).map_err(os_err)?;
    Ok(Value::VOID)
}

fn p_flush_output_port(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_port(it, a[0], "flush-output-port")?;
    ports::flush_output_port(&mut it.heap, &mut it.os, a[0]).map_err(os_err)?;
    Ok(Value::VOID)
}

fn p_read_char(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_port(it, a[0], "read-char")?;
    match ports::read_byte(&mut it.heap, &mut it.os, a[0]).map_err(os_err)? {
        Some(b) => Ok(Value::char(b as char)),
        None => Ok(Value::EOF),
    }
}

fn p_write_char(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let c = a[0]
        .as_char()
        .ok_or_else(|| crate::error::SchemeError::new("write-char: not a char"))?;
    want_port(it, a[1], "write-char")?;
    let mut buf = [0u8; 4];
    let s = c.encode_utf8(&mut buf);
    for b in s.bytes() {
        ports::write_byte(&mut it.heap, &mut it.os, a[1], b).map_err(os_err)?;
    }
    Ok(Value::VOID)
}

fn p_write_string(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let s = want_string(&it.heap, a[0], "write-string")?;
    want_port(it, a[1], "write-string")?;
    ports::write_string(&mut it.heap, &mut it.os, a[1], &s).map_err(os_err)?;
    Ok(Value::VOID)
}

fn p_is_port(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(ports::is_port(&it.heap, a[0])))
}

fn p_is_input_port(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(ports::is_input_port(&it.heap, a[0])))
}

fn p_is_output_port(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(ports::is_output_port(&it.heap, a[0])))
}

fn p_is_port_open(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    want_port(it, a[0], "port-open?")?;
    Ok(Value::bool(ports::is_open(&it.heap, a[0])))
}

fn p_is_eof(_: &mut Interp, a: &[Value]) -> SResult<Value> {
    Ok(Value::bool(a[0] == Value::EOF))
}

fn p_eof_object(_: &mut Interp, _: &[Value]) -> SResult<Value> {
    Ok(Value::EOF)
}

fn p_file_exists(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let path = want_string(&it.heap, a[0], "file-exists?")?;
    Ok(Value::bool(it.os.file_exists(&path)))
}

fn p_delete_file(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let path = want_string(&it.heap, a[0], "delete-file")?;
    it.os.delete_file(&path).map_err(os_err)?;
    Ok(Value::VOID)
}

fn emit(it: &mut Interp, text: &str, port: Option<Value>) -> SResult<Value> {
    match port {
        Some(p) => {
            want_port(it, p, "display")?;
            ports::write_string(&mut it.heap, &mut it.os, p, text).map_err(os_err)?;
        }
        None => it.output.push_str(text),
    }
    Ok(Value::VOID)
}

fn p_display(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let text = display_value(&it.heap, a[0]);
    emit(it, &text, a.get(1).copied())
}

fn p_write(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let text = write_value(&it.heap, a[0]);
    emit(it, &text, a.get(1).copied())
}

fn p_newline(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    emit(it, "\n", a.first().copied())
}

// ----------------------------------------------------------------------
// Control
// ----------------------------------------------------------------------

fn p_apply(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let f = a[0];
    let mut args: Vec<Value> = a[1..a.len() - 1].to_vec();
    let mut rest = *a.last().expect("apply has >= 2 args");
    while !rest.is_nil() {
        want_pair(&it.heap, rest, "apply")?;
        args.push(it.heap.car(rest));
        rest = it.heap.cdr(rest);
    }
    it.apply(f, &args)
}

fn p_error(it: &mut Interp, a: &[Value]) -> SResult<Value> {
    let mut msg = if it.heap.is_string(a[0]) {
        it.heap.string_value(a[0])
    } else {
        write_value(&it.heap, a[0])
    };
    for v in &a[1..] {
        msg.push(' ');
        msg.push_str(&write_value(&it.heap, *v));
    }
    err(msg)
}

fn p_void(_: &mut Interp, _: &[Value]) -> SResult<Value> {
    Ok(Value::VOID)
}
