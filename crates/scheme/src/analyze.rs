//! One-time syntax analysis: the staging pass.
//!
//! `analyze_top` walks a top-level form once and produces an opcode tree
//! ([`Code`]) in which every special form has been resolved to an enum
//! variant, every local variable reference has been replaced by a
//! `(frame depth, slot)` pair against a compile-time scope map, and every
//! global reference goes through the symbol's interned value cell with a
//! one-entry inline cache at the reference site. The execution engine in
//! `interp.rs` then runs the tree without ever re-inspecting source
//! syntax — the cost of parsing special forms, walking binding lists,
//! and searching association-list environments is paid once per form
//! instead of once per evaluation.
//!
//! The analyzer deliberately mirrors the naive (cons-walking) evaluator's
//! observable behaviour: error messages are byte-identical, scope rules
//! match (special forms are not shadowable, duplicate lambda parameters
//! resolve to the last occurrence, named-`let` inits evaluate in the
//! outer scope), and the `do` desugar bumps the same gensym counter so
//! symbol generation stays in lockstep between the two modes. Known,
//! documented divergences are limited to *malformed* programs (the
//! analyzer reports a syntax error at analysis time where the naive
//! evaluator would only fail if and when the bad subform was reached) and
//! to conditionally-executed `define`s inside bodies, which the staged
//! evaluator allocates a slot for unconditionally.

use crate::error::{err, SResult};
use crate::interp::Interp;
use guardians_gc::{Rooted, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to an analyzed code node.
pub(crate) type CodeRef = Rc<Code>;

/// A global-variable reference site.
///
/// `cell` is the site's inline cache: once the symbol's global value cell
/// exists it is rooted here and every later execution of this site goes
/// straight to the box, skipping the symbol-extra probe. Cells are
/// created at most once per symbol and never replaced (see
/// `SymbolTable::global_cell`), which is what makes the cache sound.
pub(crate) struct GlobalSite {
    /// The variable's symbol (rooted; symbols move during collection).
    pub sym: Rooted,
    /// The variable's name, for error messages without heap access.
    pub name: Rc<str>,
    /// One-entry inline cache of the rooted global value cell.
    pub cell: RefCell<Option<Rooted>>,
}

/// Analyzed code for one `lambda`/`case-lambda`, stored in the
/// interpreter's code table; compiled-closure records refer to it by
/// index so closures stay ordinary heap values.
pub(crate) struct LambdaCode {
    /// One entry per clause, tried in order (a plain `lambda` has one).
    pub clauses: Vec<ClauseCode>,
}

/// One clause of an analyzed lambda.
pub(crate) struct ClauseCode {
    /// Number of required (positional) parameters.
    pub n_req: usize,
    /// Whether a rest parameter follows the required ones.
    pub variadic: bool,
    /// Total frame slots: parameters, rest, then body `define`s.
    pub n_slots: usize,
    /// The clause body as a single code node.
    pub body: CodeRef,
}

/// One clause of an analyzed `case`.
pub(crate) struct CaseClause {
    /// The datum list to `eqv?` the key against; `None` for `else`.
    pub datums: Option<Rooted>,
    /// The clause body.
    pub body: CodeRef,
}

/// The opcode tree. Every variant holds pre-resolved operands; nothing
/// here requires walking source syntax at execution time.
pub(crate) enum Code {
    /// A self-evaluating immediate (fixnum, boolean, char, ...).
    Imm(Value),
    /// A heap constant (quoted data, literal strings), kept rooted.
    Const(Rooted),
    /// A lexical variable: `depth` frames out, slot `slot`.
    LocalRef {
        /// Frames to walk outward from the current environment.
        depth: usize,
        /// Slot index within that frame.
        slot: usize,
        /// Name for "used before initialization" errors.
        name: Rc<str>,
    },
    /// A global variable through its interned value cell.
    GlobalRef(Rc<GlobalSite>),
    /// `set!` of a lexical variable (evaluates to void).
    LocalSet {
        /// Frames to walk outward.
        depth: usize,
        /// Slot index within that frame.
        slot: usize,
        /// The value expression.
        value: CodeRef,
    },
    /// `set!` of a global variable.
    GlobalSet {
        /// The reference site (with inline cache).
        site: Rc<GlobalSite>,
        /// The value expression.
        value: CodeRef,
    },
    /// Top-level `define`: evaluate, then bind the global cell.
    GlobalDefine {
        /// The reference site (with inline cache).
        site: Rc<GlobalSite>,
        /// The value expression.
        value: CodeRef,
    },
    /// `(if test then [else])`.
    If {
        /// The condition.
        test: CodeRef,
        /// Taken when the condition is truthy.
        then_: CodeRef,
        /// Taken otherwise; `None` evaluates to void.
        else_: Option<CodeRef>,
    },
    /// A `lambda`/`case-lambda`: builds a compiled closure over the
    /// current environment from the code table entry at `index`.
    Lambda {
        /// Index into the interpreter's code table.
        index: usize,
        /// The procedure's name (a rooted symbol, or `#f`).
        name: Rooted,
    },
    /// A sequence; empty evaluates to void, last form is in tail position.
    Seq(Vec<CodeRef>),
    /// `(let ([x e] ...) body)` and `letrec` (with empty `inits`): make a
    /// fresh frame of `n_slots` slots, fill from `inits` evaluated in the
    /// *outer* environment, run `body` in the extended environment.
    Let {
        /// Slot count of the new frame.
        n_slots: usize,
        /// Init expressions (outer scope); slots beyond them start
        /// `UNBOUND` (letrec-style).
        inits: Vec<CodeRef>,
        /// The body, in the extended environment.
        body: CodeRef,
    },
    /// Named `let` (and the `do` desugar): allocate the loop closure and
    /// tail-call it on the evaluated `args`.
    NamedLet {
        /// Code-table index of the loop lambda.
        index: usize,
        /// The loop name (rooted symbol, or `#f` for `do`).
        name: Rooted,
        /// The init expressions, evaluated in the outer environment.
        args: Vec<CodeRef>,
        /// Whether to bump the interpreter's gensym counter first (the
        /// naive `do` desugar allocates a gensym per evaluation; staged
        /// `do` must keep the counter in lockstep).
        bump_gensym: bool,
    },
    /// `(and e ...)`; empty is folded to `Imm(#t)` at analysis time.
    And(Vec<CodeRef>),
    /// `(or e ...)`; empty is folded to `Imm(#f)` at analysis time.
    Or(Vec<CodeRef>),
    /// `when` (`want` = true) / `unless` (`want` = false).
    When {
        /// The condition.
        test: CodeRef,
        /// The truthiness that runs the body.
        want: bool,
        /// The body sequence.
        body: CodeRef,
    },
    /// A `cond` clause of the form `(test => receiver)`: if `test` is
    /// truthy, apply the receiver to its value (non-tail, matching the
    /// naive evaluator); otherwise continue with `rest`.
    CondArrow {
        /// The condition.
        test: CodeRef,
        /// The receiver expression.
        recv: CodeRef,
        /// The remaining clauses.
        rest: CodeRef,
    },
    /// `(case key clauses...)` with pre-split datum lists.
    Case {
        /// The key expression.
        key: CodeRef,
        /// The clauses, in order; an `else` clause always matches.
        clauses: Vec<CaseClause>,
    },
    /// A procedure application.
    App {
        /// The operator expression.
        op: CodeRef,
        /// The operand expressions.
        args: Vec<CodeRef>,
    },
    /// A quasiquote template with its unquote sites pre-analyzed, in the
    /// order the runtime walk reaches them.
    Quasi {
        /// The (rooted) template datum.
        template: Rooted,
        /// Analyzed `unquote`/`unquote-splicing` expressions.
        sites: Vec<CodeRef>,
    },
}

/// Analyzes one top-level form. Defines at top level become
/// [`Code::GlobalDefine`]; everything else is an expression in the empty
/// lexical scope.
pub(crate) fn analyze_top(it: &mut Interp, form: Value) -> SResult<CodeRef> {
    let mut a = Analyzer {
        it,
        scopes: Vec::new(),
        depth: 0,
    };
    a.analyze(form)
}

/// Maximum analysis nesting; guards the Rust stack against
/// pathologically deep source forms.
const MAX_ANALYZE_DEPTH: usize = 1000;

struct Analyzer<'a> {
    it: &'a mut Interp,
    /// The compile-time scope map: one `Vec<Value>` of raw parameter /
    /// binding symbols per frame, innermost last. Raw `Value`s are safe
    /// here because the analyzer performs no collection (symbols are
    /// additionally kept alive by the form being analyzed, which the
    /// caller roots). Non-symbol "parameters" are stored as-is; they can
    /// never match a symbol lookup, which exactly mirrors the naive
    /// evaluator's behaviour of binding them inertly in the alist.
    scopes: Vec<Vec<Value>>,
    depth: usize,
}

impl<'a> Analyzer<'a> {
    // ------------------------------------------------------------------
    // Structure helpers (mirror the naive evaluator's error strings)
    // ------------------------------------------------------------------

    fn nth(&self, list: Value, n: usize) -> SResult<Value> {
        let mut cur = list;
        for _ in 0..n {
            if !self.it.heap.is_pair(cur) {
                return err("malformed form: too few subexpressions");
            }
            cur = self.it.heap.cdr(cur);
        }
        if !self.it.heap.is_pair(cur) {
            return err("malformed form: too few subexpressions");
        }
        Ok(self.it.heap.car(cur))
    }

    fn tail_from(&self, list: Value, n: usize) -> Value {
        let mut cur = list;
        for _ in 0..n {
            if !self.it.heap.is_pair(cur) {
                return cur;
            }
            cur = self.it.heap.cdr(cur);
        }
        cur
    }

    fn scar(&self, v: Value) -> SResult<Value> {
        if self.it.heap.is_pair(v) {
            Ok(self.it.heap.car(v))
        } else {
            err("malformed form")
        }
    }

    fn scdr(&self, v: Value) -> SResult<Value> {
        if self.it.heap.is_pair(v) {
            Ok(self.it.heap.cdr(v))
        } else {
            err("malformed form")
        }
    }

    fn list_items(&self, mut v: Value) -> Vec<Value> {
        let mut items = Vec::new();
        while self.it.heap.is_pair(v) {
            items.push(self.it.heap.car(v));
            v = self.it.heap.cdr(v);
        }
        items
    }

    // ------------------------------------------------------------------
    // Scope map
    // ------------------------------------------------------------------

    /// Resolves `sym` in the compile-time scope map. Duplicate names in
    /// one frame resolve to the *last* occurrence, matching the naive
    /// evaluator's alist shadowing (later conses shadow earlier ones).
    fn resolve_local(&self, sym: Value) -> Option<(usize, usize)> {
        for (depth, frame) in self.scopes.iter().rev().enumerate() {
            if let Some(slot) = frame.iter().rposition(|&s| s == sym) {
                return Some((depth, slot));
            }
        }
        None
    }

    fn global_site(&mut self, sym: Value) -> Rc<GlobalSite> {
        let name: Rc<str> = Rc::from(self.it.heap.symbol_name(sym).as_str());
        Rc::new(GlobalSite {
            sym: self.it.heap.root(sym),
            name,
            cell: RefCell::new(None),
        })
    }

    /// An immediate stays unrooted; heap data gets a rooted handle.
    fn constant(&mut self, v: Value) -> CodeRef {
        if v.is_ptr() {
            Rc::new(Code::Const(self.it.heap.root(v)))
        } else {
            Rc::new(Code::Imm(v))
        }
    }

    // ------------------------------------------------------------------
    // Entry
    // ------------------------------------------------------------------

    fn analyze(&mut self, form: Value) -> SResult<CodeRef> {
        if self.depth >= MAX_ANALYZE_DEPTH {
            return err("form nesting too deep");
        }
        self.depth += 1;
        let r = self.analyze_inner(form);
        self.depth -= 1;
        r
    }

    fn analyze_inner(&mut self, form: Value) -> SResult<CodeRef> {
        let heap = &self.it.heap;
        if !heap.is_pair(form) {
            if heap.is_symbol(form) {
                return self.analyze_var(form);
            }
            return Ok(self.constant(form));
        }
        let head = heap.car(form);
        if heap.is_symbol(head) {
            // Special forms are resolved by symbol identity *before* the
            // scope map is consulted: like the naive evaluator, they are
            // not shadowable by local bindings.
            let sf = &self.it.sf;
            if head == sf.quote.get() {
                let datum = self.nth(form, 1)?;
                return Ok(self.constant(datum));
            }
            if head == sf.quasiquote.get() {
                let template = self.nth(form, 1)?;
                return self.analyze_quasiquote(template);
            }
            if head == sf.unquote.get() || head == sf.unquote_splicing.get() {
                return err("unquote outside quasiquote");
            }
            if head == sf.iff.get() {
                return self.analyze_if(form);
            }
            if head == sf.define.get() {
                return self.analyze_define(form);
            }
            if head == sf.set.get() {
                return self.analyze_set(form);
            }
            if head == sf.lambda.get() {
                let params = self.nth(form, 1)?;
                let body = self.tail_from(form, 2);
                let clause = vec![(params, body)];
                let index = self.analyze_lambda_clauses(&clause)?;
                let name = self.it.heap.root(Value::FALSE);
                return Ok(Rc::new(Code::Lambda { index, name }));
            }
            if head == sf.case_lambda.get() {
                let mut clauses = Vec::new();
                for c in self.list_items(self.it.heap.cdr(form)) {
                    let params = self.scar(c)?;
                    let body = self.it.heap.cdr(c);
                    clauses.push((params, body));
                }
                let index = self.analyze_lambda_clauses(&clauses)?;
                let name = self.it.heap.root(Value::FALSE);
                return Ok(Rc::new(Code::Lambda { index, name }));
            }
            if head == sf.begin.get() {
                let body = self.it.heap.cdr(form);
                return self.analyze_body(body);
            }
            if head == sf.let_.get() {
                return self.analyze_let(form);
            }
            if head == sf.let_star.get() {
                let bindings = self.nth(form, 1)?;
                let body = self.tail_from(form, 2);
                return self.analyze_let_star(bindings, body);
            }
            if head == sf.letrec.get() {
                return self.analyze_letrec(form);
            }
            if head == sf.cond.get() {
                let clauses = self.it.heap.cdr(form);
                return self.analyze_cond(clauses);
            }
            if head == sf.and.get() || head == sf.or.get() {
                let is_and = head == sf.and.get();
                let items = self.list_items(self.it.heap.cdr(form));
                if items.is_empty() {
                    return Ok(Rc::new(Code::Imm(Value::bool(is_and))));
                }
                let mut parts = Vec::with_capacity(items.len());
                for e in items {
                    parts.push(self.analyze(e)?);
                }
                return Ok(Rc::new(if is_and {
                    Code::And(parts)
                } else {
                    Code::Or(parts)
                }));
            }
            if head == sf.when.get() || head == sf.unless.get() {
                let want = head == sf.when.get();
                let test = self.nth(form, 1)?;
                let body = self.tail_from(form, 2);
                let test = self.analyze(test)?;
                let body = self.analyze_body(body)?;
                return Ok(Rc::new(Code::When { test, want, body }));
            }
            if head == sf.case.get() {
                return self.analyze_case(form);
            }
            if head == sf.do_.get() {
                return self.analyze_do(form);
            }
            if head == sf.define_record_type.get() {
                let forms = self.expand_define_record_type(form)?;
                let mut parts = Vec::with_capacity(forms.len());
                for f in forms {
                    parts.push(self.analyze(f)?);
                }
                return Ok(Rc::new(Code::Seq(parts)));
            }
        }
        // Application.
        let op = self.analyze(head)?;
        let arg_forms = self.list_items(self.it.heap.cdr(form));
        let mut args = Vec::with_capacity(arg_forms.len());
        for a in arg_forms {
            args.push(self.analyze(a)?);
        }
        Ok(Rc::new(Code::App { op, args }))
    }

    fn analyze_var(&mut self, sym: Value) -> SResult<CodeRef> {
        if let Some((depth, slot)) = self.resolve_local(sym) {
            let name: Rc<str> = Rc::from(self.it.heap.symbol_name(sym).as_str());
            return Ok(Rc::new(Code::LocalRef { depth, slot, name }));
        }
        let site = self.global_site(sym);
        Ok(Rc::new(Code::GlobalRef(site)))
    }

    fn analyze_if(&mut self, form: Value) -> SResult<CodeRef> {
        let test = self.nth(form, 1)?;
        let test = self.analyze(test)?;
        let then_form = self.nth(form, 2)?;
        let then_ = self.analyze(then_form)?;
        let rest = self.tail_from(form, 3);
        let else_ = if rest.is_nil() {
            None
        } else {
            let e = self.scar(rest)?;
            Some(self.analyze(e)?)
        };
        Ok(Rc::new(Code::If { test, then_, else_ }))
    }

    fn analyze_set(&mut self, form: Value) -> SResult<CodeRef> {
        let target = self.nth(form, 1)?;
        let value_form = self.nth(form, 2)?;
        let value = self.analyze(value_form)?;
        if !self.it.heap.is_symbol(target) {
            // The naive evaluator's set_var never finds a non-symbol in
            // any alist, so it reports an unbound variable through the
            // printer; malformed programs diverge by design — report a
            // clean syntax error here.
            return err("set!: bad target");
        }
        if let Some((depth, slot)) = self.resolve_local(target) {
            return Ok(Rc::new(Code::LocalSet { depth, slot, value }));
        }
        let site = self.global_site(target);
        Ok(Rc::new(Code::GlobalSet { site, value }))
    }

    /// A top-level or body `define`. Inside bodies the enclosing
    /// `analyze_body` has already registered the name in the scope map,
    /// so it resolves locally; at top level it becomes a global define.
    fn analyze_define(&mut self, form: Value) -> SResult<CodeRef> {
        let target = self.nth(form, 1)?;
        let heap = &self.it.heap;
        if heap.is_symbol(target) {
            let value_form = self.nth(form, 2)?;
            let value = self.analyze(value_form)?;
            return self.finish_define(target, value);
        }
        if heap.is_pair(target) {
            // (define (f . params) body...)
            let name = heap.car(target);
            let params = heap.cdr(target);
            let body = self.tail_from(form, 2);
            let clause = vec![(params, body)];
            let index = self.analyze_lambda_clauses(&clause)?;
            let rooted_name = self.it.heap.root(name);
            let value = Rc::new(Code::Lambda {
                index,
                name: rooted_name,
            });
            if !self.it.heap.is_symbol(name) {
                return err("define: bad target");
            }
            return self.finish_define(name, value);
        }
        err("define: bad target")
    }

    fn finish_define(&mut self, sym: Value, value: CodeRef) -> SResult<CodeRef> {
        if let Some((depth, slot)) = self.resolve_local(sym) {
            return Ok(Rc::new(Code::LocalSet { depth, slot, value }));
        }
        let site = self.global_site(sym);
        Ok(Rc::new(Code::GlobalDefine { site, value }))
    }

    // ------------------------------------------------------------------
    // Bodies (define splicing and slot allocation)
    // ------------------------------------------------------------------

    /// Whether `form` is a `define` / `define-record-type`, or a `begin`
    /// that (recursively) contains one — those begins are spliced into
    /// the surrounding body, mirroring top-level semantics; a `begin`
    /// with no defines is left as an expression so `(begin)` in final
    /// position still evaluates to void.
    fn contains_defines(&self, form: Value) -> bool {
        let heap = &self.it.heap;
        if !heap.is_pair(form) {
            return false;
        }
        let head = heap.car(form);
        if !heap.is_symbol(head) {
            return false;
        }
        if head == self.it.sf.define.get() || head == self.it.sf.define_record_type.get() {
            return true;
        }
        if head == self.it.sf.begin.get() {
            let mut b = heap.cdr(form);
            while heap.is_pair(b) {
                if self.contains_defines(heap.car(b)) {
                    return true;
                }
                b = heap.cdr(b);
            }
        }
        false
    }

    /// Expands a body item list: splices define-carrying `begin`s and
    /// expands `define-record-type` into its constituent defines.
    fn expand_body_items(&mut self, body: Value, out: &mut Vec<Value>) -> SResult<()> {
        for item in self.list_items(body) {
            let heap = &self.it.heap;
            if heap.is_pair(item) {
                let head = heap.car(item);
                if heap.is_symbol(head) {
                    if head == self.it.sf.begin.get() && self.contains_defines(item) {
                        let inner = self.it.heap.cdr(item);
                        self.expand_body_items(inner, out)?;
                        continue;
                    }
                    if head == self.it.sf.define_record_type.get() {
                        out.extend(self.expand_define_record_type(item)?);
                        continue;
                    }
                }
            }
            out.push(item);
        }
        Ok(())
    }

    /// The symbol a body item defines, if any.
    fn defined_name(&self, item: Value) -> Option<Value> {
        let heap = &self.it.heap;
        if !heap.is_pair(item) {
            return None;
        }
        let head = heap.car(item);
        if !heap.is_symbol(head) || head != self.it.sf.define.get() {
            return None;
        }
        let rest = heap.cdr(item);
        if !heap.is_pair(rest) {
            return None;
        }
        let target = heap.car(rest);
        if heap.is_symbol(target) {
            Some(target)
        } else if heap.is_pair(target) {
            let name = heap.car(target);
            heap.is_symbol(name).then_some(name)
        } else {
            None
        }
    }

    /// Analyzes a body (the forms of a `begin`, a `cond`/`case`/`when`
    /// clause, or an empty-bindings `let*`). Defines get a fresh frame of
    /// their own (a `Let` with zero inits) — unless the scope map is
    /// empty, in which case this is top level and the defines are global,
    /// exactly as the naive evaluator's `define-into-current-env` gives.
    fn analyze_body(&mut self, body: Value) -> SResult<CodeRef> {
        let mut items = Vec::new();
        self.expand_body_items(body, &mut items)?;
        let defines: Vec<Value> = {
            let mut names = Vec::new();
            for &it_form in &items {
                if let Some(name) = self.defined_name(it_form) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
            names
        };
        if defines.is_empty() || self.scopes.is_empty() {
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                parts.push(self.analyze(item)?);
            }
            return Ok(seq_of(parts));
        }
        // Wrap in a fresh frame holding the defined names.
        self.scopes.push(defines.clone());
        let result = (|| {
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                parts.push(self.analyze(item)?);
            }
            Ok(seq_of(parts))
        })();
        self.scopes.pop();
        let body = result?;
        Ok(Rc::new(Code::Let {
            n_slots: defines.len(),
            inits: Vec::new(),
            body,
        }))
    }

    // ------------------------------------------------------------------
    // Lambda
    // ------------------------------------------------------------------

    /// Analyzes lambda clauses `(params, body)` and registers a
    /// [`LambdaCode`] in the interpreter's code table, returning its
    /// index.
    fn analyze_lambda_clauses(&mut self, clauses: &[(Value, Value)]) -> SResult<usize> {
        let mut out = Vec::with_capacity(clauses.len());
        for &(params, body) in clauses {
            out.push(self.analyze_clause(params, body)?);
        }
        let index = self.it.code_tab.len();
        self.it.code_tab.push(Rc::new(LambdaCode { clauses: out }));
        Ok(index)
    }

    fn analyze_clause(&mut self, params: Value, body: Value) -> SResult<ClauseCode> {
        let heap = &self.it.heap;
        let mut frame: Vec<Value> = Vec::new();
        let mut p = params;
        while heap.is_pair(p) {
            frame.push(heap.car(p));
            p = heap.cdr(p);
        }
        let n_req = frame.len();
        let variadic = heap.is_symbol(p);
        if variadic {
            frame.push(p);
        }
        // Body defines extend the same frame after the parameters.
        let mut items = Vec::new();
        self.expand_body_items(body, &mut items)?;
        for &item in &items {
            if let Some(name) = self.defined_name(item) {
                if !frame.contains(&name) {
                    frame.push(name);
                }
            }
        }
        let n_slots = frame.len();
        self.scopes.push(frame);
        let result = (|| {
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                parts.push(self.analyze(item)?);
            }
            Ok(seq_of(parts))
        })();
        self.scopes.pop();
        Ok(ClauseCode {
            n_req,
            variadic,
            n_slots,
            body: result?,
        })
    }

    // ------------------------------------------------------------------
    // let / let* / letrec / named let / do
    // ------------------------------------------------------------------

    fn analyze_let(&mut self, form: Value) -> SResult<CodeRef> {
        let second = self.nth(form, 1)?;
        if self.it.heap.is_symbol(second) {
            return self.analyze_named_let(form);
        }
        let bindings = self.list_items(second);
        let mut names = Vec::with_capacity(bindings.len());
        let mut inits = Vec::with_capacity(bindings.len());
        for b in &bindings {
            let sym = self.scar(*b)?;
            let init = self.nth(*b, 1)?;
            names.push(sym);
            inits.push(self.analyze(init)?);
        }
        let body = self.tail_from(form, 2);
        // Body defines extend the let frame.
        let mut items = Vec::new();
        self.expand_body_items(body, &mut items)?;
        for &item in &items {
            if let Some(name) = self.defined_name(item) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        let n_slots = names.len();
        self.scopes.push(names);
        let result = (|| {
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                parts.push(self.analyze(item)?);
            }
            Ok(seq_of(parts))
        })();
        self.scopes.pop();
        Ok(Rc::new(Code::Let {
            n_slots,
            inits,
            body: result?,
        }))
    }

    fn analyze_let_star(&mut self, bindings: Value, body: Value) -> SResult<CodeRef> {
        if !self.it.heap.is_pair(bindings) {
            // No bindings left: the body in its own frame (for defines).
            return self.analyze_body(body);
        }
        let binding = self.scar(bindings)?;
        let sym = self.scar(binding)?;
        let init = self.nth(binding, 1)?;
        let init = self.analyze(init)?;
        let rest = self.it.heap.cdr(bindings);
        self.scopes.push(vec![sym]);
        let result = self.analyze_let_star(rest, body);
        self.scopes.pop();
        Ok(Rc::new(Code::Let {
            n_slots: 1,
            inits: vec![init],
            body: result?,
        }))
    }

    fn analyze_letrec(&mut self, form: Value) -> SResult<CodeRef> {
        let bindings = self.list_items(self.nth(form, 1)?);
        let mut names = Vec::with_capacity(bindings.len());
        let mut init_forms = Vec::with_capacity(bindings.len());
        for b in &bindings {
            names.push(self.scar(*b)?);
            init_forms.push(self.nth(*b, 1)?);
        }
        let body = self.tail_from(form, 2);
        let mut items = Vec::new();
        self.expand_body_items(body, &mut items)?;
        for &item in &items {
            if let Some(name) = self.defined_name(item) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        let n_binds = bindings.len();
        let n_slots = names.len();
        self.scopes.push(names);
        let result = (|| {
            let mut parts = Vec::with_capacity(n_binds + items.len());
            // Slot i gets init i, evaluated inside the new scope.
            for (i, init_form) in init_forms.into_iter().enumerate() {
                let value = self.analyze(init_form)?;
                parts.push(Rc::new(Code::LocalSet {
                    depth: 0,
                    slot: i,
                    value,
                }));
            }
            for item in items {
                parts.push(self.analyze(item)?);
            }
            Ok(seq_of(parts))
        })();
        self.scopes.pop();
        Ok(Rc::new(Code::Let {
            n_slots,
            inits: Vec::new(),
            body: result?,
        }))
    }

    fn analyze_named_let(&mut self, form: Value) -> SResult<CodeRef> {
        let name = self.nth(form, 1)?;
        let bindings = self.list_items(self.nth(form, 2)?);
        let body = self.tail_from(form, 3);
        let mut params = Vec::with_capacity(bindings.len());
        let mut args = Vec::with_capacity(bindings.len());
        // Inits are analyzed in the OUTER scope (before the loop-name
        // frame is pushed), matching the naive evaluator.
        for b in &bindings {
            params.push(self.scar(*b)?);
            let init = self.nth(*b, 1)?;
            args.push(self.analyze(init)?);
        }
        let index = self.analyze_loop_lambda(name, &params, body)?;
        let rooted_name = self.it.heap.root(name);
        Ok(Rc::new(Code::NamedLet {
            index,
            name: rooted_name,
            args,
            bump_gensym: false,
        }))
    }

    /// Analyzes the loop lambda of a named `let`/`do` under a one-slot
    /// scope frame holding the loop name, and registers it in the code
    /// table. The runtime builds the matching one-slot name frame.
    fn analyze_loop_lambda(
        &mut self,
        name: Value,
        params: &[Value],
        body: Value,
    ) -> SResult<usize> {
        self.scopes.push(vec![name]);
        let result = (|| {
            let mut frame: Vec<Value> = params.to_vec();
            let n_req = frame.len();
            let mut items = Vec::new();
            self.expand_body_items(body, &mut items)?;
            for &item in &items {
                if let Some(n) = self.defined_name(item) {
                    if !frame.contains(&n) {
                        frame.push(n);
                    }
                }
            }
            let n_slots = frame.len();
            self.scopes.push(frame);
            let body_code = (|| {
                let mut parts = Vec::with_capacity(items.len());
                for item in items {
                    parts.push(self.analyze(item)?);
                }
                Ok(seq_of(parts))
            })();
            self.scopes.pop();
            Ok(ClauseCode {
                n_req,
                variadic: false,
                n_slots,
                body: body_code?,
            })
        })();
        self.scopes.pop();
        let clause = result?;
        let index = self.it.code_tab.len();
        self.it.code_tab.push(Rc::new(LambdaCode {
            clauses: vec![clause],
        }));
        Ok(index)
    }

    /// `(do ([var init step] ...) (test result ...) body ...)`, analyzed
    /// as the same named-let shape the naive evaluator desugars to:
    ///
    /// ```text
    /// (let loop ([var init] ...)
    ///   (if test (begin result...) (begin body... (loop step...))))
    /// ```
    ///
    /// The loop-name slot is an unmatchable marker (`#f`) — source code
    /// cannot name the gensym — and the recursion is a direct
    /// `LocalRef` to it.
    fn analyze_do(&mut self, form: Value) -> SResult<CodeRef> {
        let specs = self.list_items(self.nth(form, 1)?);
        let exit = self.nth(form, 2)?;
        let body = self.tail_from(form, 3);
        let mut vars = Vec::with_capacity(specs.len());
        let mut args = Vec::with_capacity(specs.len());
        let mut step_forms = Vec::with_capacity(specs.len());
        for spec in &specs {
            let var = self.nth(*spec, 0)?;
            let init = self.nth(*spec, 1)?;
            let step = {
                let rest = self.tail_from(*spec, 2);
                if rest.is_nil() {
                    var
                } else {
                    self.it.heap.car(rest)
                }
            };
            vars.push(var);
            args.push(self.analyze(init)?);
            step_forms.push(step);
        }
        let test_form = self.scar(exit)?;
        let results = self.it.heap.cdr(exit);
        // Loop-name frame: slot 0 is the closure; the marker symbol is
        // `#f` so no source variable can resolve to it.
        self.scopes.push(vec![Value::FALSE]);
        let clause = (|| {
            let n_req = vars.len();
            let mut frame = vars.clone();
            // Body defines extend the loop frame (the naive desugar's
            // defines land in the per-iteration call frame).
            let mut items = Vec::new();
            self.expand_body_items(body, &mut items)?;
            for &item in &items {
                if let Some(n) = self.defined_name(item) {
                    if !frame.contains(&n) {
                        frame.push(n);
                    }
                }
            }
            let n_slots = frame.len();
            self.scopes.push(frame);
            let body_code = (|| {
                let test = self.analyze(test_form)?;
                let then_ = if results.is_nil() {
                    Rc::new(Code::Imm(Value::VOID))
                } else {
                    let parts = self
                        .list_items(results)
                        .into_iter()
                        .map(|r| self.analyze(r))
                        .collect::<SResult<Vec<_>>>()?;
                    seq_of(parts)
                };
                let mut seq = Vec::new();
                for item in items {
                    seq.push(self.analyze(item)?);
                }
                let mut step_code = Vec::with_capacity(step_forms.len());
                for &s in &step_forms {
                    step_code.push(self.analyze(s)?);
                }
                let recur = Rc::new(Code::App {
                    op: Rc::new(Code::LocalRef {
                        depth: 1,
                        slot: 0,
                        name: Rc::from("do-loop"),
                    }),
                    args: step_code,
                });
                seq.push(recur);
                Ok(Rc::new(Code::If {
                    test,
                    then_,
                    else_: Some(seq_of(seq)),
                }))
            })();
            self.scopes.pop();
            Ok(ClauseCode {
                n_req,
                variadic: false,
                n_slots,
                body: body_code?,
            })
        })();
        self.scopes.pop();
        let clause = clause?;
        let index = self.it.code_tab.len();
        self.it.code_tab.push(Rc::new(LambdaCode {
            clauses: vec![clause],
        }));
        let name = self.it.heap.root(Value::FALSE);
        Ok(Rc::new(Code::NamedLet {
            index,
            name,
            args,
            bump_gensym: true,
        }))
    }

    // ------------------------------------------------------------------
    // cond / case
    // ------------------------------------------------------------------

    fn analyze_cond(&mut self, clauses: Value) -> SResult<CodeRef> {
        if clauses.is_nil() {
            return Ok(Rc::new(Code::Imm(Value::VOID)));
        }
        let clause = self.scar(clauses)?;
        let test = self.scar(clause)?;
        let rest_clauses = self.scdr(clauses)?;
        let heap = &self.it.heap;
        if heap.is_symbol(test) && test == self.it.sf.else_.get() {
            let body = self.it.heap.cdr(clause);
            return self.analyze_body(body);
        }
        let body = heap.cdr(clause);
        if body.is_nil() {
            // (test): the test's value, or fall through.
            let test = self.analyze(test)?;
            let rest = self.analyze_cond(rest_clauses)?;
            return Ok(Rc::new(Code::Or(vec![test, rest])));
        }
        let first = self.it.heap.car(body);
        if self.it.heap.is_symbol(first) && first == self.it.sf.arrow.get() {
            let test = self.analyze(test)?;
            let recv_form = self.nth(body, 1)?;
            let recv = self.analyze(recv_form)?;
            let rest = self.analyze_cond(rest_clauses)?;
            return Ok(Rc::new(Code::CondArrow { test, recv, rest }));
        }
        let test = self.analyze(test)?;
        let then_ = self.analyze_body(body)?;
        let rest = self.analyze_cond(rest_clauses)?;
        Ok(Rc::new(Code::If {
            test,
            then_,
            else_: Some(rest),
        }))
    }

    fn analyze_case(&mut self, form: Value) -> SResult<CodeRef> {
        let key_form = self.nth(form, 1)?;
        let key = self.analyze(key_form)?;
        let mut clauses = Vec::new();
        let mut c = self.tail_from(form, 2);
        while !c.is_nil() {
            let clause = self.scar(c)?;
            let head = self.scar(clause)?;
            let heap = &self.it.heap;
            let is_else = heap.is_symbol(head) && head == self.it.sf.else_.get();
            let body_forms = heap.cdr(clause);
            let datums = if is_else {
                None
            } else {
                Some(self.it.heap.root(head))
            };
            let body = self.analyze_body(body_forms)?;
            clauses.push(CaseClause { datums, body });
            if is_else {
                // The naive evaluator stops at the first else clause.
                break;
            }
            c = self.scdr(c)?;
        }
        Ok(Rc::new(Code::Case { key, clauses }))
    }

    // ------------------------------------------------------------------
    // define-record-type
    // ------------------------------------------------------------------

    /// Expands `define-record-type` to plain defines over the `%record`
    /// primitives (the same shape the naive evaluator builds closures
    /// for directly). The descriptor is a fresh uninterned symbol made
    /// at *run* time by `%fresh-symbol`, so each evaluation creates a
    /// distinct, eq-unique type — exactly like the naive path.
    fn expand_define_record_type(&mut self, form: Value) -> SResult<Vec<Value>> {
        let name = self.nth(form, 1)?;
        let pred_name = self.nth(form, 3)?;
        if !self.it.heap.is_symbol(name) || !self.it.heap.is_symbol(pred_name) {
            return err("define-record-type: malformed");
        }
        let ctor_spec = self.nth(form, 2)?;
        let ctor_name = self.scar(ctor_spec)?;
        let ctor_args = self.list_items(self.it.heap.cdr(ctor_spec));
        let field_specs = self.list_items(self.tail_from(form, 4));
        let mut fields: Vec<Value> = Vec::new();
        let mut accessors: Vec<(Value, usize)> = Vec::new();
        let mut mutators: Vec<(Value, usize)> = Vec::new();
        for spec in field_specs {
            let field = self.scar(spec)?;
            let idx = fields.len();
            fields.push(field);
            let rest = self.scdr(spec)?;
            if self.it.heap.is_pair(rest) {
                accessors.push((self.it.heap.car(rest), idx));
                let rest2 = self.it.heap.cdr(rest);
                if self.it.heap.is_pair(rest2) {
                    mutators.push((self.it.heap.car(rest2), idx));
                }
            }
        }
        let define = self.it.sf.define.get();
        let quote = self.it.sf.quote.get();
        let fresh = self.it.intern("%fresh-symbol");
        let make_rec = self.it.intern("%make-record");
        let of_type = self.it.intern("%record-of-type?");
        let rec_ref = self.it.intern("%record-ref");
        let rec_set = self.it.intern("%record-set!");
        let obj_sym = self.it.intern("%obj");
        let val_sym = self.it.intern("%val");
        let heap = &mut self.it.heap;
        let mut out = Vec::new();
        // (define Name (%fresh-symbol 'Name))
        {
            let quoted = list2(heap, quote, name);
            let call = list2(heap, fresh, quoted);
            out.push(list3(heap, define, name, call));
        }
        // (define (ctor args...) (%make-record Name field-or-#f ...))
        {
            let mut call = Value::NIL;
            for f in fields.iter().rev() {
                let arg = if ctor_args.contains(f) {
                    *f
                } else {
                    Value::FALSE
                };
                call = heap.cons(arg, call);
            }
            call = heap.cons(name, call);
            call = heap.cons(make_rec, call);
            let mut target = Value::NIL;
            for a in ctor_args.iter().rev() {
                target = heap.cons(*a, target);
            }
            target = heap.cons(ctor_name, target);
            out.push(list3(heap, define, target, call));
        }
        // (define (pred %obj) (%record-of-type? %obj Name))
        {
            let call = list3(heap, of_type, obj_sym, name);
            let target = list2(heap, pred_name, obj_sym);
            out.push(list3(heap, define, target, call));
        }
        for (acc_name, idx) in accessors {
            let call = {
                let t = heap.cons(Value::fixnum(idx as i64), Value::NIL);
                let t = heap.cons(name, t);
                let t = heap.cons(obj_sym, t);
                heap.cons(rec_ref, t)
            };
            let target = list2(heap, acc_name, obj_sym);
            out.push(list3(heap, define, target, call));
        }
        for (mut_name, idx) in mutators {
            let call = {
                let t = heap.cons(val_sym, Value::NIL);
                let t = heap.cons(Value::fixnum(idx as i64), t);
                let t = heap.cons(name, t);
                let t = heap.cons(obj_sym, t);
                heap.cons(rec_set, t)
            };
            let target = list3(heap, mut_name, obj_sym, val_sym);
            out.push(list3(heap, define, target, call));
        }
        // Root the expansion on the interpreter stack? Not needed: the
        // analyzer performs no collection, and the produced forms are
        // consumed immediately by `analyze`, which roots any quoted data
        // it keeps.
        Ok(out)
    }

    // ------------------------------------------------------------------
    // quasiquote
    // ------------------------------------------------------------------

    /// Collects the `unquote`/`unquote-splicing` expressions of a
    /// template in the exact order the runtime expansion walk reaches
    /// them, analyzing each in the current scope. The runtime `Quasi`
    /// executor performs the same walk, consuming sites by cursor.
    fn analyze_quasiquote(&mut self, template: Value) -> SResult<CodeRef> {
        let mut sites = Vec::new();
        self.qq_collect(template, 1, &mut sites)?;
        let rooted = self.it.heap.root(template);
        Ok(Rc::new(Code::Quasi {
            template: rooted,
            sites,
        }))
    }

    fn qq_collect(
        &mut self,
        template: Value,
        depth: usize,
        sites: &mut Vec<CodeRef>,
    ) -> SResult<()> {
        if self.depth >= MAX_ANALYZE_DEPTH {
            return err("quasiquote nesting too deep");
        }
        self.depth += 1;
        let r = self.qq_collect_inner(template, depth, sites);
        self.depth -= 1;
        r
    }

    fn qq_collect_inner(
        &mut self,
        template: Value,
        depth: usize,
        sites: &mut Vec<CodeRef>,
    ) -> SResult<()> {
        let heap = &self.it.heap;
        if heap.is_vector(template) {
            for i in 0..self.it.heap.vector_len(template) {
                let e = self.it.heap.vector_ref(template, i);
                self.qq_collect(e, depth, sites)?;
            }
            return Ok(());
        }
        if !heap.is_pair(template) {
            return Ok(());
        }
        let head = heap.car(template);
        if heap.is_symbol(head) {
            if head == self.it.sf.unquote.get() {
                let inner = self.nth(template, 1)?;
                if depth == 1 {
                    sites.push(self.analyze(inner)?);
                    return Ok(());
                }
                return self.qq_collect(inner, depth - 1, sites);
            }
            if head == self.it.sf.quasiquote.get() {
                let inner = self.nth(template, 1)?;
                return self.qq_collect(inner, depth + 1, sites);
            }
        }
        // General list walk, mirroring expand_quasiquote_inner.
        let mut rest = template;
        loop {
            if rest.is_nil() {
                return Ok(());
            }
            if !self.it.heap.is_pair(rest) {
                return self.qq_collect(rest, depth, sites);
            }
            let rest_head = self.it.heap.car(rest);
            if self.it.heap.is_symbol(rest_head)
                && (rest_head == self.it.sf.unquote.get()
                    || rest_head == self.it.sf.quasiquote.get())
            {
                return self.qq_collect(rest, depth, sites);
            }
            let e = self.it.heap.car(rest);
            let is_splice = depth == 1
                && self.it.heap.is_pair(e)
                && self.it.heap.is_symbol(self.it.heap.car(e))
                && self.it.heap.car(e) == self.it.sf.unquote_splicing.get();
            if is_splice {
                let inner = self.nth(e, 1)?;
                sites.push(self.analyze(inner)?);
            } else {
                self.qq_collect(e, depth, sites)?;
            }
            rest = self.it.heap.cdr(rest);
        }
    }
}

/// `(a b)` as a heap list.
fn list2(heap: &mut guardians_gc::Heap, a: Value, b: Value) -> Value {
    let t = heap.cons(b, Value::NIL);
    heap.cons(a, t)
}

/// `(a b c)` as a heap list.
fn list3(heap: &mut guardians_gc::Heap, a: Value, b: Value, c: Value) -> Value {
    let t = heap.cons(c, Value::NIL);
    let t = heap.cons(b, t);
    heap.cons(a, t)
}

/// Wraps parts in a `Seq` unless a single node suffices.
fn seq_of(mut parts: Vec<CodeRef>) -> CodeRef {
    if parts.len() == 1 {
        parts.pop().expect("len checked")
    } else {
        Rc::new(Code::Seq(parts))
    }
}

// ----------------------------------------------------------------------
// Frame-slot audit
// ----------------------------------------------------------------------

/// Audits the frame-slot accounting of an analyzed tree against the
/// static frame layouts in force at each position: every
/// `LocalRef`/`LocalSet` must address a slot strictly inside the frame
/// `depth` levels out, and `depth` must not escape the frames the tree
/// itself introduces. The VM compiles fixed frame layouts straight from
/// `n_slots`, so this is the proof obligation that lets it (and the
/// staged evaluator's debug assertions) treat slot indices as exact.
///
/// `env` is the stack of static frame sizes, innermost last; lambdas
/// reached through `Lambda`/`NamedLet` nodes are audited at their
/// closure-creation point, where the enclosing static environment is
/// exactly the runtime frame chain.
pub(crate) fn audit_frame_slots(
    code_tab: &[Rc<LambdaCode>],
    code: &Code,
    env: &mut Vec<usize>,
) -> Result<(), String> {
    fn check(env: &[usize], depth: usize, slot: usize, what: &str) -> Result<(), String> {
        let Some(i) = env.len().checked_sub(depth + 1) else {
            return Err(format!(
                "{what}: depth {depth} escapes the {} static frames",
                env.len()
            ));
        };
        let n = env[i];
        if slot >= n {
            return Err(format!(
                "{what}: slot {slot} outside its frame's {n} slots at depth {depth}"
            ));
        }
        Ok(())
    }
    fn audit_lambda(
        code_tab: &[Rc<LambdaCode>],
        index: usize,
        env: &mut Vec<usize>,
    ) -> Result<(), String> {
        let lc = code_tab
            .get(index)
            .ok_or_else(|| format!("lambda index {index} outside the code table"))?
            .clone();
        for clause in &lc.clauses {
            env.push(clause.n_slots);
            let r = audit_frame_slots(code_tab, &clause.body, env);
            env.pop();
            r?;
        }
        Ok(())
    }
    match code {
        Code::Imm(_) | Code::Const(_) | Code::GlobalRef(_) => Ok(()),
        Code::LocalRef { depth, slot, name } => check(env, *depth, *slot, name),
        Code::LocalSet { depth, slot, value } => {
            check(env, *depth, *slot, "set!")?;
            audit_frame_slots(code_tab, value, env)
        }
        Code::GlobalSet { value, .. } | Code::GlobalDefine { value, .. } => {
            audit_frame_slots(code_tab, value, env)
        }
        Code::If { test, then_, else_ } => {
            audit_frame_slots(code_tab, test, env)?;
            audit_frame_slots(code_tab, then_, env)?;
            match else_ {
                Some(e) => audit_frame_slots(code_tab, e, env),
                None => Ok(()),
            }
        }
        Code::Lambda { index, .. } => audit_lambda(code_tab, *index, env),
        Code::Seq(parts) | Code::And(parts) | Code::Or(parts) => {
            for p in parts {
                audit_frame_slots(code_tab, p, env)?;
            }
            Ok(())
        }
        Code::Let {
            n_slots,
            inits,
            body,
        } => {
            if inits.len() > *n_slots {
                return Err(format!(
                    "let: {} inits for a frame of {n_slots} slots",
                    inits.len()
                ));
            }
            for init in inits {
                audit_frame_slots(code_tab, init, env)?;
            }
            env.push(*n_slots);
            let r = audit_frame_slots(code_tab, body, env);
            env.pop();
            r
        }
        Code::NamedLet { index, args, .. } => {
            for a in args {
                audit_frame_slots(code_tab, a, env)?;
            }
            // The runtime name frame holds exactly one slot (the loop
            // closure); the clause frame sits inside it.
            env.push(1);
            let r = audit_lambda(code_tab, *index, env);
            env.pop();
            r?;
            let lc = &code_tab[*index];
            for clause in &lc.clauses {
                if clause.variadic || args.len() != clause.n_req {
                    continue;
                }
                if clause.n_req > clause.n_slots {
                    return Err(format!(
                        "named let: {} params for a frame of {} slots",
                        clause.n_req, clause.n_slots
                    ));
                }
            }
            Ok(())
        }
        Code::When { test, body, .. } => {
            audit_frame_slots(code_tab, test, env)?;
            audit_frame_slots(code_tab, body, env)
        }
        Code::CondArrow { test, recv, rest } => {
            audit_frame_slots(code_tab, test, env)?;
            audit_frame_slots(code_tab, recv, env)?;
            audit_frame_slots(code_tab, rest, env)
        }
        Code::Case { key, clauses } => {
            audit_frame_slots(code_tab, key, env)?;
            for cl in clauses {
                audit_frame_slots(code_tab, &cl.body, env)?;
            }
            Ok(())
        }
        Code::App { op, args } => {
            audit_frame_slots(code_tab, op, env)?;
            for a in args {
                audit_frame_slots(code_tab, a, env)?;
            }
            Ok(())
        }
        Code::Quasi { sites, .. } => {
            for s in sites {
                audit_frame_slots(code_tab, s, env)?;
            }
            Ok(())
        }
    }
}
