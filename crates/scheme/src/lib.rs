#![warn(missing_docs)]

//! A small Scheme running on the reproduced guardians heap.
//!
//! Every value the interpreter manipulates — including environments,
//! closures, and guardians — lives on the [`guardians_gc`] heap, so the
//! paper's Scheme examples run *on the reproduced collector*, exercising
//! guardians, weak pairs, the tconc protocol, and generational promotion
//! exactly as Chez Scheme's runtime did.
//!
//! Supported: `define`, `lambda`, `case-lambda` (used by the paper's
//! `make-guardian` packaging), `if`/`cond` (with `=>`)/`case`/`when`/
//! `unless`/`and`/`or`, `let` (incl. named `let`, used by Figure 1),
//! `let*`, `letrec`, `do`, `set!`, quasiquotation, `define-record-type`,
//! `collect-request-handler`, proper tail calls, ~120 primitives (pairs,
//! weak pairs, guardians, vectors, strings, arithmetic, higher-order
//! procedures, ports over a simulated OS, `collect`), plus a prelude
//! preloading the paper's library (`make-guarded-hash-table`,
//! `make-transport-guardian`, the guarded port operations).
//! Omitted (not needed by the paper): continuations, macros,
//! dynamic-wind.
//!
//! # Example: the paper's first transcript
//!
//! ```
//! use guardians_scheme::Interp;
//!
//! let mut scheme = Interp::new();
//! scheme.eval_str("(define G (make-guardian))").unwrap();
//! scheme.eval_str("(define x (cons 'a 'b))").unwrap();
//! scheme.eval_str("(G x)").unwrap();
//! assert_eq!(scheme.eval_to_string("(G)").unwrap(), "#f");
//! scheme.eval_str("(set! x #f)").unwrap();
//! scheme.eval_str("(collect 3)").unwrap();
//! assert_eq!(scheme.eval_to_string("(G)").unwrap(), "(a . b)");
//! assert_eq!(scheme.eval_to_string("(G)").unwrap(), "#f");
//! ```

mod analyze;
mod compile;
mod error;
mod interp;
mod lexer;
mod prelude;
mod prims;
mod reader;
mod vm;

pub use error::{SResult, SchemeError};
pub use interp::{EvalMode, Interp, InterpConfig};
pub use lexer::{tokenize, Token};
pub use prelude::PRELUDE;
pub use reader::{read_all, read_one};
