//! The standard prelude: the paper's own library code, loaded into every
//! interpreter so `make-guarded-hash-table`, `make-transport-guardian`,
//! and the guarded port operations are available out of the box — the
//! embedded language ships with the paper's Section 3 toolkit.

/// Scheme source evaluated by [`Interp::new`](crate::Interp::new).
pub const PRELUDE: &str = r#"
;; ----------------------------------------------------------------------
;; Figure 1: guarded hash tables.
;; (hash is a one-argument procedure, e.g. equal-hash or string-hash.)
;; ----------------------------------------------------------------------
(define make-guarded-hash-table
  (lambda (hash size)
    (let ([g (make-guardian)]
          [v (make-vector size '())])
      (lambda (key value)
        (let loop ([z (g)])
          (if z
              (begin
                (let ([h (remainder (hash z) size)])
                  (let ([bucket (vector-ref v h)])
                    (vector-set! v h (remq (assq z bucket) bucket))))
                (loop (g)))
              #f))
        (let ([h (remainder (hash key) size)])
          (let ([bucket (vector-ref v h)])
            (let ([a (assq key bucket)])
              (if a
                  (cdr a)
                  (let ([a (weak-cons key value)])
                    (vector-set! v h (cons a bucket))
                    value)))))))))

;; ----------------------------------------------------------------------
;; Section 3: conservative transport guardians.
;; ----------------------------------------------------------------------
(define make-transport-guardian
  (lambda ()
    (let ([g (make-guardian)])
      (case-lambda
        [(x) (g (weak-cons x #f))]
        [() (let loop ([m (g)])
              (if m
                  (if (car m)
                      (begin (g m) (car m))
                      (loop (g)))
                  #f))]))))

;; ----------------------------------------------------------------------
;; Section 3: the guarded port library.
;; ----------------------------------------------------------------------
(define port-guardian (make-guardian))

(define close-dropped-ports
  (lambda ()
    (let ([p (port-guardian)])
      (if p
          (begin
            (when (port-open? p)
              (if (output-port? p)
                  (begin (flush-output-port p) (close-output-port p))
                  (close-input-port p)))
            (close-dropped-ports))
          #f))))

(define guarded-open-input-file
  (lambda (pathname)
    (close-dropped-ports)
    (let ([p (open-input-file pathname)])
      (port-guardian p)
      p)))

(define guarded-open-output-file
  (lambda (pathname)
    (close-dropped-ports)
    (let ([p (open-output-file pathname)])
      (port-guardian p)
      p)))

(define guarded-exit
  (lambda ()
    (collect 3)
    (close-dropped-ports)))
"#;

#[cfg(test)]
mod tests {
    use crate::Interp;

    #[test]
    fn prelude_library_is_preloaded() {
        let mut i = Interp::new();
        for name in [
            "make-guarded-hash-table",
            "make-transport-guardian",
            "port-guardian",
            "close-dropped-ports",
            "guarded-open-input-file",
            "guarded-open-output-file",
            "guarded-exit",
        ] {
            assert_eq!(
                i.eval_to_string(&format!("(procedure? {name})")).unwrap(),
                "#t",
                "{name} missing from the prelude"
            );
        }
    }

    #[test]
    fn preloaded_guarded_table_works() {
        let mut i = Interp::new();
        let out = i
            .eval_to_string(
                "(define t (make-guarded-hash-table equal-hash 8))
                 (define k (cons 'a 'b))
                 (t k 'val)
                 (t k 'other)",
            )
            .unwrap();
        assert_eq!(out, "val");
    }

    #[test]
    fn preloaded_guarded_ports_work() {
        let mut i = Interp::new();
        i.eval_str(
            r#"
(define p (guarded-open-output-file "/pre"))
(write-string "hello" p)
(set! p #f)
(guarded-exit)
"#,
        )
        .unwrap();
        assert_eq!(i.os().open_count(), 0);
        assert_eq!(i.os().file_contents("/pre").unwrap(), b"hello");
    }

    #[test]
    fn preloaded_transport_guardian_works() {
        let mut i = Interp::new();
        i.eval_str("(define tg (make-transport-guardian)) (define x (cons 1 2)) (tg x)")
            .unwrap();
        assert_eq!(i.eval_to_string("(tg)").unwrap(), "#f");
        i.eval_str("(collect 0)").unwrap();
        assert_eq!(i.eval_to_string("(tg)").unwrap(), "(1 . 2)");
    }
}
