//! Bytecode compiler: lowers the analyzer's opcode tree into flat
//! [`CodeObject`]s for the VM tier.
//!
//! The compiler is *pure* with respect to the heap: it clones `Rooted`
//! handles and `Rc<GlobalSite>`s out of the analyzed tree into per-object
//! constant pools and never allocates, so switching between the staged
//! evaluator and the VM changes no allocation sequence — the property the
//! three-way differential tests pin down.
//!
//! Layout decisions (see DESIGN §11):
//! - one `CodeObject` per straight-line region: the top-level form, each
//!   lambda clause body, and each quasiquote unquote site;
//! - operands are pool indices (`u32`) or depth/slot pairs (`u16`), so an
//!   [`Insn`] stays small and `Copy`;
//! - all jumps are forward — loops re-enter through
//!   [`Insn::TailCall`]/[`Insn::EnterLoop`], which switch code objects;
//! - call sites carry a monomorphic inline-cache slot ([`CallCache`])
//!   remembering the last closure's lambda index and selected clause, so
//!   repeat calls skip clause selection;
//! - the last value push before a call is fused into the call insn
//!   (`local-ref+call`, `imm+call`, `const+call`) unless a jump target
//!   lands between them.

use crate::analyze::{self, Code, CodeRef, GlobalSite, LambdaCode};
use crate::error::{err, SResult};
use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::printer::write_value;
use std::cell::Cell;
use std::collections::HashSet;
use std::rc::Rc;

/// Sentinel for an empty [`CallCache`] slot.
const CACHE_EMPTY: u32 = u32::MAX;

/// Per-call-site monomorphic inline cache: the code-table index of the
/// last closure applied here and the clause it selected. Sound because a
/// call site's argument count is fixed, so for a given lambda the clause
/// choice can never change; a hit skips the clause walk and its arity
/// error checks (the miss path re-validates from scratch).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CallCache {
    /// Code-table index of the cached lambda, or `CACHE_EMPTY`.
    pub lambda: u32,
    /// Clause index selected for this site's argc.
    pub clause: u32,
}

impl CallCache {
    /// An empty (never-hit) cache slot.
    pub fn empty() -> CallCache {
        CallCache {
            lambda: CACHE_EMPTY,
            clause: 0,
        }
    }

    /// Whether this cache entry matches `lambda_index`.
    #[inline]
    pub fn hits(self, lambda_index: usize) -> bool {
        self.lambda != CACHE_EMPTY && self.lambda as usize == lambda_index
    }
}

/// A lambda creation site: the interpreter code-table index plus the
/// procedure name used in the closure record.
pub(crate) struct LambdaRef {
    /// Index into `Interp::code_tab` / `Interp::vm_tab`.
    pub index: usize,
    /// The procedure's name (rooted symbol, or `#f`).
    pub name: Rooted,
}

/// A compiled quasiquote: the rooted template plus one compiled code
/// object per unquote site, in runtime walk order.
pub(crate) struct QuasiBlock {
    /// The template datum (rooted; it moves during collection).
    pub template: Rooted,
    /// Compiled unquote/unquote-splicing expressions.
    pub sites: Vec<Rc<CodeObject>>,
}

/// One clause of a compiled lambda, mirroring `ClauseCode` with the body
/// lowered to bytecode.
pub(crate) struct VmClause {
    /// Number of required parameters.
    pub n_req: usize,
    /// Whether a rest parameter follows.
    pub variadic: bool,
    /// Exact frame slot count (audited by `audit_frame_slots`).
    pub n_slots: usize,
    /// The clause body.
    pub body: Rc<CodeObject>,
}

/// A compiled lambda: clauses tried in order, like `LambdaCode`.
pub(crate) struct VmLambda {
    /// One entry per clause.
    pub clauses: Vec<VmClause>,
}

/// A flat compiled code unit: a linear instruction vector plus the
/// constant pools its operands index into.
pub(crate) struct CodeObject {
    /// The instruction stream.
    pub insns: Vec<Insn>,
    /// Non-pointer immediates (fixnums, booleans, chars, void).
    pub imms: Vec<Value>,
    /// Rooted heap constants (quoted data, `case` datum lists).
    pub consts: Vec<Rooted>,
    /// Global reference sites (shared with the analyzed tree, so the
    /// staged evaluator and the VM warm the same inline caches).
    pub sites: Vec<Rc<GlobalSite>>,
    /// Variable names for "used before initialization" errors.
    pub names: Vec<Rc<str>>,
    /// Lambda creation sites.
    pub lambdas: Vec<LambdaRef>,
    /// Compiled quasiquote templates.
    pub quasis: Vec<QuasiBlock>,
    /// Per-call-site inline caches, indexed by the call insn's `cache`.
    pub caches: Vec<Cell<CallCache>>,
}

/// One VM instruction. Operands are indices into the owning
/// [`CodeObject`]'s pools (`u32`) or small scalars (`u16`); the whole
/// enum is `Copy` so the dispatch loop reads it by value.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Insn {
    /// Push `imms[i]`.
    Imm(u32),
    /// Push `consts[i]`.
    Const(u32),
    /// Push the lexical variable at (`depth`, `slot`); `name` indexes
    /// `names` for the uninitialized-variable error.
    LocalRef {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within that frame.
        slot: u16,
        /// Name pool index.
        name: u16,
    },
    /// Push the global at `sites[i]` through its inline-cached cell.
    GlobalRef(u32),
    /// Pop a value, store it at (`depth`, `slot`), push void.
    LocalSet {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within that frame.
        slot: u16,
    },
    /// Pop a value, `set!` the global at `sites[i]`, push void.
    GlobalSet(u32),
    /// Pop a value, define the global at `sites[i]`, push void.
    GlobalDefine(u32),
    /// Push a compiled closure over the current environment for
    /// `lambdas[i]`.
    MakeClosure(u32),
    /// Pop and discard the top of stack.
    Pop,
    /// Unconditional forward jump.
    Jmp(u32),
    /// Pop; jump if the value is `#f`.
    JmpIfFalse(u32),
    /// Pop; jump if the value is truthy.
    JmpIfTrue(u32),
    /// If top-of-stack is `#f`, keep it and jump; else pop (for `and`).
    JmpIfFalseKeep(u32),
    /// If top-of-stack is truthy, keep it and jump; else pop (for `or`).
    JmpIfTrueKeep(u32),
    /// If top-of-stack is `#f`, pop and jump; else keep it (for
    /// `cond`'s `=>` clauses, which hold the test value for the
    /// receiver).
    JmpIfFalsePop(u32),
    /// Push a copy of the current environment (the frame slot at
    /// `base`), as a saved value or as the environment slot of a nested
    /// activation.
    SaveEnv,
    /// Allocate a `let` frame of `n_slots`, fill the first `n_inits`
    /// slots from the stack (popping them), parent it on the current
    /// environment, and install it at `base`.
    PushFrame {
        /// Total slot count of the new frame.
        n_slots: u16,
        /// How many slots are initialized from the stack.
        n_inits: u16,
    },
    /// Pop the result, pop the saved environment back into `base`, push
    /// the result (closes a non-tail `let`).
    RestoreEnv,
    /// Bump the gensym counter (keeps `do` in lockstep with the naive
    /// desugar).
    BumpGensym,
    /// Tail named-`let`: pop `argc` loop arguments, build the loop
    /// closure + frame for `lambdas[lambda]`, install at `base`, and
    /// continue in the selected clause body. No safe point — mirrors
    /// `step_named_let`.
    EnterLoop {
        /// Lambda pool index of the loop lambda.
        lambda: u16,
        /// Number of loop arguments on the stack.
        argc: u16,
    },
    /// Non-tail named-`let`: like [`Insn::EnterLoop`] but runs the loop
    /// body as a nested activation rooted at the `SaveEnv` slot below
    /// the arguments, pushing its result. Counts one non-tail frame.
    EnterLoopCall {
        /// Lambda pool index of the loop lambda.
        lambda: u16,
        /// Number of loop arguments on the stack.
        argc: u16,
    },
    /// Apply: stack holds `op` then `argc` arguments. The safe point.
    /// Counts one non-tail frame; pushes the result.
    Call {
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Tail apply: like [`Insn::Call`] but reuses this activation.
    TailCall {
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `LocalRef` + `Call`.
    LocalRefCall {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within that frame.
        slot: u16,
        /// Name pool index.
        name: u16,
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `LocalRef` + `TailCall`.
    LocalRefTailCall {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within that frame.
        slot: u16,
        /// Name pool index.
        name: u16,
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `Imm` + `Call`.
    ImmCall {
        /// Immediate pool index.
        imm: u32,
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `Imm` + `TailCall`.
    ImmTailCall {
        /// Immediate pool index.
        imm: u32,
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `Const` + `Call`.
    ConstCall {
        /// Constant pool index.
        konst: u32,
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `Const` + `TailCall`.
    ConstTailCall {
        /// Constant pool index.
        konst: u32,
        /// Argument count.
        argc: u16,
        /// Inline-cache pool index.
        cache: u16,
    },
    /// Fused `LocalRef` + `Return`.
    LocalRefRet {
        /// Frames to walk outward.
        depth: u16,
        /// Slot within that frame.
        slot: u16,
        /// Name pool index.
        name: u16,
    },
    /// Pop the receiver, pop the test value, apply receiver to value,
    /// push the result (`cond`'s `=>`, non-tail like the naive
    /// evaluator).
    CondApply,
    /// `case` dispatch: if the key at top-of-stack is `eqv?` to any
    /// datum in `consts[datums]`, jump to `target` (keeping the key on
    /// the stack; clause bodies start with `Pop`).
    CaseMatch {
        /// Constant pool index of the datum list.
        datums: u32,
        /// Jump target of the clause body.
        target: u32,
    },
    /// Run the quasiquote walk for `quasis[i]`, pushing the built datum.
    Quasi(u32),
    /// Pop the result and return it from this code object.
    Return,
}

/// Number of distinct opcodes, for the dispatch-counter table.
pub(crate) const OP_COUNT: usize = 34;

/// Opcode names, indexed by [`Insn::op_index`]; used for the
/// `vm.dispatch.*` metrics counters and the disassembler.
pub(crate) const OP_NAMES: [&str; OP_COUNT] = [
    "imm",
    "const",
    "local-ref",
    "global-ref",
    "local-set",
    "global-set",
    "global-define",
    "make-closure",
    "pop",
    "jmp",
    "jmp-if-false",
    "jmp-if-true",
    "jmp-if-false-keep",
    "jmp-if-true-keep",
    "jmp-if-false-pop",
    "save-env",
    "push-frame",
    "restore-env",
    "bump-gensym",
    "enter-loop",
    "enter-loop-call",
    "call",
    "tail-call",
    "local-ref-call",
    "local-ref-tail-call",
    "imm-call",
    "imm-tail-call",
    "const-call",
    "const-tail-call",
    "local-ref-ret",
    "cond-apply",
    "case-match",
    "quasi",
    "return",
];

impl Insn {
    /// Dense opcode index, for dispatch counters and `OP_NAMES`.
    pub(crate) fn op_index(self) -> usize {
        match self {
            Insn::Imm(_) => 0,
            Insn::Const(_) => 1,
            Insn::LocalRef { .. } => 2,
            Insn::GlobalRef(_) => 3,
            Insn::LocalSet { .. } => 4,
            Insn::GlobalSet(_) => 5,
            Insn::GlobalDefine(_) => 6,
            Insn::MakeClosure(_) => 7,
            Insn::Pop => 8,
            Insn::Jmp(_) => 9,
            Insn::JmpIfFalse(_) => 10,
            Insn::JmpIfTrue(_) => 11,
            Insn::JmpIfFalseKeep(_) => 12,
            Insn::JmpIfTrueKeep(_) => 13,
            Insn::JmpIfFalsePop(_) => 14,
            Insn::SaveEnv => 15,
            Insn::PushFrame { .. } => 16,
            Insn::RestoreEnv => 17,
            Insn::BumpGensym => 18,
            Insn::EnterLoop { .. } => 19,
            Insn::EnterLoopCall { .. } => 20,
            Insn::Call { .. } => 21,
            Insn::TailCall { .. } => 22,
            Insn::LocalRefCall { .. } => 23,
            Insn::LocalRefTailCall { .. } => 24,
            Insn::ImmCall { .. } => 25,
            Insn::ImmTailCall { .. } => 26,
            Insn::ConstCall { .. } => 27,
            Insn::ConstTailCall { .. } => 28,
            Insn::LocalRefRet { .. } => 29,
            Insn::CondApply => 30,
            Insn::CaseMatch { .. } => 31,
            Insn::Quasi(_) => 32,
            Insn::Return => 33,
        }
    }

    /// Allocation-site label, matching the staged evaluator's `site_of`
    /// so per-site profiles agree across tiers. Insns that cannot
    /// allocate are grouped under `scheme.vm`.
    pub(crate) fn site(self) -> &'static str {
        match self {
            Insn::Imm(_) | Insn::ImmCall { .. } | Insn::ImmTailCall { .. } => "scheme.imm",
            Insn::Const(_) | Insn::ConstCall { .. } | Insn::ConstTailCall { .. } => "scheme.const",
            Insn::LocalRef { .. }
            | Insn::LocalRefCall { .. }
            | Insn::LocalRefTailCall { .. }
            | Insn::LocalRefRet { .. } => "scheme.local-ref",
            Insn::GlobalRef(_) => "scheme.global-ref",
            Insn::LocalSet { .. } => "scheme.local-set",
            Insn::GlobalSet(_) => "scheme.global-set",
            Insn::GlobalDefine(_) => "scheme.define",
            Insn::MakeClosure(_) => "scheme.lambda",
            Insn::PushFrame { .. } => "scheme.let",
            Insn::EnterLoop { .. } | Insn::EnterLoopCall { .. } => "scheme.named-let",
            Insn::Call { .. } | Insn::TailCall { .. } => "scheme.app",
            Insn::CondApply => "scheme.cond-arrow",
            Insn::CaseMatch { .. } => "scheme.case",
            Insn::Quasi(_) => "scheme.quasiquote",
            _ => "scheme.vm",
        }
    }
}

/// The result of [`compile_top`]: the top-level code object plus every
/// lambda compiled while lowering it, keyed by code-table index (to be
/// merged into `Interp::vm_tab`).
pub(crate) struct Compiled {
    /// The top-level form's code.
    pub co: Rc<CodeObject>,
    /// Newly compiled lambdas: `(code_tab index, compiled)`.
    pub lambdas: Vec<(usize, Rc<VmLambda>)>,
}

/// Shared compilation context: the interpreter's code table (read-only)
/// and the lambdas compiled so far.
struct Ctx<'tab> {
    code_tab: &'tab [Rc<LambdaCode>],
    out: Vec<(usize, Rc<VmLambda>)>,
    done: HashSet<usize>,
}

/// Compiles one analyzed top-level form. Runs the frame-slot audit
/// first — the VM's fixed layouts assume every (`depth`, `slot`) pair is
/// in range — then lowers the tree and, eagerly, every lambda it
/// creates (each code-table index has exactly one creation site, so the
/// static environment is fully known here).
pub(crate) fn compile_top(code_tab: &[Rc<LambdaCode>], code: &CodeRef) -> SResult<Compiled> {
    if let Err(e) = analyze::audit_frame_slots(code_tab, code, &mut Vec::new()) {
        return err(format!("compile: frame-slot audit failed: {e}"));
    }
    let mut cx = Ctx {
        code_tab,
        out: Vec::new(),
        done: HashSet::new(),
    };
    let co = compile_block(&mut cx, code)?;
    Ok(Compiled {
        co,
        lambdas: cx.out,
    })
}

/// Compiles just the lambda at `index` (and any lambdas its body
/// creates), for the VM's lazy fallback when a closure arrives from a
/// form the eager pass never saw.
pub(crate) fn compile_lambda(
    code_tab: &[Rc<LambdaCode>],
    index: usize,
) -> SResult<Vec<(usize, Rc<VmLambda>)>> {
    let mut cx = Ctx {
        code_tab,
        out: Vec::new(),
        done: HashSet::new(),
    };
    register_lambda(&mut cx, index)?;
    Ok(cx.out)
}

/// Compiles `code` into a self-contained code object ending in a return
/// (used for the top level, lambda clause bodies, and quasiquote sites).
fn compile_block(cx: &mut Ctx<'_>, code: &Code) -> SResult<Rc<CodeObject>> {
    let mut c = Compiler::new(cx);
    c.compile_tail(code)?;
    Ok(Rc::new(c.finish()))
}

/// Compiles the clauses of the lambda at `index`, if not already done.
fn register_lambda(cx: &mut Ctx<'_>, index: usize) -> SResult<()> {
    if !cx.done.insert(index) {
        return Ok(());
    }
    let Some(lc) = cx.code_tab.get(index).cloned() else {
        return err(format!("compile: lambda index {index} out of range"));
    };
    let mut clauses = Vec::with_capacity(lc.clauses.len());
    for clause in &lc.clauses {
        let body = compile_block(cx, &clause.body)?;
        clauses.push(VmClause {
            n_req: clause.n_req,
            variadic: clause.variadic,
            n_slots: clause.n_slots,
            body,
        });
    }
    cx.out.push((index, Rc::new(VmLambda { clauses })));
    Ok(())
}

/// Single-block bytecode emitter.
struct Compiler<'c, 'tab> {
    cx: &'c mut Ctx<'tab>,
    insns: Vec<Insn>,
    imms: Vec<Value>,
    consts: Vec<Rooted>,
    sites: Vec<Rc<GlobalSite>>,
    names: Vec<Rc<str>>,
    lambdas: Vec<LambdaRef>,
    quasis: Vec<QuasiBlock>,
    n_caches: usize,
    /// Fusion barrier: the instruction index at or after which no jump
    /// target lands yet. Fusing is only legal when the would-be-fused
    /// push is past every bound label, otherwise a jump could land
    /// between the push and the call.
    barrier: usize,
}

impl<'c, 'tab> Compiler<'c, 'tab> {
    fn new(cx: &'c mut Ctx<'tab>) -> Compiler<'c, 'tab> {
        Compiler {
            cx,
            insns: Vec::new(),
            imms: Vec::new(),
            consts: Vec::new(),
            sites: Vec::new(),
            names: Vec::new(),
            lambdas: Vec::new(),
            quasis: Vec::new(),
            n_caches: 0,
            barrier: 0,
        }
    }

    fn finish(self) -> CodeObject {
        CodeObject {
            insns: self.insns,
            imms: self.imms,
            consts: self.consts,
            sites: self.sites,
            names: self.names,
            lambdas: self.lambdas,
            quasis: self.quasis,
            caches: vec![Cell::new(CallCache::empty()); self.n_caches],
        }
    }

    // ---- pools ----------------------------------------------------

    fn imm(&mut self, v: Value) -> SResult<u32> {
        pool_push(&mut self.imms, v, "immediate")
    }

    fn konst(&mut self, r: &Rooted) -> SResult<u32> {
        pool_push(&mut self.consts, r.clone(), "constant")
    }

    fn site(&mut self, s: &Rc<GlobalSite>) -> SResult<u32> {
        pool_push(&mut self.sites, s.clone(), "global site")
    }

    fn name(&mut self, n: &Rc<str>) -> SResult<u16> {
        narrow(
            pool_push(&mut self.names, n.clone(), "name")? as usize,
            "name",
        )
    }

    fn lambda_ref(&mut self, index: usize, name: &Rooted) -> SResult<u32> {
        register_lambda(self.cx, index)?;
        pool_push(
            &mut self.lambdas,
            LambdaRef {
                index,
                name: name.clone(),
            },
            "lambda",
        )
    }

    fn cache(&mut self) -> SResult<u16> {
        let i = self.n_caches;
        self.n_caches += 1;
        narrow(i, "call cache")
    }

    // ---- emission -------------------------------------------------

    fn emit(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Emits a jump with a placeholder target; returns its index for
    /// [`Compiler::patch_here`].
    fn emit_jump(&mut self, mk: fn(u32) -> Insn) -> usize {
        let at = self.insns.len();
        self.insns.push(mk(u32::MAX));
        at
    }

    /// Binds the jump at `at` to the current position and raises the
    /// fusion barrier (a label now lands here).
    fn patch_here(&mut self, at: usize) -> SResult<()> {
        let target = narrow32(self.insns.len(), "jump target")?;
        set_jump_target(&mut self.insns[at], target);
        self.barrier = self.insns.len();
        Ok(())
    }

    // ---- expression compilation -----------------------------------

    /// Compiles `code` so it leaves exactly one value on the stack.
    fn compile_push(&mut self, code: &Code) -> SResult<()> {
        match code {
            Code::Imm(v) => {
                let i = self.imm(*v)?;
                self.emit(Insn::Imm(i));
            }
            Code::Const(r) => {
                let i = self.konst(r)?;
                self.emit(Insn::Const(i));
            }
            Code::LocalRef { depth, slot, name } => {
                let name = self.name(name)?;
                self.emit(Insn::LocalRef {
                    depth: narrow(*depth, "frame depth")?,
                    slot: narrow(*slot, "frame slot")?,
                    name,
                });
            }
            Code::GlobalRef(site) => {
                let i = self.site(site)?;
                self.emit(Insn::GlobalRef(i));
            }
            Code::LocalSet { depth, slot, value } => {
                self.compile_push(value)?;
                self.emit(Insn::LocalSet {
                    depth: narrow(*depth, "frame depth")?,
                    slot: narrow(*slot, "frame slot")?,
                });
            }
            Code::GlobalSet { site, value } => {
                self.compile_push(value)?;
                let i = self.site(site)?;
                self.emit(Insn::GlobalSet(i));
            }
            Code::GlobalDefine { site, value } => {
                self.compile_push(value)?;
                let i = self.site(site)?;
                self.emit(Insn::GlobalDefine(i));
            }
            Code::If { test, then_, else_ } => {
                self.compile_push(test)?;
                let to_else = self.emit_jump(Insn::JmpIfFalse);
                self.compile_push(then_)?;
                let to_end = self.emit_jump(Insn::Jmp);
                self.patch_here(to_else)?;
                match else_ {
                    Some(e) => self.compile_push(e)?,
                    None => {
                        let i = self.imm(Value::VOID)?;
                        self.emit(Insn::Imm(i));
                    }
                }
                self.patch_here(to_end)?;
            }
            Code::Lambda { index, name } => {
                let i = self.lambda_ref(*index, name)?;
                self.emit(Insn::MakeClosure(i));
            }
            Code::Seq(parts) => match parts.split_last() {
                None => {
                    let i = self.imm(Value::VOID)?;
                    self.emit(Insn::Imm(i));
                }
                Some((last, inits)) => {
                    for p in inits {
                        self.compile_push(p)?;
                        self.emit(Insn::Pop);
                    }
                    self.compile_push(last)?;
                }
            },
            Code::Let {
                n_slots,
                inits,
                body,
            } => {
                self.emit(Insn::SaveEnv);
                self.compile_let_frame(*n_slots, inits)?;
                self.compile_push(body)?;
                self.emit(Insn::RestoreEnv);
            }
            Code::NamedLet {
                index,
                name,
                args,
                bump_gensym,
            } => {
                if *bump_gensym {
                    self.emit(Insn::BumpGensym);
                }
                self.emit(Insn::SaveEnv);
                for a in args {
                    self.compile_push(a)?;
                }
                let lambda = self.lambda_ref(*index, name)?;
                self.emit(Insn::EnterLoopCall {
                    lambda: narrow(lambda as usize, "loop lambda")?,
                    argc: narrow(args.len(), "loop argc")?,
                });
            }
            Code::And(parts) => self.compile_and_or(parts, Insn::JmpIfFalseKeep, false)?,
            Code::Or(parts) => self.compile_and_or(parts, Insn::JmpIfTrueKeep, false)?,
            Code::When { test, want, body } => {
                self.compile_push(test)?;
                let to_void = self.emit_jump(if *want {
                    Insn::JmpIfFalse
                } else {
                    Insn::JmpIfTrue
                });
                self.compile_push(body)?;
                let to_end = self.emit_jump(Insn::Jmp);
                self.patch_here(to_void)?;
                let i = self.imm(Value::VOID)?;
                self.emit(Insn::Imm(i));
                self.patch_here(to_end)?;
            }
            Code::CondArrow { test, recv, rest } => {
                self.compile_push(test)?;
                let to_rest = self.emit_jump(Insn::JmpIfFalsePop);
                self.compile_push(recv)?;
                self.emit(Insn::CondApply);
                let to_end = self.emit_jump(Insn::Jmp);
                self.patch_here(to_rest)?;
                self.compile_push(rest)?;
                self.patch_here(to_end)?;
            }
            Code::Case { key, clauses } => self.compile_case(key, clauses, false)?,
            Code::App { op, args } => {
                self.compile_push(op)?;
                for a in args {
                    self.compile_push(a)?;
                }
                self.emit_call(args.len(), false)?;
            }
            Code::Quasi { template, sites } => {
                let mut compiled = Vec::with_capacity(sites.len());
                for s in sites {
                    compiled.push(compile_block(self.cx, s)?);
                }
                let i = pool_push(
                    &mut self.quasis,
                    QuasiBlock {
                        template: template.clone(),
                        sites: compiled,
                    },
                    "quasiquote",
                )?;
                self.emit(Insn::Quasi(i));
            }
        }
        Ok(())
    }

    /// Compiles `code` in tail position: every path ends in `Return`,
    /// `TailCall`, or `EnterLoop`.
    fn compile_tail(&mut self, code: &Code) -> SResult<()> {
        match code {
            Code::If { test, then_, else_ } => {
                self.compile_push(test)?;
                let to_else = self.emit_jump(Insn::JmpIfFalse);
                self.compile_tail(then_)?;
                self.patch_here(to_else)?;
                match else_ {
                    Some(e) => self.compile_tail(e)?,
                    None => {
                        let i = self.imm(Value::VOID)?;
                        self.emit(Insn::Imm(i));
                        self.emit(Insn::Return);
                    }
                }
            }
            Code::Seq(parts) => match parts.split_last() {
                None => {
                    let i = self.imm(Value::VOID)?;
                    self.emit(Insn::Imm(i));
                    self.emit(Insn::Return);
                }
                Some((last, inits)) => {
                    for p in inits {
                        self.compile_push(p)?;
                        self.emit(Insn::Pop);
                    }
                    self.compile_tail(last)?;
                }
            },
            Code::Let {
                n_slots,
                inits,
                body,
            } => {
                // Tail let: the activation's environment slot is simply
                // replaced, exactly like the staged `step_let`.
                self.compile_let_frame(*n_slots, inits)?;
                self.compile_tail(body)?;
            }
            Code::NamedLet {
                index,
                name,
                args,
                bump_gensym,
            } => {
                if *bump_gensym {
                    self.emit(Insn::BumpGensym);
                }
                for a in args {
                    self.compile_push(a)?;
                }
                let lambda = self.lambda_ref(*index, name)?;
                self.emit(Insn::EnterLoop {
                    lambda: narrow(lambda as usize, "loop lambda")?,
                    argc: narrow(args.len(), "loop argc")?,
                });
            }
            Code::And(parts) => self.compile_and_or(parts, Insn::JmpIfFalseKeep, true)?,
            Code::Or(parts) => self.compile_and_or(parts, Insn::JmpIfTrueKeep, true)?,
            Code::When { test, want, body } => {
                self.compile_push(test)?;
                let to_void = self.emit_jump(if *want {
                    Insn::JmpIfFalse
                } else {
                    Insn::JmpIfTrue
                });
                self.compile_tail(body)?;
                self.patch_here(to_void)?;
                let i = self.imm(Value::VOID)?;
                self.emit(Insn::Imm(i));
                self.emit(Insn::Return);
            }
            Code::CondArrow { test, recv, rest } => {
                self.compile_push(test)?;
                let to_rest = self.emit_jump(Insn::JmpIfFalsePop);
                self.compile_push(recv)?;
                self.emit(Insn::CondApply);
                self.emit(Insn::Return);
                self.patch_here(to_rest)?;
                self.compile_tail(rest)?;
            }
            Code::Case { key, clauses } => self.compile_case(key, clauses, true)?,
            Code::App { op, args } => {
                self.compile_push(op)?;
                for a in args {
                    self.compile_push(a)?;
                }
                self.emit_call(args.len(), true)?;
            }
            _ => {
                self.compile_push(code)?;
                self.emit_return();
            }
        }
        Ok(())
    }

    /// Emits init evaluation + `PushFrame` for a `let`/`letrec` frame.
    fn compile_let_frame(&mut self, n_slots: usize, inits: &[CodeRef]) -> SResult<()> {
        for init in inits {
            self.compile_push(init)?;
        }
        self.emit(Insn::PushFrame {
            n_slots: narrow(n_slots, "let slots")?,
            n_inits: narrow(inits.len(), "let inits")?,
        });
        Ok(())
    }

    /// `and`/`or`: short-circuit through keep-jumps to a common end.
    fn compile_and_or(
        &mut self,
        parts: &[CodeRef],
        jump: fn(u32) -> Insn,
        tail: bool,
    ) -> SResult<()> {
        // The analyzer folds the empty forms to immediates, so `parts`
        // is non-empty here.
        let (last, inits) = parts.split_last().expect("analyzer folds empty and/or");
        let mut outs = Vec::with_capacity(inits.len());
        for p in inits {
            self.compile_push(p)?;
            outs.push(self.emit_jump(jump));
        }
        if tail {
            self.compile_tail(last)?;
            for at in outs {
                self.patch_here(at)?;
            }
            if !inits.is_empty() {
                self.emit(Insn::Return);
            }
        } else {
            self.compile_push(last)?;
            for at in outs {
                self.patch_here(at)?;
            }
        }
        Ok(())
    }

    /// `case`: key on the stack, `CaseMatch` per datum clause, bodies
    /// popping the key first.
    fn compile_case(
        &mut self,
        key: &Code,
        clauses: &[analyze::CaseClause],
        tail: bool,
    ) -> SResult<()> {
        self.compile_push(key)?;
        let mut dispatches = Vec::with_capacity(clauses.len());
        let mut to_else = None;
        for clause in clauses {
            match &clause.datums {
                Some(datums) => {
                    let d = self.konst(datums)?;
                    let at = self.insns.len();
                    self.emit(Insn::CaseMatch {
                        datums: d,
                        target: u32::MAX,
                    });
                    dispatches.push(Some(at));
                }
                None => {
                    dispatches.push(None);
                    to_else = Some(self.emit_jump(Insn::Jmp));
                    break; // an else clause always matches
                }
            }
        }
        // No clause matched: drop the key, produce void.
        self.emit(Insn::Pop);
        let i = self.imm(Value::VOID)?;
        self.emit(Insn::Imm(i));
        let mut to_end = Vec::new();
        if tail {
            self.emit(Insn::Return);
        } else {
            to_end.push(self.emit_jump(Insn::Jmp));
        }
        for (clause, at) in clauses.iter().zip(dispatches) {
            let target = narrow32(self.insns.len(), "case target")?;
            self.barrier = self.insns.len();
            match at {
                Some(at) => {
                    if let Insn::CaseMatch { target: t, .. } = &mut self.insns[at] {
                        *t = target;
                    }
                }
                None => {
                    if let Some(at) = to_else.take() {
                        set_jump_target(&mut self.insns[at], target);
                    }
                }
            }
            self.emit(Insn::Pop);
            if tail {
                self.compile_tail(&clause.body)?;
            } else {
                self.compile_push(&clause.body)?;
                to_end.push(self.emit_jump(Insn::Jmp));
            }
        }
        for at in to_end {
            self.patch_here(at)?;
        }
        Ok(())
    }

    /// Emits a call, fusing the preceding value push when no jump target
    /// separates them.
    fn emit_call(&mut self, argc: usize, tail: bool) -> SResult<()> {
        let argc = narrow(argc, "call argc")?;
        let cache = self.cache()?;
        if self.insns.len() > self.barrier {
            let fused = match *self.insns.last().expect("non-empty past barrier") {
                Insn::LocalRef { depth, slot, name } => Some(if tail {
                    Insn::LocalRefTailCall {
                        depth,
                        slot,
                        name,
                        argc,
                        cache,
                    }
                } else {
                    Insn::LocalRefCall {
                        depth,
                        slot,
                        name,
                        argc,
                        cache,
                    }
                }),
                Insn::Imm(imm) => Some(if tail {
                    Insn::ImmTailCall { imm, argc, cache }
                } else {
                    Insn::ImmCall { imm, argc, cache }
                }),
                Insn::Const(konst) => Some(if tail {
                    Insn::ConstTailCall { konst, argc, cache }
                } else {
                    Insn::ConstCall { konst, argc, cache }
                }),
                _ => None,
            };
            if let Some(f) = fused {
                *self.insns.last_mut().expect("non-empty past barrier") = f;
                return Ok(());
            }
        }
        self.emit(if tail {
            Insn::TailCall { argc, cache }
        } else {
            Insn::Call { argc, cache }
        });
        Ok(())
    }

    /// Emits a return, fusing a preceding `LocalRef`.
    fn emit_return(&mut self) {
        if self.insns.len() > self.barrier {
            if let Some(&Insn::LocalRef { depth, slot, name }) = self.insns.last() {
                *self.insns.last_mut().expect("non-empty past barrier") =
                    Insn::LocalRefRet { depth, slot, name };
                return;
            }
        }
        self.emit(Insn::Return);
    }
}

/// Pushes into a pool, returning the new index as `u32`.
fn pool_push<T>(pool: &mut Vec<T>, item: T, what: &str) -> SResult<u32> {
    let i = pool.len();
    pool.push(item);
    narrow32(i, what)
}

fn narrow32(n: usize, what: &str) -> SResult<u32> {
    u32::try_from(n)
        .map_err(|_| crate::error::SchemeError::new(format!("compile: {what} overflow")))
}

fn narrow(n: usize, what: &str) -> SResult<u16> {
    u16::try_from(n)
        .map_err(|_| crate::error::SchemeError::new(format!("compile: {what} overflow")))
}

/// Rewrites the target operand of a jump-family insn.
fn set_jump_target(insn: &mut Insn, target: u32) {
    match insn {
        Insn::Jmp(t)
        | Insn::JmpIfFalse(t)
        | Insn::JmpIfTrue(t)
        | Insn::JmpIfFalseKeep(t)
        | Insn::JmpIfTrueKeep(t)
        | Insn::JmpIfFalsePop(t)
        | Insn::CaseMatch { target: t, .. } => *t = target,
        other => unreachable!("not a jump: {other:?}"),
    }
}

// ---- disassembler -------------------------------------------------

/// Pretty-prints a compiled code object: one line per instruction with
/// operands resolved against the pools (constants printed through the
/// writer, global sites by name) plus the allocation-site label.
pub(crate) fn disassemble(heap: &Heap, co: &CodeObject) -> String {
    let mut out = String::new();
    disassemble_into(heap, co, "", &mut out);
    out
}

fn disassemble_into(heap: &Heap, co: &CodeObject, indent: &str, out: &mut String) {
    use std::fmt::Write as _;
    for (pc, insn) in co.insns.iter().enumerate() {
        let name = OP_NAMES[insn.op_index()];
        let _ = write!(out, "{indent}{pc:4}  {name:<20}");
        let operands = describe_operands(heap, co, *insn);
        if !operands.is_empty() {
            let _ = write!(out, " {operands}");
        }
        let site = insn.site();
        if site != "scheme.vm" {
            let _ = write!(out, "  ; {site}");
        }
        out.push('\n');
    }
    for (i, q) in co.quasis.iter().enumerate() {
        let _ = writeln!(
            out,
            "{indent}quasi[{i}] template {}",
            write_value(heap, q.template.get())
        );
        for (j, s) in q.sites.iter().enumerate() {
            let _ = writeln!(out, "{indent}quasi[{i}] site {j}:");
            disassemble_into(heap, s, &format!("{indent}  "), out);
        }
    }
}

fn describe_operands(heap: &Heap, co: &CodeObject, insn: Insn) -> String {
    let imm = |i: u32| write_value(heap, co.imms[i as usize]);
    let konst = |i: u32| write_value(heap, co.consts[i as usize].get());
    let site = |i: u32| co.sites[i as usize].name.to_string();
    let lam = |i: usize| {
        let l = &co.lambdas[i];
        let name = l.name.get();
        if name == Value::FALSE {
            format!("code[{}]", l.index)
        } else {
            format!("code[{}] ({})", l.index, write_value(heap, name))
        }
    };
    match insn {
        Insn::Imm(i) => imm(i),
        Insn::Const(i) => konst(i),
        Insn::LocalRef { depth, slot, name } | Insn::LocalRefRet { depth, slot, name } => {
            format!("depth {depth} slot {slot} ({})", co.names[name as usize])
        }
        Insn::GlobalRef(i) | Insn::GlobalSet(i) | Insn::GlobalDefine(i) => site(i),
        Insn::LocalSet { depth, slot } => format!("depth {depth} slot {slot}"),
        Insn::MakeClosure(i) => lam(i as usize),
        Insn::Jmp(t)
        | Insn::JmpIfFalse(t)
        | Insn::JmpIfTrue(t)
        | Insn::JmpIfFalseKeep(t)
        | Insn::JmpIfTrueKeep(t)
        | Insn::JmpIfFalsePop(t) => format!("-> {t}"),
        Insn::PushFrame { n_slots, n_inits } => format!("slots {n_slots} inits {n_inits}"),
        Insn::EnterLoop { lambda, argc } | Insn::EnterLoopCall { lambda, argc } => {
            format!("{} argc {argc}", lam(lambda as usize))
        }
        Insn::Call { argc, cache } | Insn::TailCall { argc, cache } => {
            format!("argc {argc} cache {cache}")
        }
        Insn::LocalRefCall {
            depth,
            slot,
            name,
            argc,
            cache,
        }
        | Insn::LocalRefTailCall {
            depth,
            slot,
            name,
            argc,
            cache,
        } => format!(
            "depth {depth} slot {slot} ({}) argc {argc} cache {cache}",
            co.names[name as usize]
        ),
        Insn::ImmCall {
            imm: i,
            argc,
            cache,
        }
        | Insn::ImmTailCall {
            imm: i,
            argc,
            cache,
        } => {
            format!("{} argc {argc} cache {cache}", imm(i))
        }
        Insn::ConstCall {
            konst: k,
            argc,
            cache,
        }
        | Insn::ConstTailCall {
            konst: k,
            argc,
            cache,
        } => {
            format!("{} argc {argc} cache {cache}", konst(k))
        }
        Insn::CaseMatch { datums, target } => format!("{} -> {target}", konst(datums)),
        Insn::Quasi(i) => format!("quasi[{i}]"),
        Insn::Pop
        | Insn::SaveEnv
        | Insn::RestoreEnv
        | Insn::BumpGensym
        | Insn::CondApply
        | Insn::Return => String::new(),
    }
}
