//! The bytecode VM: a direct-threaded dispatch loop over the flat
//! [`CodeObject`]s produced by [`crate::compile`].
//!
//! The VM is the third evaluation tier ([`crate::EvalMode::Vm`]). Its
//! contract with the other two tiers is *observable equivalence*: the
//! only collection safe point is procedure application (the same
//! `maybe_collect` dance as `apply_staged`, including the
//! collect-handler re-entrancy guard), every allocation goes through the
//! same heap entry points in the same order, and every error message is
//! byte-identical. The three-way differential suite pins this down.
//!
//! Execution model: one [`Interp::vm_run`] activation per code object,
//! rooted at stack slot `base` which holds the current environment frame
//! (`#f` at top level). All operand-stack slots live in the interpreter's
//! [`RootedVec`](guardians_gc::RootedVec) shadow stack, so a collection
//! at the application safe point can relocate freely. Tail calls switch
//! code objects in place; non-tail calls run a nested activation and
//! count one frame on the same `depth` spine the staged evaluator uses,
//! so closure-call recursion errors out at the same nesting level with
//! the same message.
//!
//! Known (bounded) divergences from the staged tier, none observable by
//! the differential suites: the staged evaluator also bumps `depth`
//! transiently while evaluating sub-expressions (operands, `let` inits),
//! so programs that exhaust the ~400-frame budget *inside* an operand can
//! error a couple of levels earlier there than here. The error string is
//! identical and the property generators stay far below the limit.

use crate::analyze::CodeRef;
use crate::compile::{self, CallCache, CodeObject, Insn, VmLambda, OP_COUNT};
use crate::error::{err, SResult};
use crate::interp::{Interp, QuasiSites};
use guardians_gc::Value;
use guardians_runtime::rtags;
use guardians_runtime::symtab::SymbolTable;
use std::cell::Cell;
use std::rc::Rc;

/// Metrics keys for the per-opcode dispatch counters, parallel to
/// [`OP_NAMES`] (the registry wants `&'static str` keys).
const DISPATCH_KEYS: [&str; OP_COUNT] = [
    "vm.dispatch.imm",
    "vm.dispatch.const",
    "vm.dispatch.local-ref",
    "vm.dispatch.global-ref",
    "vm.dispatch.local-set",
    "vm.dispatch.global-set",
    "vm.dispatch.global-define",
    "vm.dispatch.make-closure",
    "vm.dispatch.pop",
    "vm.dispatch.jmp",
    "vm.dispatch.jmp-if-false",
    "vm.dispatch.jmp-if-true",
    "vm.dispatch.jmp-if-false-keep",
    "vm.dispatch.jmp-if-true-keep",
    "vm.dispatch.jmp-if-false-pop",
    "vm.dispatch.save-env",
    "vm.dispatch.push-frame",
    "vm.dispatch.restore-env",
    "vm.dispatch.bump-gensym",
    "vm.dispatch.enter-loop",
    "vm.dispatch.enter-loop-call",
    "vm.dispatch.call",
    "vm.dispatch.tail-call",
    "vm.dispatch.local-ref-call",
    "vm.dispatch.local-ref-tail-call",
    "vm.dispatch.imm-call",
    "vm.dispatch.imm-tail-call",
    "vm.dispatch.const-call",
    "vm.dispatch.const-tail-call",
    "vm.dispatch.local-ref-ret",
    "vm.dispatch.cond-apply",
    "vm.dispatch.case-match",
    "vm.dispatch.quasi",
    "vm.dispatch.return",
];

/// What a call site resolved to: an immediate value (primitive,
/// guardian) or a closure body to enter.
pub(crate) enum VmApplied {
    /// The application produced a value directly.
    Value(Value),
    /// A closure: its frame is installed at `base`, enter this body.
    Enter(Rc<CodeObject>),
}

/// How a tail call left the dispatch loop.
enum TailStep {
    /// The application produced the activation's final value.
    Done(Value),
    /// Continue dispatching in this code object.
    Continue(Rc<CodeObject>),
}

impl Interp {
    /// Compiles and runs one analyzed top-level form (the VM analogue of
    /// `analyze_top` + `exec_top`).
    pub(crate) fn vm_eval_top(&mut self, code: &CodeRef) -> SResult<Value> {
        let compiled = compile::compile_top(&self.code_tab, code)?;
        self.install_vm_lambdas(compiled.lambdas);
        self.vm_top(compiled.co)
    }

    /// Merges freshly compiled lambdas into `vm_tab`, keyed by their
    /// code-table index.
    fn install_vm_lambdas(&mut self, lambdas: Vec<(usize, Rc<VmLambda>)>) {
        for (index, vl) in lambdas {
            if self.vm_tab.len() <= index {
                self.vm_tab.resize(index + 1, None);
            }
            self.vm_tab[index] = Some(vl);
        }
    }

    /// The compiled lambda behind a closure's code-table index,
    /// compiling lazily if a closure reaches the VM from a form the
    /// compiler has not seen (the eager pass in `compile_top` makes
    /// this the cold path).
    fn vm_lambda(&mut self, index: usize) -> SResult<Rc<VmLambda>> {
        if let Some(Some(vl)) = self.vm_tab.get(index) {
            return Ok(vl.clone());
        }
        let lambdas = compile::compile_lambda(&self.code_tab, index)?;
        self.install_vm_lambdas(lambdas);
        match self.vm_tab.get(index) {
            Some(Some(vl)) => Ok(vl.clone()),
            _ => err(format!("vm: no compiled lambda for index {index}")),
        }
    }

    /// Runs a compiled top-level form: the VM mirror of `exec_top`,
    /// including the depth guard and the `#f` bottom environment.
    pub(crate) fn vm_top(&mut self, co: Rc<CodeObject>) -> SResult<Value> {
        self.profile = self.heap.site_profile_enabled();
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let base = self.stack.len();
        self.stack.push(Value::FALSE);
        let result = self.vm_run(co, base);
        self.stack.truncate(base);
        self.depth -= 1;
        if self.profile {
            self.flush_dispatch_counters();
        }
        result
    }

    /// Publishes the accumulated per-opcode dispatch counts as
    /// `vm.dispatch.*` metrics counters (profiling mode only).
    fn flush_dispatch_counters(&mut self) {
        for (i, &n) in self.vm_counters.iter().enumerate() {
            if n > 0 {
                self.heap.metrics_mut().set_counter(DISPATCH_KEYS[i], n);
            }
        }
    }

    /// Runs a quasiquote unquote site as a fresh non-tail activation
    /// sharing the environment at `base` (the VM mirror of `exec_sub`).
    pub(crate) fn vm_sub(&mut self, co: &Rc<CodeObject>, base: usize) -> SResult<Value> {
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let sub = self.stack.len();
        let env = self.stack.get(base);
        self.stack.push(env);
        let result = self.vm_run(co.clone(), sub);
        self.stack.truncate(sub);
        self.depth -= 1;
        result
    }

    /// Applies a procedure value to arguments in VM mode (backs
    /// [`Interp::apply`] for primitives like `map` and for embedders).
    pub(crate) fn vm_apply_values(&mut self, f: Value, args: &[Value]) -> SResult<Value> {
        let base = self.stack.len();
        self.stack.push(Value::FALSE);
        let op_slot = self.stack.push(f);
        let args_base = self.stack.len();
        for &a in args {
            self.stack.push(a);
        }
        let result = match self.vm_apply(base, op_slot, args_base, args.len(), None) {
            Ok(VmApplied::Value(v)) => Ok(v),
            Ok(VmApplied::Enter(body)) => self.vm_run(body, base),
            Err(e) => Err(e),
        };
        self.stack.truncate(base);
        result
    }

    /// The dispatch loop. Slot `base` holds the activation's environment
    /// frame; everything above it is the operand stack (all rooted).
    ///
    /// Like the staged `exec_step`, the insn bodies with more than a
    /// couple of locals live in their own `vm_step_*` methods: a
    /// monolithic match gives every arm's locals a distinct slot in one
    /// giant frame (debug builds don't coalesce), and this frame sits on
    /// the ~400-deep non-tail recursion spine.
    fn vm_run(&mut self, mut co: Rc<CodeObject>, base: usize) -> SResult<Value> {
        self.stack.truncate(base + 1);
        let mut pc = 0usize;
        loop {
            let insn = co.insns[pc];
            pc += 1;
            if self.profile {
                // Attribute allocations to the insn kind, matching the
                // staged evaluator's `site_of` labels; count dispatches.
                self.heap.set_alloc_site(insn.site());
                self.vm_counters[insn.op_index()] += 1;
            }
            match insn {
                Insn::Imm(i) => {
                    self.stack.push(co.imms[i as usize]);
                }
                Insn::Const(i) => {
                    self.stack.push(co.consts[i as usize].get());
                }
                Insn::LocalRef { depth, slot, name } => {
                    let v = self.vm_local_ref(&co, base, depth, slot, name)?;
                    self.stack.push(v);
                }
                Insn::GlobalRef(i) => self.vm_step_global_ref(&co, i)?,
                Insn::LocalSet { depth, slot } => self.vm_step_local_set(base, depth, slot),
                Insn::GlobalSet(i) => self.vm_step_global_set(&co, i)?,
                Insn::GlobalDefine(i) => self.vm_step_global_define(&co, i),
                Insn::MakeClosure(i) => self.vm_step_make_closure(&co, base, i),
                Insn::Pop => {
                    self.stack.pop();
                }
                Insn::Jmp(t) => pc = t as usize,
                Insn::JmpIfFalse(t) => {
                    let v = self.stack.pop().expect("vm: jmp underflow");
                    if !v.is_truthy() {
                        pc = t as usize;
                    }
                }
                Insn::JmpIfTrue(t) => {
                    let v = self.stack.pop().expect("vm: jmp underflow");
                    if v.is_truthy() {
                        pc = t as usize;
                    }
                }
                Insn::JmpIfFalseKeep(t) => {
                    let v = self.stack.get(self.stack.len() - 1);
                    if !v.is_truthy() {
                        pc = t as usize;
                    } else {
                        self.stack.pop();
                    }
                }
                Insn::JmpIfTrueKeep(t) => {
                    let v = self.stack.get(self.stack.len() - 1);
                    if v.is_truthy() {
                        pc = t as usize;
                    } else {
                        self.stack.pop();
                    }
                }
                Insn::JmpIfFalsePop(t) => {
                    let v = self.stack.get(self.stack.len() - 1);
                    if !v.is_truthy() {
                        self.stack.pop();
                        pc = t as usize;
                    }
                }
                Insn::SaveEnv => {
                    let env = self.stack.get(base);
                    self.stack.push(env);
                }
                Insn::PushFrame { n_slots, n_inits } => {
                    self.vm_step_push_frame(base, n_slots, n_inits)
                }
                Insn::RestoreEnv => {
                    let v = self.stack.pop().expect("vm: restore underflow");
                    let saved = self.stack.pop().expect("vm: restore underflow");
                    self.stack.set(base, saved);
                    self.stack.push(v);
                }
                Insn::BumpGensym => {
                    // Lockstep with the naive `do` desugar's gensym.
                    self.gensym_counter += 1;
                }
                Insn::EnterLoop { lambda, argc } => {
                    let body = self.vm_enter_loop(&co, lambda, argc, base)?;
                    co = body;
                    pc = 0;
                    self.stack.truncate(base + 1);
                }
                Insn::EnterLoopCall { lambda, argc } => {
                    self.vm_step_enter_loop_call(&co, lambda, argc)?
                }
                Insn::Call { argc, cache } => self.vm_call(&co, argc, cache)?,
                Insn::TailCall { argc, cache } => {
                    match self.vm_tail_call(&co, base, argc, cache)? {
                        TailStep::Done(v) => return Ok(v),
                        TailStep::Continue(body) => {
                            co = body;
                            pc = 0;
                            self.stack.truncate(base + 1);
                        }
                    }
                }
                Insn::LocalRefCall {
                    depth,
                    slot,
                    name,
                    argc,
                    cache,
                } => {
                    let v = self.vm_local_ref(&co, base, depth, slot, name)?;
                    self.stack.push(v);
                    self.vm_call(&co, argc, cache)?;
                }
                Insn::LocalRefTailCall {
                    depth,
                    slot,
                    name,
                    argc,
                    cache,
                } => {
                    let v = self.vm_local_ref(&co, base, depth, slot, name)?;
                    self.stack.push(v);
                    match self.vm_tail_call(&co, base, argc, cache)? {
                        TailStep::Done(v) => return Ok(v),
                        TailStep::Continue(body) => {
                            co = body;
                            pc = 0;
                            self.stack.truncate(base + 1);
                        }
                    }
                }
                Insn::ImmCall { imm, argc, cache } => {
                    self.stack.push(co.imms[imm as usize]);
                    self.vm_call(&co, argc, cache)?;
                }
                Insn::ImmTailCall { imm, argc, cache } => {
                    self.stack.push(co.imms[imm as usize]);
                    match self.vm_tail_call(&co, base, argc, cache)? {
                        TailStep::Done(v) => return Ok(v),
                        TailStep::Continue(body) => {
                            co = body;
                            pc = 0;
                            self.stack.truncate(base + 1);
                        }
                    }
                }
                Insn::ConstCall { konst, argc, cache } => {
                    self.stack.push(co.consts[konst as usize].get());
                    self.vm_call(&co, argc, cache)?;
                }
                Insn::ConstTailCall { konst, argc, cache } => {
                    self.stack.push(co.consts[konst as usize].get());
                    match self.vm_tail_call(&co, base, argc, cache)? {
                        TailStep::Done(v) => return Ok(v),
                        TailStep::Continue(body) => {
                            co = body;
                            pc = 0;
                            self.stack.truncate(base + 1);
                        }
                    }
                }
                Insn::LocalRefRet { depth, slot, name } => {
                    return self.vm_local_ref(&co, base, depth, slot, name);
                }
                Insn::CondApply => self.vm_step_cond_apply()?,
                Insn::CaseMatch { datums, target } => {
                    if self.vm_step_case_match(&co, datums) {
                        pc = target as usize;
                    }
                }
                Insn::Quasi(i) => self.vm_step_quasi(&co, base, i)?,
                Insn::Return => {
                    return Ok(self.stack.pop().expect("vm: return underflow"));
                }
            }
        }
    }

    /// Reads a lexical variable, mirroring `step_local_ref` (including
    /// the slot-accounting debug assertion and the uninitialized error).
    fn vm_local_ref(
        &mut self,
        co: &CodeObject,
        base: usize,
        depth: u16,
        slot: u16,
        name: u16,
    ) -> SResult<Value> {
        let env = self.stack.get(base);
        // Audited layout: `audit_frame_slots` proved every (depth, slot)
        // pair in range before this code object existed.
        let mut frame = env;
        for _ in 0..depth {
            frame = self.heap.record_ref_audited(frame, 0);
        }
        debug_assert!(
            1 + (slot as usize) < self.heap.record_len(frame),
            "frame-slot accounting: {} resolved to slot {slot} in a frame of {} slots",
            co.names[name as usize],
            self.heap.record_len(frame) - 1
        );
        let v = self.heap.record_ref_audited(frame, 1 + slot as usize);
        if v == Value::UNBOUND {
            return err(format!(
                "variable {} used before initialization",
                co.names[name as usize]
            ));
        }
        Ok(v)
    }

    /// Reads a global through the per-site inline cache, warming it on
    /// first use (shared with the staged evaluator via `try_site_cell`).
    fn vm_step_global_ref(&mut self, co: &CodeObject, i: u32) -> SResult<()> {
        let site = &co.sites[i as usize];
        let cell = match self.try_site_cell(site) {
            Some(c) => c,
            None => return err(format!("unbound variable: {}", site.name)),
        };
        let v = self.heap.box_ref(cell);
        if v == Value::UNBOUND {
            return err(format!("unbound variable: {}", site.name));
        }
        self.stack.push(v);
        Ok(())
    }

    /// `set!` on a lexical variable.
    fn vm_step_local_set(&mut self, base: usize, depth: u16, slot: u16) {
        let v = self.stack.pop().expect("vm: local-set underflow");
        let env = self.stack.get(base);
        let mut frame = env;
        for _ in 0..depth {
            frame = self.heap.record_ref_audited(frame, 0);
        }
        debug_assert!(
            1 + (slot as usize) < self.heap.record_len(frame),
            "frame-slot accounting: set! target slot {slot} in a frame of {} slots",
            self.heap.record_len(frame) - 1
        );
        self.heap.record_set_audited(frame, 1 + slot as usize, v);
        self.stack.push(Value::VOID);
    }

    /// `set!` on a global. The value is popped before the bound check so
    /// the stack discipline matches the staged evaluator (which evaluates
    /// the value expression before checking the binding).
    fn vm_step_global_set(&mut self, co: &CodeObject, i: u32) -> SResult<()> {
        let v = self.stack.pop().expect("vm: global-set underflow");
        let site = &co.sites[i as usize];
        let cell = match self.try_site_cell(site) {
            Some(c) if self.heap.box_ref(c) != Value::UNBOUND => c,
            _ => return err(format!("set!: unbound variable: {}", site.name)),
        };
        self.heap.box_set(cell, v);
        self.stack.push(Value::VOID);
        Ok(())
    }

    /// Top-level `define`: binds through the symbol table's global cell
    /// and warms the site cache so later refs hit it.
    fn vm_step_global_define(&mut self, co: &CodeObject, i: u32) {
        let v = self.stack.pop().expect("vm: define underflow");
        let site = &co.sites[i as usize];
        let sym = site.sym.get();
        let cell = SymbolTable::global_cell(&mut self.heap, sym);
        self.heap.box_set(cell, v);
        if site.cell.borrow().is_none() {
            let rooted = self.heap.root(cell);
            *site.cell.borrow_mut() = Some(rooted);
        }
        self.stack.push(Value::VOID);
    }

    /// Builds a compiled-closure record over the current environment.
    fn vm_step_make_closure(&mut self, co: &CodeObject, base: usize, i: u32) {
        let l = &co.lambdas[i as usize];
        let env = self.stack.get(base);
        let idx = Value::fixnum(l.index as i64);
        let nm = l.name.get();
        let closure = self
            .heap
            .make_record(rtags::compiled_closure(), &[idx, env, nm]);
        self.stack.push(closure);
    }

    /// Materializes a `let` frame from the initializer values sitting on
    /// the operand stack.
    fn vm_step_push_frame(&mut self, base: usize, n_slots: u16, n_inits: u16) {
        let n_inits = n_inits as usize;
        let vals_base = self.stack.len() - n_inits;
        // Allocation never collects: the raw frame pointer stays valid
        // while the slots are filled.
        let frame =
            self.heap
                .make_record_filled(rtags::frame(), 1 + n_slots as usize, Value::UNBOUND);
        let parent = self.stack.get(base);
        self.heap.record_set_audited(frame, 0, parent);
        for i in 0..n_inits {
            let v = self.stack.get(vals_base + i);
            self.heap.record_set_audited(frame, 1 + i, v);
        }
        self.stack.truncate(vals_base);
        self.stack.set(base, frame);
    }

    /// A non-tail named-`let` entry: one frame on the recursion spine,
    /// the loop body as a nested activation rooted at the saved-env slot.
    fn vm_step_enter_loop_call(&mut self, co: &CodeObject, lambda: u16, argc: u16) -> SResult<()> {
        let env_slot = self.stack.len() - argc as usize - 1;
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let result = match self.vm_enter_loop(co, lambda, argc, env_slot) {
            Ok(body) => self.vm_run(body, env_slot),
            Err(e) => Err(e),
        };
        self.stack.truncate(env_slot);
        self.depth -= 1;
        let v = result?;
        self.stack.push(v);
        Ok(())
    }

    /// Non-tail application of a `cond` `=>` receiver, exactly like the
    /// naive/staged arrow paths. No collection can run between the pops
    /// and `apply` re-rooting the values.
    fn vm_step_cond_apply(&mut self) -> SResult<()> {
        let f = self.stack.pop().expect("vm: cond-apply underflow");
        let v = self.stack.pop().expect("vm: cond-apply underflow");
        let result = self.apply(f, &[v])?;
        self.stack.push(result);
        Ok(())
    }

    /// Walks one `case` clause's datum list against the key on top of the
    /// stack; returns whether the clause matched. Matching neither
    /// allocates nor collects, so the raw key stays valid across the walk.
    fn vm_step_case_match(&mut self, co: &CodeObject, datums: u32) -> bool {
        let key = self.stack.get(self.stack.len() - 1);
        let mut d = co.consts[datums as usize].get();
        while self.heap.is_pair(d) {
            if self.heap.eqv(self.heap.car(d), key) {
                return true;
            }
            d = self.heap.cdr(d);
        }
        false
    }

    /// Expands a quasiquote template via the shared `exec_quasi` walker,
    /// feeding it this block's compiled unquote sites.
    fn vm_step_quasi(&mut self, co: &CodeObject, base: usize, i: u32) -> SResult<()> {
        let q = &co.quasis[i as usize];
        let t = q.template.get();
        let mut cursor = 0;
        let v = self.exec_quasi(base, t, 1, &QuasiSites::Vm(&q.sites), &mut cursor)?;
        self.stack.push(v);
        Ok(())
    }

    /// A non-tail call: counts one frame on the recursion spine (the VM
    /// analogue of the `exec_sub` that reaches a non-tail `App`), runs
    /// closure bodies as a nested activation rooted at the operator
    /// slot, and pushes the result.
    fn vm_call(&mut self, co: &CodeObject, argc: u16, cache: u16) -> SResult<()> {
        let argc = argc as usize;
        let op_slot = self.stack.len() - argc - 1;
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let result = match self.vm_apply(
            op_slot,
            op_slot,
            op_slot + 1,
            argc,
            Some(&co.caches[cache as usize]),
        ) {
            Ok(VmApplied::Value(v)) => Ok(v),
            Ok(VmApplied::Enter(body)) => self.vm_run(body, op_slot),
            Err(e) => Err(e),
        };
        self.stack.truncate(op_slot);
        self.depth -= 1;
        let v = result?;
        self.stack.push(v);
        Ok(())
    }

    /// A tail call: reuses this activation, installing a closure's frame
    /// at `base` (the staged `Applied::Tail` path).
    fn vm_tail_call(
        &mut self,
        co: &CodeObject,
        base: usize,
        argc: u16,
        cache: u16,
    ) -> SResult<TailStep> {
        let argc = argc as usize;
        let op_slot = self.stack.len() - argc - 1;
        match self.vm_apply(
            base,
            op_slot,
            op_slot + 1,
            argc,
            Some(&co.caches[cache as usize]),
        )? {
            VmApplied::Value(v) => Ok(TailStep::Done(v)),
            VmApplied::Enter(body) => Ok(TailStep::Continue(body)),
        }
    }

    /// Named-`let` entry: builds the loop closure + frame exactly like
    /// `step_named_let` (letrec-style self-reference, no safe point) and
    /// returns the selected clause body. `env_slot` is the activation's
    /// environment slot (`base` for the tail form, the `SaveEnv` slot
    /// for the nested form).
    fn vm_enter_loop(
        &mut self,
        co: &CodeObject,
        lambda: u16,
        argc: u16,
        env_slot: usize,
    ) -> SResult<Rc<CodeObject>> {
        let argc = argc as usize;
        let args_base = self.stack.len() - argc;
        let lref = &co.lambdas[lambda as usize];
        let index = lref.index;
        let nm = lref.name.get();
        // One-slot frame holding the loop closure (letrec-style
        // self-reference).
        let name_frame = self
            .heap
            .make_record_filled(rtags::frame(), 2, Value::UNBOUND);
        let parent = self.stack.get(env_slot);
        self.heap.record_set_audited(name_frame, 0, parent);
        let idx_v = Value::fixnum(index as i64);
        let closure = self
            .heap
            .make_record(rtags::compiled_closure(), &[idx_v, name_frame, nm]);
        self.heap.record_set_audited(name_frame, 1, closure);
        let vl = self.vm_lambda(index)?;
        let ci = select_vm_clause(&vl, argc)?;
        let clause = &vl.clauses[ci];
        let frame =
            self.heap
                .make_record_filled(rtags::frame(), 1 + clause.n_slots, Value::UNBOUND);
        self.heap.record_set_audited(frame, 0, name_frame);
        for i in 0..argc {
            let v = self.stack.get(args_base + i);
            self.heap.record_set_audited(frame, 1 + i, v);
        }
        // No safe point here: neither of the other tiers collects when
        // entering a loop body.
        self.stack.set(env_slot, frame);
        Ok(clause.body.clone())
    }

    /// The application safe point, mirroring `apply_staged` exactly:
    /// `maybe_collect` + collect-handler dance, then dispatch on the
    /// operator. Closures install their frame at `base` and return the
    /// clause body; `cache` (when present) is the call site's
    /// monomorphic inline cache, skipping clause selection on a hit.
    pub(crate) fn vm_apply(
        &mut self,
        base: usize,
        op_slot: usize,
        args_base: usize,
        argc: usize,
        cache: Option<&Cell<CallCache>>,
    ) -> SResult<VmApplied> {
        if self.profile {
            // Keep embedder applies attributed like the staged tier.
            self.heap.set_alloc_site("scheme.app");
        }
        // Everything live is on the rooted stack: safe to collect.
        let collected = self.heap.maybe_collect().is_some();
        if collected && !self.in_collect_handler {
            if let Some(handler) = self.collect_handler.clone() {
                self.in_collect_handler = true;
                let result = self.apply(handler.get(), &[]);
                self.in_collect_handler = false;
                result?;
            }
        }
        let op = self.stack.get(op_slot);
        if self.heap.is_record(op) {
            let desc = self.heap.record_descriptor(op);
            if desc == rtags::compiled_closure() {
                let index = self.heap.record_ref_audited(op, 0).as_fixnum() as usize;
                let vl = self.vm_lambda(index)?;
                let ci = match cache {
                    Some(c) if c.get().hits(index) => c.get().clause as usize,
                    _ => {
                        let ci = select_vm_clause(&vl, argc)?;
                        if let Some(c) = cache {
                            c.set(CallCache {
                                lambda: index as u32,
                                clause: ci as u32,
                            });
                        }
                        ci
                    }
                };
                let clause = &vl.clauses[ci];
                let frame = self.heap.make_record_filled(
                    rtags::frame(),
                    1 + clause.n_slots,
                    Value::UNBOUND,
                );
                // Re-read from the rooted stack: the collection above may
                // have moved the closure.
                let op = self.stack.get(op_slot);
                let closure_env = self.heap.record_ref_audited(op, 1);
                self.heap.record_set_audited(frame, 0, closure_env);
                for i in 0..clause.n_req {
                    let v = self.stack.get(args_base + i);
                    self.heap.record_set_audited(frame, 1 + i, v);
                }
                if clause.variadic {
                    let mut rest = Value::NIL;
                    for j in (clause.n_req..argc).rev() {
                        let v = self.stack.get(args_base + j);
                        rest = self.heap.cons(v, rest);
                    }
                    self.heap.record_set_audited(frame, 1 + clause.n_req, rest);
                }
                let body = clause.body.clone();
                self.stack.set(base, frame);
                return Ok(VmApplied::Enter(body));
            }
            if desc == rtags::primitive() {
                let index = self.heap.record_ref_audited(op, 0).as_fixnum() as usize;
                let entry = &self.prims[index];
                if argc < entry.min_args || entry.max_args.is_some_and(|m| argc > m) {
                    return err(format!(
                        "{}: wrong number of arguments ({argc})",
                        entry.name
                    ));
                }
                let f = entry.func;
                // Copy the (rooted) arguments out without a per-call Vec:
                // almost every primitive call fits the fixed buffer.
                if argc <= 8 {
                    let mut buf = [Value::FALSE; 8];
                    for (i, slot) in buf.iter_mut().enumerate().take(argc) {
                        *slot = self.stack.get(args_base + i);
                    }
                    return f(self, &buf[..argc]).map(VmApplied::Value);
                }
                let args: Vec<Value> = (0..argc).map(|i| self.stack.get(args_base + i)).collect();
                return f(self, &args).map(VmApplied::Value);
            }
            if desc == rtags::guardian() {
                let tconc = self.heap.record_ref(op, 0);
                return match argc {
                    // (G) — retrieve, or #f.
                    0 => Ok(VmApplied::Value(
                        self.heap.tconc_pop(tconc).unwrap_or(Value::FALSE),
                    )),
                    // (G obj) — register.
                    1 => {
                        let obj = self.stack.get(args_base);
                        self.heap.guardian_register(tconc, obj, obj);
                        Ok(VmApplied::Value(Value::VOID))
                    }
                    // (G obj agent) — the Section 5 generalisation.
                    2 => {
                        let obj = self.stack.get(args_base);
                        let agent = self.stack.get(args_base + 1);
                        self.heap.guardian_register(tconc, obj, agent);
                        Ok(VmApplied::Value(Value::VOID))
                    }
                    _ => err("guardian: expects 0, 1, or 2 arguments"),
                };
            }
        }
        err(format!(
            "not a procedure: {}",
            guardians_runtime::printer::write_value(&self.heap, op)
        ))
    }

    /// Compiles one source string's forms and returns their disassembly
    /// (drives the `--dump-bytecode` flag; does not execute anything,
    /// though analysis registers lambdas and interns constants).
    pub fn dump_bytecode(&mut self, src: &str) -> SResult<String> {
        use std::fmt::Write as _;
        let forms = crate::reader::read_all(&mut self.heap, &mut self.symbols, src)?;
        // Root the pending forms as a heap list, like `eval_str`:
        // analysis allocates, and a collect-handler-free heap may still
        // collect from embedder calls between forms.
        let mut list = Value::NIL;
        for &f in forms.iter().rev() {
            list = self.heap.cons(f, list);
        }
        let base = self.stack.len();
        self.stack.push(list);
        let mut out = String::new();
        let mut i = 0usize;
        loop {
            let rest = self.stack.get(base);
            if rest.is_nil() {
                break;
            }
            let form = self.heap.car(rest);
            let next = self.heap.cdr(rest);
            self.stack.set(base, next);
            let compiled = match crate::analyze::analyze_top(self, form)
                .and_then(|code| compile::compile_top(&self.code_tab, &code))
            {
                Ok(c) => c,
                Err(e) => {
                    self.stack.truncate(base);
                    return Err(e);
                }
            };
            let _ = writeln!(out, ";; form {i}:");
            out.push_str(&compile::disassemble(&self.heap, &compiled.co));
            for (index, vl) in &compiled.lambdas {
                for (ci, clause) in vl.clauses.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        ";; code[{index}] clause {ci} (n_req {}, variadic {}, n_slots {}):",
                        clause.n_req, clause.variadic, clause.n_slots
                    );
                    out.push_str(&compile::disassemble(&self.heap, &clause.body));
                }
            }
            self.install_vm_lambdas(compiled.lambdas);
            i += 1;
        }
        self.stack.truncate(base);
        Ok(out)
    }
}

/// Selects the clause matching `argc`, with the shared error message.
fn select_vm_clause(vl: &VmLambda, argc: usize) -> SResult<usize> {
    for (i, clause) in vl.clauses.iter().enumerate() {
        if (clause.variadic && argc >= clause.n_req) || (!clause.variadic && argc == clause.n_req) {
            return Ok(i);
        }
    }
    err(format!("no matching clause for {argc} arguments"))
}

/// Names for the dispatch counters are exercised by the metrics tests;
/// keep the parallel arrays honest.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::OP_NAMES;

    #[test]
    fn dispatch_keys_parallel_op_names() {
        for (key, name) in DISPATCH_KEYS.iter().zip(OP_NAMES.iter()) {
            assert_eq!(*key, format!("vm.dispatch.{name}"));
        }
    }

    /// The prelude — the largest in-tree corpus — round-trips through
    /// the compiler and disassembler: one listing header per top-level
    /// form, and every instruction line names a real opcode.
    #[test]
    fn prelude_disassembly_round_trips() {
        let mut probe = Interp::new();
        let n_forms =
            crate::reader::read_all(&mut probe.heap, &mut probe.symbols, crate::prelude::PRELUDE)
                .expect("prelude parses")
                .len();

        let mut it = Interp::new();
        let listing = it
            .dump_bytecode(crate::prelude::PRELUDE)
            .expect("prelude compiles");
        let headers = listing
            .lines()
            .filter(|l| l.starts_with(";; form "))
            .count();
        assert_eq!(headers, n_forms, "one listing header per prelude form");
        assert!(
            listing.lines().any(|l| l.starts_with(";; code[")),
            "prelude lambdas are listed"
        );
        let mut insn_lines = 0usize;
        for line in listing.lines() {
            let mut toks = line.split_whitespace();
            let Some(first) = toks.next() else { continue };
            if first.starts_with(";;") {
                continue;
            }
            assert!(
                first.chars().all(|c| c.is_ascii_digit()),
                "insn lines start with a pc: {line:?}"
            );
            let op = toks.next().expect("opcode token");
            assert!(
                OP_NAMES.contains(&op),
                "unknown opcode {op:?} in line {line:?}"
            );
            insn_lines += 1;
        }
        assert!(
            insn_lines > n_forms,
            "listing suspiciously sparse: {insn_lines} insns for {n_forms} forms"
        );

        // Dumping must not disturb evaluation: the same interpreter
        // still runs a guardian transcript afterwards.
        it.eval_str("(define G (make-guardian))").expect("eval");
        assert_eq!(it.eval_to_string("(G)").expect("poll"), "#f");
    }
}
