//! The evaluator.
//!
//! Everything the interpreter touches — expressions, environments,
//! closures, guardians — lives on the collected heap, which makes the
//! interpreter both a faithful way to run the paper's Scheme code and a
//! demanding test load for the collector. Collections may happen at every
//! procedure application (`maybe_collect`), so the evaluator keeps every
//! live intermediate value on a rooted shadow stack and re-reads values
//! from their slots after any sub-evaluation.
//!
//! Tail calls (including `if` branches, `begin`/`let`/`cond` bodies, and
//! closure applications) are executed by looping rather than recursing, so
//! the paper's tail-recursive idioms (`close-dropped-ports`, Figure 1's
//! `let loop`) run in constant Rust stack.

use crate::analyze::{self, Code, CodeRef, GlobalSite, LambdaCode};
use crate::compile::VmLambda;
use crate::error::{err, SResult};
use crate::prims::{self, PrimEntry};
use crate::reader;
use guardians_gc::{GcConfig, Heap, Rooted, RootedVec, Value};
use guardians_runtime::rtags;
use guardians_runtime::simos::SimOs;
use guardians_runtime::symtab::SymbolTable;
use std::rc::Rc;

/// Cached special-form symbols (as rooted handles; symbol objects move
/// during collections).
pub(crate) struct SpecialForms {
    pub(crate) quote: Rooted,
    pub(crate) iff: Rooted,
    pub(crate) define: Rooted,
    pub(crate) set: Rooted,
    pub(crate) lambda: Rooted,
    pub(crate) case_lambda: Rooted,
    pub(crate) begin: Rooted,
    pub(crate) let_: Rooted,
    pub(crate) let_star: Rooted,
    pub(crate) letrec: Rooted,
    pub(crate) cond: Rooted,
    pub(crate) else_: Rooted,
    pub(crate) and: Rooted,
    pub(crate) or: Rooted,
    pub(crate) when: Rooted,
    pub(crate) unless: Rooted,
    pub(crate) case: Rooted,
    pub(crate) do_: Rooted,
    pub(crate) arrow: Rooted,
    pub(crate) define_record_type: Rooted,
    pub(crate) quasiquote: Rooted,
    pub(crate) unquote: Rooted,
    pub(crate) unquote_splicing: Rooted,
}

/// Which evaluation tier runs the program.
///
/// All three tiers share the reader, the analyzer-visible semantics,
/// the primitives, and — critically — the safe-point discipline (a
/// possible collection at every procedure application, and nowhere
/// else), so guardian, weak-pair, and tconc observables are
/// byte-identical across tiers at any [`GcConfig`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// The original cons-walking evaluator with association-list
    /// environments; ablation baseline and differential oracle.
    Naive,
    /// One-time syntax analysis to an opcode tree with lexical
    /// addressing, executed by a trampolined tree walker. The
    /// differential anchor the other two tiers are compared against.
    #[default]
    Staged,
    /// The staged tier's opcode tree lowered further into flat bytecode
    /// (`compile.rs`) and run by the direct-threaded dispatch loop in
    /// `vm.rs` with fused super-instructions and per-call-site inline
    /// caches.
    Vm,
}

/// Interpreter configuration: the heap configuration plus the evaluator
/// mode.
///
/// The **staged** evaluator (the default) analyzes each top-level form
/// and closure body once into an opcode tree with lexical addressing and
/// slot-indexed environment frames, then executes the tree. The
/// **naive** evaluator re-walks the source cons structure on every
/// evaluation and searches association-list environments; it is kept as
/// an ablation baseline and as a differential-testing oracle. The **VM**
/// lowers the staged tier's tree to linear bytecode. All modes keep
/// every program value on the collected heap with identical safe
/// points, so guardian and weak-pair observables match.
#[derive(Clone, Debug, Default)]
pub struct InterpConfig {
    /// Heap (collector) configuration.
    pub gc: GcConfig,
    /// Which evaluation tier to use.
    pub mode: EvalMode,
}

impl InterpConfig {
    /// The default staged-evaluator configuration.
    pub fn staged() -> InterpConfig {
        InterpConfig::default()
    }

    /// The naive cons-walking evaluator (ablation / differential mode).
    pub fn naive() -> InterpConfig {
        InterpConfig {
            mode: EvalMode::Naive,
            ..InterpConfig::default()
        }
    }

    /// The bytecode VM tier.
    pub fn vm() -> InterpConfig {
        InterpConfig {
            mode: EvalMode::Vm,
            ..InterpConfig::default()
        }
    }
}

/// The Scheme interpreter.
pub struct Interp {
    pub(crate) heap: Heap,
    pub(crate) stack: RootedVec,
    pub(crate) symbols: SymbolTable,
    pub(crate) prims: Vec<PrimEntry>,
    pub(crate) os: SimOs,
    pub(crate) output: String,
    pub(crate) gensym_counter: u64,
    /// Scheme procedure run after each automatic collection — the paper's
    /// Chez idiom `(collect-request-handler (lambda () (collect)
    /// (close-dropped-ports)))`, adapted: the handler runs *after* the
    /// collection `maybe_collect` performed.
    pub(crate) collect_handler: Option<Rooted>,
    pub(crate) in_collect_handler: bool,
    pub(crate) depth: usize,
    /// Maximum non-tail eval nesting before a "recursion too deep" error
    /// (tail calls are unlimited — they loop). Guards the Rust stack.
    pub max_depth: usize,
    pub(crate) global: Rooted,
    pub(crate) sf: SpecialForms,
    /// Which evaluation tier is active.
    pub(crate) mode: EvalMode,
    /// Cached `heap.site_profile_enabled()`, refreshed at each staged
    /// top-level entry so the per-opcode dispatch pays one local bool
    /// test when profiling is off.
    pub(crate) profile: bool,
    /// Analyzed lambda bodies; compiled-closure records index into this
    /// table so closures remain plain heap values.
    pub(crate) code_tab: Vec<Rc<LambdaCode>>,
    /// Compiled (VM) lambda bodies, parallel to `code_tab`; filled by
    /// `compile_top` as closures are compiled in VM mode.
    pub(crate) vm_tab: Vec<Option<Rc<VmLambda>>>,
    /// Per-opcode dispatch counts, indexed by `Insn::op_index`; only
    /// maintained while site profiling is enabled, flushed into the
    /// metrics registry as `vm.dispatch.*` counters per top-level form.
    pub(crate) vm_counters: Vec<u64>,
}

impl Interp {
    /// An interpreter over a heap with the given collector configuration
    /// (staged evaluator).
    pub fn with_config(config: GcConfig) -> Interp {
        Interp::with_interp_config(InterpConfig {
            gc: config,
            mode: EvalMode::Staged,
        })
    }

    /// An interpreter with the given full configuration.
    pub fn with_interp_config(config: InterpConfig) -> Interp {
        Interp::with_heap(Heap::new(config.gc), config.mode)
    }

    /// An interpreter over a pre-built heap — the multi-tenant entry
    /// point: a zone constructs its heap against a shared
    /// [`guardians_gc::SegmentPool`] (via [`Heap::with_pool`]) and hands
    /// it here; every interpreter structure (symbols, globals, prelude)
    /// is built on top exactly as [`Interp::with_interp_config`] would.
    pub fn with_heap(mut heap: Heap, mode: EvalMode) -> Interp {
        let mut symbols = SymbolTable::new();
        let stack = heap.root_vec();
        let nil_bindings = Value::NIL;
        let global_env = heap.make_record(rtags::environment(), &[nil_bindings, Value::FALSE]);
        let global = heap.root(global_env);
        let mut intern = |heap: &mut Heap, s: &str| {
            let v = symbols.intern(heap, s);
            heap.root(v)
        };
        let sf = SpecialForms {
            quote: intern(&mut heap, "quote"),
            iff: intern(&mut heap, "if"),
            define: intern(&mut heap, "define"),
            set: intern(&mut heap, "set!"),
            lambda: intern(&mut heap, "lambda"),
            case_lambda: intern(&mut heap, "case-lambda"),
            begin: intern(&mut heap, "begin"),
            let_: intern(&mut heap, "let"),
            let_star: intern(&mut heap, "let*"),
            letrec: intern(&mut heap, "letrec"),
            cond: intern(&mut heap, "cond"),
            else_: intern(&mut heap, "else"),
            and: intern(&mut heap, "and"),
            or: intern(&mut heap, "or"),
            when: intern(&mut heap, "when"),
            unless: intern(&mut heap, "unless"),
            case: intern(&mut heap, "case"),
            do_: intern(&mut heap, "do"),
            arrow: intern(&mut heap, "=>"),
            define_record_type: intern(&mut heap, "define-record-type"),
            quasiquote: intern(&mut heap, "quasiquote"),
            unquote: intern(&mut heap, "unquote"),
            unquote_splicing: intern(&mut heap, "unquote-splicing"),
        };
        let mut interp = Interp {
            heap,
            stack,
            symbols,
            prims: Vec::new(),
            os: SimOs::new(),
            output: String::new(),
            gensym_counter: 0,
            collect_handler: None,
            in_collect_handler: false,
            depth: 0,
            max_depth: 400,
            global,
            sf,
            mode,
            profile: false,
            code_tab: Vec::new(),
            vm_tab: Vec::new(),
            vm_counters: vec![0; crate::compile::OP_COUNT],
        };
        prims::register_all(&mut interp);
        interp
            .eval_str(crate::prelude::PRELUDE)
            .expect("the prelude always evaluates");
        interp
    }

    /// An interpreter with the default heap configuration.
    pub fn new() -> Interp {
        Interp::with_config(GcConfig::default())
    }

    /// The heap (for inspecting results).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable heap access (for rooting results across evaluations).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The simulated OS backing the port primitives.
    pub fn os(&self) -> &SimOs {
        &self.os
    }

    /// Mutable access to the simulated OS (e.g. to pre-create files).
    pub fn os_mut(&mut self) -> &mut SimOs {
        &mut self.os
    }

    /// Interns a symbol.
    pub fn intern(&mut self, name: &str) -> Value {
        self.symbols.intern(&mut self.heap, name)
    }

    /// Takes everything `display`/`write`/`newline` printed so far.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.output)
    }

    /// Renders a value with `write` semantics.
    pub fn write(&self, v: Value) -> String {
        guardians_runtime::printer::write_value(&self.heap, v)
    }

    /// Evaluates every form in `src`; returns the last result.
    ///
    /// The returned [`Value`] is valid until the next evaluation or
    /// collection; root it to keep it longer.
    ///
    /// # Errors
    ///
    /// Reader and evaluation errors.
    pub fn eval_str(&mut self, src: &str) -> SResult<Value> {
        let forms = reader::read_all(&mut self.heap, &mut self.symbols, src)?;
        // Root the pending forms as a heap list so collections during
        // evaluation of earlier forms keep (and relocate) the later ones.
        let mut list = Value::NIL;
        for &f in forms.iter().rev() {
            list = self.heap.cons(f, list);
        }
        let base = self.stack.len();
        self.stack.push(list);
        let mut result = Value::VOID;
        loop {
            let rest = self.stack.get(base);
            if rest.is_nil() {
                break;
            }
            let form = self.heap.car(rest);
            let next = self.heap.cdr(rest);
            self.stack.set(base, next);
            let outcome = match self.mode {
                EvalMode::Naive => {
                    let env = self.global.get();
                    self.eval(form, env)
                }
                // Stage the form once, then run the opcode tree. Analysis
                // allocates (expansions, rooted constants) but never
                // collects, so the raw `form` stays valid throughout.
                EvalMode::Staged => {
                    analyze::analyze_top(self, form).and_then(|code| self.exec_top(code))
                }
                // Stage, then lower the tree to bytecode (pure Rust-side
                // work: no heap access, no collection) and dispatch.
                EvalMode::Vm => {
                    analyze::analyze_top(self, form).and_then(|code| self.vm_eval_top(&code))
                }
            };
            match outcome {
                Ok(v) => result = v,
                Err(e) => {
                    self.stack.truncate(base);
                    return Err(e);
                }
            }
        }
        self.stack.truncate(base);
        Ok(result)
    }

    /// Evaluates `src` and renders the result with `write`.
    ///
    /// # Errors
    ///
    /// As for [`Interp::eval_str`].
    pub fn eval_to_string(&mut self, src: &str) -> SResult<String> {
        let v = self.eval_str(src)?;
        Ok(self.write(v))
    }

    // ------------------------------------------------------------------
    // Environments
    // ------------------------------------------------------------------

    pub(crate) fn make_env(&mut self, bindings: Value, parent: Value) -> Value {
        self.heap
            .make_record(rtags::environment(), &[bindings, parent])
    }

    fn lookup(&self, env: Value, sym: Value) -> SResult<Value> {
        let mut frame = env;
        while frame.is_truthy() {
            let mut b = self.heap.record_ref(frame, 0);
            while !b.is_nil() {
                let pair = self.heap.car(b);
                if self.heap.car(pair) == sym {
                    let v = self.heap.cdr(pair);
                    if v == Value::UNBOUND {
                        return err(format!(
                            "variable {} used before initialization",
                            self.heap.symbol_name(sym)
                        ));
                    }
                    return Ok(v);
                }
                b = self.heap.cdr(b);
            }
            frame = self.heap.record_ref(frame, 1);
        }
        err(format!("unbound variable: {}", self.heap.symbol_name(sym)))
    }

    pub(crate) fn define_var(&mut self, env: Value, sym: Value, value: Value) {
        let pair = self.heap.cons(sym, value);
        let bindings = self.heap.record_ref(env, 0);
        let extended = self.heap.cons(pair, bindings);
        self.heap.record_set(env, 0, extended);
    }

    /// Defines a global binding in whichever representation the active
    /// evaluator uses: the global alist (naive) or the symbol's interned
    /// value cell (staged).
    pub(crate) fn define_global(&mut self, sym: Value, value: Value) {
        if self.mode == EvalMode::Naive {
            let env = self.global.get();
            self.define_var(env, sym, value);
        } else {
            let cell = SymbolTable::global_cell(&mut self.heap, sym);
            self.heap.box_set(cell, value);
        }
    }

    fn set_var(&mut self, env: Value, sym: Value, value: Value) -> SResult<()> {
        let mut frame = env;
        while frame.is_truthy() {
            let mut b = self.heap.record_ref(frame, 0);
            while !b.is_nil() {
                let pair = self.heap.car(b);
                if self.heap.car(pair) == sym {
                    self.heap.set_cdr(pair, value);
                    return Ok(());
                }
                b = self.heap.cdr(b);
            }
            frame = self.heap.record_ref(frame, 1);
        }
        err(format!(
            "set!: unbound variable: {}",
            self.heap.symbol_name(sym)
        ))
    }

    /// The global environment record.
    pub(crate) fn global_env(&self) -> Value {
        self.global.get()
    }

    // ------------------------------------------------------------------
    // Small structure helpers (no allocation, no collection)
    // ------------------------------------------------------------------

    fn nth(&self, list: Value, n: usize) -> SResult<Value> {
        let mut cur = list;
        for _ in 0..n {
            if !self.heap.is_pair(cur) {
                return err("malformed form: too few subexpressions");
            }
            cur = self.heap.cdr(cur);
        }
        if !self.heap.is_pair(cur) {
            return err("malformed form: too few subexpressions");
        }
        Ok(self.heap.car(cur))
    }

    /// Advances `n` cdrs, stopping early (without panicking) if the form
    /// is improper; consumers validate what remains.
    fn tail_from(&self, list: Value, n: usize) -> Value {
        let mut cur = list;
        for _ in 0..n {
            if !self.heap.is_pair(cur) {
                return cur;
            }
            cur = self.heap.cdr(cur);
        }
        cur
    }

    /// car of a syntax position; malformed (non-pair) syntax is a Scheme
    /// error, never a panic.
    fn scar(&self, v: Value) -> SResult<Value> {
        if self.heap.is_pair(v) {
            Ok(self.heap.car(v))
        } else {
            err("malformed form")
        }
    }

    /// cdr of a syntax position; see [`Interp::scar`].
    fn scdr(&self, v: Value) -> SResult<Value> {
        if self.heap.is_pair(v) {
            Ok(self.heap.cdr(v))
        } else {
            err("malformed form")
        }
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluates one expression in an environment.
    ///
    /// # Errors
    ///
    /// Scheme errors (unbound variables, arity mismatches, type errors
    /// from primitives, user `error` calls).
    pub fn eval(&mut self, expr: Value, env: Value) -> SResult<Value> {
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let base = self.stack.len();
        self.stack.push(expr);
        self.stack.push(env);
        let result = self.eval_loop(base);
        self.stack.truncate(base);
        self.depth -= 1;
        result
    }

    /// The trampoline: slots `base`/`base+1` hold the current expression
    /// and environment; tail positions update the slots and `continue`.
    fn eval_loop(&mut self, base: usize) -> SResult<Value> {
        loop {
            self.stack.truncate(base + 2);
            let expr = self.stack.get(base);
            let env = self.stack.get(base + 1);

            if !self.heap.is_pair(expr) {
                if self.heap.is_symbol(expr) {
                    return self.lookup(env, expr);
                }
                return Ok(expr); // self-evaluating
            }

            let head = self.heap.car(expr);
            if self.heap.is_symbol(head) {
                if head == self.sf.quote.get() {
                    return self.nth(expr, 1);
                }
                if head == self.sf.quasiquote.get() {
                    let template = self.nth(expr, 1)?;
                    return self.expand_quasiquote(base, template, 1);
                }
                if head == self.sf.unquote.get() || head == self.sf.unquote_splicing.get() {
                    return err("unquote outside quasiquote");
                }
                if head == self.sf.iff.get() {
                    let test = self.nth(expr, 1)?;
                    let c = self.eval(test, env)?;
                    let expr = self.stack.get(base);
                    let branch = if c.is_truthy() {
                        self.nth(expr, 2)?
                    } else {
                        let rest = self.tail_from(expr, 3);
                        if rest.is_nil() {
                            return Ok(Value::VOID);
                        }
                        self.scar(rest)?
                    };
                    self.stack.set(base, branch);
                    continue;
                }
                if head == self.sf.define.get() {
                    return self.eval_define(base);
                }
                if head == self.sf.set.get() {
                    let value_expr = self.nth(expr, 2)?;
                    let v = self.eval(value_expr, env)?;
                    let expr = self.stack.get(base);
                    let env = self.stack.get(base + 1);
                    let sym = self.nth(expr, 1)?;
                    self.set_var(env, sym, v)?;
                    return Ok(Value::VOID);
                }
                if head == self.sf.lambda.get() {
                    let params = self.nth(expr, 1)?;
                    let body = self.tail_from(expr, 2);
                    let clause = self.heap.cons(params, body);
                    let clauses = self.heap.cons(clause, Value::NIL);
                    return Ok(self.make_closure(clauses, env, Value::FALSE));
                }
                if head == self.sf.case_lambda.get() {
                    let clauses = self.heap.cdr(expr);
                    return Ok(self.make_closure(clauses, env, Value::FALSE));
                }
                if head == self.sf.begin.get() {
                    if let Some(v) = self.eval_sequence_tail(base, self.heap.cdr(expr))? {
                        return Ok(v);
                    }
                    continue;
                }
                if head == self.sf.let_.get() {
                    self.eval_let(base)?;
                    continue;
                }
                if head == self.sf.let_star.get() {
                    self.eval_let_star(base)?;
                    continue;
                }
                if head == self.sf.letrec.get() {
                    self.eval_letrec(base)?;
                    continue;
                }
                if head == self.sf.cond.get() {
                    match self.eval_cond(base)? {
                        Some(v) => return Ok(v),
                        None => continue,
                    }
                }
                if head == self.sf.and.get() {
                    match self.eval_and_or(base, true)? {
                        Some(v) => return Ok(v),
                        None => continue,
                    }
                }
                if head == self.sf.or.get() {
                    match self.eval_and_or(base, false)? {
                        Some(v) => return Ok(v),
                        None => continue,
                    }
                }
                if head == self.sf.define_record_type.get() {
                    self.eval_define_record_type(base)?;
                    continue; // tail: the generated (begin (define ...) ...)
                }
                if head == self.sf.case.get() {
                    match self.eval_case(base)? {
                        Some(v) => return Ok(v),
                        None => continue,
                    }
                }
                if head == self.sf.do_.get() {
                    match self.eval_do(base)? {
                        Some(v) => return Ok(v),
                        None => continue,
                    }
                }
                if head == self.sf.when.get() || head == self.sf.unless.get() {
                    let want = head == self.sf.when.get();
                    let test = self.nth(expr, 1)?;
                    let c = self.eval(test, env)?;
                    if c.is_truthy() != want {
                        return Ok(Value::VOID);
                    }
                    let expr = self.stack.get(base);
                    if let Some(v) = self.eval_sequence_tail(base, self.tail_from(expr, 2))? {
                        return Ok(v);
                    }
                    continue;
                }
            }

            // Application.
            match self.eval_application(base)? {
                Some(v) => return Ok(v),
                None => continue, // tail call installed in the slots
            }
        }
    }

    pub(crate) fn make_closure(&mut self, clauses: Value, env: Value, name: Value) -> Value {
        self.heap
            .make_record(rtags::closure(), &[clauses, env, name])
    }

    fn eval_define(&mut self, base: usize) -> SResult<Value> {
        let expr = self.stack.get(base);
        let env = self.stack.get(base + 1);
        let target = self.nth(expr, 1)?;
        if self.heap.is_symbol(target) {
            let value_expr = self.nth(expr, 2)?;
            let v = self.eval(value_expr, env)?;
            let expr = self.stack.get(base);
            let env = self.stack.get(base + 1);
            let sym = self.nth(expr, 1)?;
            self.define_var(env, sym, v);
            return Ok(Value::VOID);
        }
        if self.heap.is_pair(target) {
            // (define (f . params) body...) — allocation only, no eval.
            let name = self.heap.car(target);
            let params = self.heap.cdr(target);
            let body = self.tail_from(expr, 2);
            let clause = self.heap.cons(params, body);
            let clauses = self.heap.cons(clause, Value::NIL);
            let closure = self.make_closure(clauses, env, name);
            self.define_var(env, name, closure);
            return Ok(Value::VOID);
        }
        err("define: bad target")
    }

    /// Evaluates all but the last expression of `body`; installs the last
    /// as the tail expression (returns `None`), or returns `Some(void)`
    /// for an empty body.
    fn eval_sequence_tail(&mut self, base: usize, body: Value) -> SResult<Option<Value>> {
        if body.is_nil() {
            return Ok(Some(Value::VOID));
        }
        let rest_slot = self.stack.push(body);
        loop {
            let rest = self.stack.get(rest_slot);
            let next = self.scdr(rest)?;
            if next.is_nil() {
                let last = self.scar(rest)?;
                self.stack.set(base, last);
                return Ok(None);
            }
            let e = self.scar(rest)?;
            let env = self.stack.get(base + 1);
            self.eval(e, env)?;
            let rest = self.stack.get(rest_slot);
            self.stack.set(rest_slot, self.scdr(rest)?);
        }
    }

    /// `(let ([x e] ...) body...)` and named `let`.
    fn eval_let(&mut self, base: usize) -> SResult<()> {
        let expr = self.stack.get(base);
        let second = self.nth(expr, 1)?;
        if self.heap.is_symbol(second) {
            return self.eval_named_let(base);
        }
        // Evaluate the inits onto the stack.
        let bindings_slot = self.stack.push(second);
        let inits_base = self.stack.len();
        loop {
            let b = self.stack.get(bindings_slot);
            if b.is_nil() {
                break;
            }
            let binding = self.scar(b)?;
            let init = self.nth(binding, 1)?;
            let env = self.stack.get(base + 1);
            let v = self.eval(init, env)?;
            self.stack.push(v);
            let b = self.stack.get(bindings_slot);
            self.stack.set(bindings_slot, self.scdr(b)?);
        }
        let argc = self.stack.len() - inits_base;
        // Build the new frame (allocation only — stack values stay put).
        let expr = self.stack.get(base);
        let mut bindings_src = self.nth(expr, 1)?;
        let mut frame_bindings = Value::NIL;
        for i in 0..argc {
            let binding = self.scar(bindings_src)?;
            let sym = self.scar(binding)?;
            let v = self.stack.get(inits_base + i);
            let pair = self.heap.cons(sym, v);
            frame_bindings = self.heap.cons(pair, frame_bindings);
            bindings_src = self.scdr(bindings_src)?;
        }
        let env = self.stack.get(base + 1);
        let new_env = self.make_env(frame_bindings, env);
        let expr = self.stack.get(base);
        let body = self.tail_from(expr, 2);
        let begin_expr = self.heap.cons(self.sf.begin.get(), body);
        self.stack.set(base, begin_expr);
        self.stack.set(base + 1, new_env);
        Ok(())
    }

    /// `(let loop ([x e] ...) body...)` — letrec-style self-reference,
    /// then a tail call of the loop closure on the evaluated inits.
    fn eval_named_let(&mut self, base: usize) -> SResult<()> {
        let expr = self.stack.get(base);
        let env = self.stack.get(base + 1);
        let name = self.nth(expr, 1)?;
        let bindings = self.nth(expr, 2)?;
        let body = self.tail_from(expr, 3);

        // Frame holding the loop name, initially unbound.
        let name_pair = self.heap.cons(name, Value::UNBOUND);
        let frame_bindings = self.heap.cons(name_pair, Value::NIL);
        let loop_env = self.make_env(frame_bindings, env);
        // Parameters are the binding names.
        let mut params = Value::NIL;
        let mut syms = Vec::new();
        let mut b = bindings;
        while self.heap.is_pair(b) {
            let binding = self.heap.car(b);
            syms.push(self.scar(binding)?);
            b = self.heap.cdr(b);
        }
        for &s in syms.iter().rev() {
            params = self.heap.cons(s, params);
        }
        let clause = self.heap.cons(params, body);
        let clauses = self.heap.cons(clause, Value::NIL);
        let closure = self.make_closure(clauses, loop_env, name);
        self.heap.set_cdr(name_pair, closure);

        // Tail-apply the closure to the evaluated inits: rewrite to
        // ((quoted-closure) init...) and let the application path run it.
        // Simpler: push closure, evaluate inits, install tail call.
        let op_slot = self.stack.push(closure);
        let bindings_slot = self.stack.push(bindings);
        let args_base = self.stack.len();
        loop {
            let b = self.stack.get(bindings_slot);
            if !self.heap.is_pair(b) {
                break;
            }
            let binding = self.heap.car(b);
            let init = self.nth(binding, 1)?;
            let env = self.stack.get(base + 1);
            let v = self.eval(init, env)?;
            self.stack.push(v);
            let b = self.stack.get(bindings_slot);
            self.stack.set(bindings_slot, self.heap.cdr(b));
        }
        let argc = self.stack.len() - args_base;
        self.install_closure_call(base, op_slot, args_base, argc)
    }

    /// `(let* ([x e] ...) body...)`: one frame per binding.
    fn eval_let_star(&mut self, base: usize) -> SResult<()> {
        let expr = self.stack.get(base);
        let bindings = self.nth(expr, 1)?;
        let bindings_slot = self.stack.push(bindings);
        let env_slot = self.stack.push(self.stack.get(base + 1));
        loop {
            let b = self.stack.get(bindings_slot);
            if b.is_nil() {
                break;
            }
            let binding = self.scar(b)?;
            let init = self.nth(binding, 1)?;
            let env = self.stack.get(env_slot);
            let v = self.eval(init, env)?;
            let b = self.stack.get(bindings_slot);
            let sym = self.scar(self.scar(b)?)?;
            let pair = self.heap.cons(sym, v);
            let frame = self.heap.cons(pair, Value::NIL);
            let env = self.stack.get(env_slot);
            let new_env = self.make_env(frame, env);
            self.stack.set(env_slot, new_env);
            let b = self.stack.get(bindings_slot);
            self.stack.set(bindings_slot, self.scdr(b)?);
        }
        let expr = self.stack.get(base);
        let body = self.tail_from(expr, 2);
        let begin_expr = self.heap.cons(self.sf.begin.get(), body);
        let final_env = self.stack.get(env_slot);
        self.stack.set(base, begin_expr);
        self.stack.set(base + 1, final_env);
        Ok(())
    }

    /// `(letrec ([x e] ...) body...)`.
    fn eval_letrec(&mut self, base: usize) -> SResult<()> {
        let expr = self.stack.get(base);
        let env = self.stack.get(base + 1);
        let bindings = self.nth(expr, 1)?;
        // Frame with every name unbound.
        let mut frame = Value::NIL;
        let mut b = bindings;
        while self.heap.is_pair(b) {
            let binding = self.heap.car(b);
            let sym = self.scar(binding)?;
            let pair = self.heap.cons(sym, Value::UNBOUND);
            frame = self.heap.cons(pair, frame);
            b = self.heap.cdr(b);
        }
        let new_env = self.make_env(frame, env);
        let env_slot = self.stack.push(new_env);
        let bindings_slot = self.stack.push(bindings);
        loop {
            let b = self.stack.get(bindings_slot);
            if b.is_nil() {
                break;
            }
            if !self.heap.is_pair(b) {
                break;
            }
            let binding = self.heap.car(b);
            let init = self.nth(binding, 1)?;
            let env = self.stack.get(env_slot);
            let v = self.eval(init, env)?;
            let b = self.stack.get(bindings_slot);
            let sym = self.scar(self.heap.car(b))?;
            let env = self.stack.get(env_slot);
            self.set_var(env, sym, v)?;
            self.stack.set(bindings_slot, self.heap.cdr(b));
        }
        let expr = self.stack.get(base);
        let body = self.tail_from(expr, 2);
        let begin_expr = self.heap.cons(self.sf.begin.get(), body);
        let env = self.stack.get(env_slot);
        self.stack.set(base, begin_expr);
        self.stack.set(base + 1, env);
        Ok(())
    }

    /// `cond`: returns `Some(v)` for an immediate result, `None` after
    /// installing a tail expression.
    fn eval_cond(&mut self, base: usize) -> SResult<Option<Value>> {
        let expr = self.stack.get(base);
        let clauses_slot = self.stack.push(self.heap.cdr(expr));
        loop {
            let clauses = self.stack.get(clauses_slot);
            if clauses.is_nil() {
                return Ok(Some(Value::VOID));
            }
            let clause = self.scar(clauses)?;
            let test = self.scar(clause)?;
            if self.heap.is_symbol(test) && test == self.sf.else_.get() {
                let body = self.heap.cdr(clause);
                return self.eval_sequence_tail(base, body);
            }
            let env = self.stack.get(base + 1);
            let v = self.eval(test, env)?;
            let clauses = self.stack.get(clauses_slot);
            let clause = self.heap.car(clauses);
            if v.is_truthy() {
                let body = self.heap.cdr(clause);
                if body.is_nil() {
                    return Ok(Some(v));
                }
                // (test => proc): apply proc to the test value.
                let first = self.heap.car(body);
                if self.heap.is_symbol(first) && first == self.sf.arrow.get() {
                    let v_slot = self.stack.push(v);
                    let f_expr = self.nth(body, 1)?;
                    let env = self.stack.get(base + 1);
                    let f = self.eval(f_expr, env)?;
                    let v = self.stack.get(v_slot);
                    return self.apply(f, &[v]).map(Some);
                }
                return self.eval_sequence_tail(base, body);
            }
            self.stack.set(clauses_slot, self.scdr(clauses)?);
        }
    }

    /// `(case key [(datum ...) body...] ... [else body...])`: the key is
    /// compared with `eqv?` against each clause's datum list.
    fn eval_case(&mut self, base: usize) -> SResult<Option<Value>> {
        let expr = self.stack.get(base);
        let env = self.stack.get(base + 1);
        let key_expr = self.nth(expr, 1)?;
        let key = self.eval(key_expr, env)?;
        let key_slot = self.stack.push(key);
        let expr = self.stack.get(base);
        let clauses_slot = self.stack.push(self.tail_from(expr, 2));
        loop {
            let clauses = self.stack.get(clauses_slot);
            if clauses.is_nil() {
                return Ok(Some(Value::VOID));
            }
            let clause = self.scar(clauses)?;
            let head = self.scar(clause)?;
            let is_else = self.heap.is_symbol(head) && head == self.sf.else_.get();
            let mut matched = is_else;
            if !matched {
                let mut datums = head;
                let key = self.stack.get(key_slot);
                while self.heap.is_pair(datums) {
                    if self.heap.eqv(self.heap.car(datums), key) {
                        matched = true;
                        break;
                    }
                    datums = self.heap.cdr(datums);
                }
            }
            if matched {
                let body = self.heap.cdr(clause);
                return self.eval_sequence_tail(base, body);
            }
            self.stack.set(clauses_slot, self.scdr(clauses)?);
        }
    }

    /// `(do ([var init step] ...) (test result ...) body ...)`.
    fn eval_do(&mut self, base: usize) -> SResult<Option<Value>> {
        // Desugar to a named let the evaluator already handles in
        // constant stack:  (let loop ([var init] ...)
        //                    (if test (begin result...)
        //                        (begin body... (loop step...))))
        let expr = self.stack.get(base);
        let specs = self.nth(expr, 1)?;
        let exit = self.nth(expr, 2)?;
        let body = self.tail_from(expr, 3);

        let loop_sym = {
            self.gensym_counter += 1;
            let name = format!("do-loop-{}", self.gensym_counter);
            self.heap.make_symbol(&name)
        };
        // bindings: ([var init] ...) and steps: (step-or-var ...)
        let mut bindings = Vec::new();
        let mut steps = Vec::new();
        let mut s = specs;
        while self.heap.is_pair(s) {
            let spec = self.heap.car(s);
            let var = self.nth(spec, 0)?;
            let init = self.nth(spec, 1)?;
            let step = {
                let rest = self.tail_from(spec, 2);
                if rest.is_nil() {
                    var
                } else {
                    self.heap.car(rest)
                }
            };
            let b = self.heap.cons(init, Value::NIL);
            let b = self.heap.cons(var, b);
            bindings.push(b);
            steps.push(step);
            s = self.heap.cdr(s);
        }
        let mut bindings_list = Value::NIL;
        for &b in bindings.iter().rev() {
            bindings_list = self.heap.cons(b, bindings_list);
        }
        // (loop step ...)
        let mut recur = Value::NIL;
        for &st in steps.iter().rev() {
            recur = self.heap.cons(st, recur);
        }
        let recur = self.heap.cons(loop_sym, recur);
        // (begin body ... (loop step...))
        let mut tail_body = self.heap.cons(recur, Value::NIL);
        {
            let mut items = Vec::new();
            let mut b = body;
            while self.heap.is_pair(b) {
                items.push(self.heap.car(b));
                b = self.heap.cdr(b);
            }
            for &e in items.iter().rev() {
                tail_body = self.heap.cons(e, tail_body);
            }
        }
        let loop_body = self.heap.cons(self.sf.begin.get(), tail_body);
        // (begin result ...), or the test value when no results given.
        let test = self.scar(exit)?;
        let results = self.heap.cdr(exit);
        let result_expr = if results.is_nil() {
            Value::VOID // (if test) with no alternative yields void
        } else {
            self.heap.cons(self.sf.begin.get(), results)
        };
        // (if test result-expr loop-body)
        let if_tail = self.heap.cons(loop_body, Value::NIL);
        let if_tail = self.heap.cons(result_expr, if_tail);
        let if_tail = self.heap.cons(test, if_tail);
        let if_expr = self.heap.cons(self.sf.iff.get(), if_tail);
        // (let loop (bindings) if-expr)
        let let_tail = self.heap.cons(if_expr, Value::NIL);
        let let_tail = self.heap.cons(bindings_list, let_tail);
        let let_tail = self.heap.cons(loop_sym, let_tail);
        let let_expr = self.heap.cons(self.sf.let_.get(), let_tail);
        self.stack.set(base, let_expr);
        Ok(None)
    }

    fn eval_and_or(&mut self, base: usize, is_and: bool) -> SResult<Option<Value>> {
        let expr = self.stack.get(base);
        let rest = self.heap.cdr(expr);
        if rest.is_nil() {
            return Ok(Some(Value::bool(is_and)));
        }
        let rest_slot = self.stack.push(rest);
        loop {
            let rest = self.stack.get(rest_slot);
            let next = self.scdr(rest)?;
            if next.is_nil() {
                let last = self.scar(rest)?;
                self.stack.set(base, last);
                return Ok(None); // tail position
            }
            let e = self.scar(rest)?;
            let env = self.stack.get(base + 1);
            let v = self.eval(e, env)?;
            if v.is_truthy() != is_and {
                return Ok(Some(v));
            }
            let rest = self.stack.get(rest_slot);
            self.stack.set(rest_slot, self.scdr(rest)?);
        }
    }

    /// Evaluates operator and operands, then applies: primitives return a
    /// value; closures install a tail call and return `None`.
    fn eval_application(&mut self, base: usize) -> SResult<Option<Value>> {
        let expr = self.stack.get(base);
        let env = self.stack.get(base + 1);
        let op_expr = self.heap.car(expr);
        let op = self.eval(op_expr, env)?;
        let op_slot = self.stack.push(op);
        let expr = self.stack.get(base);
        let rest_slot = self.stack.push(self.heap.cdr(expr));
        let args_base = self.stack.len();
        loop {
            let rest = self.stack.get(rest_slot);
            if rest.is_nil() {
                break;
            }
            let arg_expr = self.scar(rest)?;
            let env = self.stack.get(base + 1);
            let v = self.eval(arg_expr, env)?;
            self.stack.push(v);
            let rest = self.stack.get(rest_slot);
            self.stack.set(rest_slot, self.scdr(rest)?);
        }
        let argc = self.stack.len() - args_base;
        self.apply_from_stack(base, op_slot, args_base, argc)
    }

    /// Applies the value in `op_slot` to the `argc` values starting at
    /// `args_base`. This is the collection safe point.
    fn apply_from_stack(
        &mut self,
        base: usize,
        op_slot: usize,
        args_base: usize,
        argc: usize,
    ) -> SResult<Option<Value>> {
        // Everything live is on the rooted stack: safe to collect.
        let collected = self.heap.maybe_collect().is_some();
        if collected && !self.in_collect_handler {
            if let Some(handler) = self.collect_handler.clone() {
                // Run the Scheme-level post-collection handler (e.g.
                // close-dropped-ports), guarding against re-entry from
                // collections the handler itself triggers.
                self.in_collect_handler = true;
                let result = self.apply(handler.get(), &[]);
                self.in_collect_handler = false;
                result?;
            }
        }
        let op = self.stack.get(op_slot);
        if self.heap.is_record(op) {
            let desc = self.heap.record_descriptor(op);
            if desc == rtags::closure() {
                self.install_closure_call(base, op_slot, args_base, argc)?;
                return Ok(None);
            }
            if desc == rtags::primitive() {
                let index = self.heap.record_ref(op, 0).as_fixnum() as usize;
                let args: Vec<Value> = (0..argc).map(|i| self.stack.get(args_base + i)).collect();
                let entry = &self.prims[index];
                if args.len() < entry.min_args || entry.max_args.is_some_and(|m| args.len() > m) {
                    return err(format!(
                        "{}: wrong number of arguments ({})",
                        entry.name,
                        args.len()
                    ));
                }
                let f = entry.func;
                return f(self, &args).map(Some);
            }
            if desc == rtags::guardian() {
                let tconc = self.heap.record_ref(op, 0);
                return match argc {
                    // (G) — retrieve, or #f.
                    0 => Ok(Some(self.heap.tconc_pop(tconc).unwrap_or(Value::FALSE))),
                    // (G obj) — register.
                    1 => {
                        let obj = self.stack.get(args_base);
                        self.heap.guardian_register(tconc, obj, obj);
                        Ok(Some(Value::VOID))
                    }
                    // (G obj agent) — the Section 5 generalisation.
                    2 => {
                        let obj = self.stack.get(args_base);
                        let agent = self.stack.get(args_base + 1);
                        self.heap.guardian_register(tconc, obj, agent);
                        Ok(Some(Value::VOID))
                    }
                    _ => err("guardian: expects 0, 1, or 2 arguments"),
                };
            }
        }
        err(format!(
            "not a procedure: {}",
            guardians_runtime::printer::write_value(&self.heap, op)
        ))
    }

    /// Installs a closure call as the current tail expression.
    fn install_closure_call(
        &mut self,
        base: usize,
        op_slot: usize,
        args_base: usize,
        argc: usize,
    ) -> SResult<()> {
        let op = self.stack.get(op_slot);
        let clauses = self.heap.record_ref(op, 0);
        let clause = self.select_clause(clauses, argc)?;
        let params = self.heap.car(clause);
        // Build the frame bindings (allocation only from here on).
        let mut frame = Value::NIL;
        let mut p = params;
        let mut i = 0;
        while self.heap.is_pair(p) {
            let sym = self.heap.car(p);
            let v = self.stack.get(args_base + i);
            let pair = self.heap.cons(sym, v);
            frame = self.heap.cons(pair, frame);
            i += 1;
            p = self.heap.cdr(p);
        }
        if self.heap.is_symbol(p) {
            // Rest parameter: collect the remaining args as a list.
            let mut rest = Value::NIL;
            for j in (i..argc).rev() {
                let v = self.stack.get(args_base + j);
                rest = self.heap.cons(v, rest);
            }
            let pair = self.heap.cons(p, rest);
            frame = self.heap.cons(pair, frame);
        }
        let op = self.stack.get(op_slot);
        let closure_env = self.heap.record_ref(op, 1);
        let new_env = self.make_env(frame, closure_env);
        let clauses = self.heap.record_ref(self.stack.get(op_slot), 0);
        let clause = self.select_clause(clauses, argc)?;
        let body = self.heap.cdr(clause);
        let begin_expr = self.heap.cons(self.sf.begin.get(), body);
        self.stack.set(base, begin_expr);
        self.stack.set(base + 1, new_env);
        Ok(())
    }

    /// `(define-record-type name (ctor field ...) pred
    ///    (field accessor [mutator]) ...)` — R7RS records, desugared to
    /// the `%record` primitives. The type name is bound to a fresh
    /// (uninterned) descriptor symbol, so each evaluation creates a
    /// distinct, eq-unique type.
    fn eval_define_record_type(&mut self, base: usize) -> SResult<()> {
        let expr = self.stack.get(base);
        let name = self.nth(expr, 1)?;
        let pred_name = self.nth(expr, 3)?;
        let field_specs = self.tail_from(expr, 4);
        if !self.heap.is_symbol(name) || !self.heap.is_symbol(pred_name) {
            return err("define-record-type: malformed");
        }
        // Collect field names in declaration order, with their accessors
        // and optional mutators.
        let mut fields: Vec<Value> = Vec::new(); // field symbols
        let mut accessors: Vec<(Value, usize)> = Vec::new();
        let mut mutators: Vec<(Value, usize)> = Vec::new();
        let mut fs = field_specs;
        while self.heap.is_pair(fs) {
            let spec = self.heap.car(fs);
            let field = self.scar(spec)?;
            let idx = fields.len();
            fields.push(field);
            let rest = self.scdr(spec)?;
            if self.heap.is_pair(rest) {
                accessors.push((self.heap.car(rest), idx));
                let rest2 = self.heap.cdr(rest);
                if self.heap.is_pair(rest2) {
                    mutators.push((self.heap.car(rest2), idx));
                }
            }
            fs = self.heap.cdr(fs);
        }
        // Bind the type name to a fresh descriptor symbol.
        let type_name = self.heap.symbol_name(name);
        let desc = self.heap.make_symbol(&type_name);
        let env2 = self.stack.get(base + 1);
        let name2 = self.nth(self.stack.get(base), 1)?;
        self.define_var(env2, name2, desc);

        // Constructor: map ctor args to field positions by name.
        let expr = self.stack.get(base);
        let ctor_spec = self.nth(expr, 2)?;
        let ctor_name = self.scar(ctor_spec)?;
        let mut ctor_args: Vec<Value> = Vec::new();
        let mut c = self.heap.cdr(ctor_spec);
        while self.heap.is_pair(c) {
            ctor_args.push(self.heap.car(c));
            c = self.heap.cdr(c);
        }
        // (lambda (args...) (%make-record <name> <arg-or-#f per field>))
        let make_sym = self.intern("%make-record");
        let mut call_fields: Vec<Value> = Vec::new();
        for f in &fields {
            if ctor_args.contains(f) {
                call_fields.push(*f);
            } else {
                call_fields.push(Value::FALSE);
            }
        }
        let name3 = self.nth(self.stack.get(base), 1)?;
        let mut call = Value::NIL;
        for v in call_fields.iter().rev() {
            call = self.heap.cons(*v, call);
        }
        call = self.heap.cons(name3, call);
        call = self.heap.cons(make_sym, call);
        let body = self.heap.cons(call, Value::NIL);
        let mut params = Value::NIL;
        for a in ctor_args.iter().rev() {
            params = self.heap.cons(*a, params);
        }
        let clause = self.heap.cons(params, body);
        let clauses = self.heap.cons(clause, Value::NIL);
        let env3 = self.stack.get(base + 1);
        let ctor_closure = self.make_closure(clauses, env3, ctor_name);
        self.define_var(env3, ctor_name, ctor_closure);

        // Predicate: (lambda (o) (%record-of-type? o <name>)).
        let obj_sym = self.intern("%obj");
        let val_sym = self.intern("%val");
        let pred_prim = self.intern("%record-of-type?");
        let name4 = self.nth(self.stack.get(base), 1)?;
        let call = {
            let t = self.heap.cons(name4, Value::NIL);
            let t = self.heap.cons(obj_sym, t);
            self.heap.cons(pred_prim, t)
        };
        let body = self.heap.cons(call, Value::NIL);
        let params = self.heap.cons(obj_sym, Value::NIL);
        let clause = self.heap.cons(params, body);
        let clauses = self.heap.cons(clause, Value::NIL);
        let env4 = self.stack.get(base + 1);
        let pred_name = self.nth(self.stack.get(base), 3)?;
        let pred_closure = self.make_closure(clauses, env4, pred_name);
        self.define_var(env4, pred_name, pred_closure);

        // Accessors and mutators.
        let ref_prim = self.intern("%record-ref");
        let set_prim = self.intern("%record-set!");
        for (acc_name, idx) in accessors {
            let name5 = self.nth(self.stack.get(base), 1)?;
            let call = {
                let t = self.heap.cons(Value::fixnum(idx as i64), Value::NIL);
                let t = self.heap.cons(name5, t);
                let t = self.heap.cons(obj_sym, t);
                self.heap.cons(ref_prim, t)
            };
            let body = self.heap.cons(call, Value::NIL);
            let params = self.heap.cons(obj_sym, Value::NIL);
            let clause = self.heap.cons(params, body);
            let clauses = self.heap.cons(clause, Value::NIL);
            let env5 = self.stack.get(base + 1);
            let closure = self.make_closure(clauses, env5, acc_name);
            self.define_var(env5, acc_name, closure);
        }
        for (mut_name, idx) in mutators {
            let name6 = self.nth(self.stack.get(base), 1)?;
            let call = {
                let t = self.heap.cons(val_sym, Value::NIL);
                let t = self.heap.cons(Value::fixnum(idx as i64), t);
                let t = self.heap.cons(name6, t);
                let t = self.heap.cons(obj_sym, t);
                self.heap.cons(set_prim, t)
            };
            let body = self.heap.cons(call, Value::NIL);
            let params = {
                let t = self.heap.cons(val_sym, Value::NIL);
                self.heap.cons(obj_sym, t)
            };
            let clause = self.heap.cons(params, body);
            let clauses = self.heap.cons(clause, Value::NIL);
            let env6 = self.stack.get(base + 1);
            let closure = self.make_closure(clauses, env6, mut_name);
            self.define_var(env6, mut_name, closure);
        }
        self.stack.set(base, Value::VOID);
        Ok(())
    }

    /// Expands a quasiquote template at `depth` (1 = unquotes evaluate).
    /// All intermediate structure is kept on the rooted stack, since
    /// nested unquotes evaluate arbitrary code (which may collect).
    fn expand_quasiquote(&mut self, base: usize, template: Value, depth: usize) -> SResult<Value> {
        if self.depth >= self.max_depth {
            return err("quasiquote nesting too deep");
        }
        self.depth += 1;
        let result = self.expand_quasiquote_inner(base, template, depth);
        self.depth -= 1;
        result
    }

    fn expand_quasiquote_inner(
        &mut self,
        base: usize,
        template: Value,
        depth: usize,
    ) -> SResult<Value> {
        let mark = self.stack.len();
        let result = (|| {
            if self.heap.is_vector(template) {
                // Expand the elements as a list, then rebuild the vector.
                let t_slot = self.stack.push(template);
                let mut items = Vec::new();
                for i in 0..self.heap.vector_len(self.stack.get(t_slot)) {
                    let e = self.heap.vector_ref(self.stack.get(t_slot), i);
                    let v = self.expand_quasiquote(base, e, depth)?;
                    items.push(self.stack.push(v));
                }
                let v = self.heap.make_vector(items.len(), Value::NIL);
                for (i, slot) in items.iter().enumerate() {
                    let item = self.stack.get(*slot);
                    self.heap.vector_set(v, i, item);
                }
                return Ok(v);
            }
            if !self.heap.is_pair(template) {
                return Ok(template);
            }
            let head = self.heap.car(template);
            if self.heap.is_symbol(head) {
                if head == self.sf.unquote.get() {
                    let inner = self.nth(template, 1)?;
                    if depth == 1 {
                        let env = self.stack.get(base + 1);
                        return self.eval(inner, env);
                    }
                    let e_slot = {
                        let v = self.expand_quasiquote(base, inner, depth - 1)?;
                        self.stack.push(v)
                    };
                    let tail = self.heap.cons(self.stack.get(e_slot), Value::NIL);
                    return Ok(self.heap.cons(self.sf.unquote.get(), tail));
                }
                if head == self.sf.quasiquote.get() {
                    let inner = self.nth(template, 1)?;
                    let e_slot = {
                        let v = self.expand_quasiquote(base, inner, depth + 1)?;
                        self.stack.push(v)
                    };
                    let tail = self.heap.cons(self.stack.get(e_slot), Value::NIL);
                    return Ok(self.heap.cons(self.sf.quasiquote.get(), tail));
                }
            }
            // General list walk with splicing, building a reversed
            // accumulator on the rooted stack.
            let acc_slot = self.stack.push(Value::NIL);
            let rest_slot = self.stack.push(template);
            let tail_slot = self.stack.push(Value::NIL);
            loop {
                let rest = self.stack.get(rest_slot);
                if rest.is_nil() {
                    break;
                }
                if !self.heap.is_pair(rest) {
                    // Improper tail: expand it and finish.
                    let v = self.expand_quasiquote(base, rest, depth)?;
                    self.stack.set(tail_slot, v);
                    break;
                }
                // `(a . ,x) reads as (a unquote x): an unquote (or nested
                // quasiquote) in tail position is a dotted tail.
                let rest_head = self.heap.car(rest);
                if self.heap.is_symbol(rest_head)
                    && (rest_head == self.sf.unquote.get() || rest_head == self.sf.quasiquote.get())
                {
                    let v = self.expand_quasiquote(base, rest, depth)?;
                    self.stack.set(tail_slot, v);
                    break;
                }
                let e = self.heap.car(rest);
                let is_splice = depth == 1
                    && self.heap.is_pair(e)
                    && self.heap.is_symbol(self.heap.car(e))
                    && self.heap.car(e) == self.sf.unquote_splicing.get();
                if is_splice {
                    let inner = self.nth(e, 1)?;
                    let env = self.stack.get(base + 1);
                    let spliced = self.eval(inner, env)?;
                    let sp_slot = self.stack.push(spliced);
                    loop {
                        let sp = self.stack.get(sp_slot);
                        if sp.is_nil() {
                            break;
                        }
                        if !self.heap.is_pair(sp) {
                            return err("unquote-splicing: not a list");
                        }
                        let item = self.heap.car(sp);
                        let acc = self.stack.get(acc_slot);
                        let cell = self.heap.cons(item, acc);
                        self.stack.set(acc_slot, cell);
                        let sp = self.stack.get(sp_slot);
                        self.stack.set(sp_slot, self.heap.cdr(sp));
                    }
                } else {
                    let v = self.expand_quasiquote(base, e, depth)?;
                    let acc = self.stack.get(acc_slot);
                    let cell = self.heap.cons(v, acc);
                    self.stack.set(acc_slot, cell);
                }
                let rest = self.stack.get(rest_slot);
                self.stack.set(rest_slot, self.heap.cdr(rest));
            }
            // Reverse the accumulator onto the tail.
            let mut out = self.stack.get(tail_slot);
            let mut acc = self.stack.get(acc_slot);
            while !acc.is_nil() {
                let item = self.heap.car(acc);
                out = self.heap.cons(item, out);
                acc = self.heap.cdr(acc);
            }
            Ok(out)
        })();
        self.stack.truncate(mark);
        result
    }

    fn select_clause(&self, clauses: Value, argc: usize) -> SResult<Value> {
        let mut c = clauses;
        while self.heap.is_pair(c) {
            let clause = self.heap.car(c);
            if !self.heap.is_pair(clause) {
                c = self.heap.cdr(c);
                continue;
            }
            let mut params = self.heap.car(clause);
            let mut n = 0;
            while self.heap.is_pair(params) {
                n += 1;
                params = self.heap.cdr(params);
            }
            let variadic = self.heap.is_symbol(params);
            if (variadic && argc >= n) || (!variadic && argc == n) {
                return Ok(clause);
            }
            c = self.heap.cdr(c);
        }
        err(format!("no matching clause for {argc} arguments"))
    }

    /// Applies a procedure value to arguments (used by the `apply`
    /// primitive and by embedding code). Non-tail: closure bodies are
    /// evaluated recursively.
    pub fn apply(&mut self, f: Value, args: &[Value]) -> SResult<Value> {
        let base = self.stack.len();
        match self.mode {
            EvalMode::Naive => {
                // Fake expression/environment slots so the shared
                // machinery works.
                self.stack.push(Value::NIL);
                self.stack.push(self.global_env());
                let op_slot = self.stack.push(f);
                let args_base = self.stack.len();
                for &a in args {
                    self.stack.push(a);
                }
                let result = match self.apply_from_stack(base, op_slot, args_base, args.len()) {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => self.eval_loop(base), // closure: run the installed body
                    Err(e) => Err(e),
                };
                self.stack.truncate(base);
                result
            }
            EvalMode::Staged => {
                // Slot `base` is the environment slot apply_staged fills
                // with the callee's frame.
                self.stack.push(Value::FALSE);
                let op_slot = self.stack.push(f);
                let args_base = self.stack.len();
                for &a in args {
                    self.stack.push(a);
                }
                let result = match self.apply_staged(base, op_slot, args_base, args.len()) {
                    Ok(Applied::Value(v)) => Ok(v),
                    Ok(Applied::Tail(code)) => self.exec_loop(code, base),
                    Err(e) => Err(e),
                };
                self.stack.truncate(base);
                result
            }
            EvalMode::Vm => self.vm_apply_values(f, args),
        }
    }

    // ------------------------------------------------------------------
    // The staged execution engine
    // ------------------------------------------------------------------

    /// Runs an analyzed top-level form. The bottom environment is `#f`:
    /// analysis guarantees no `LocalRef` reaches past the frames it
    /// created, so the sentinel is never dereferenced.
    pub(crate) fn exec_top(&mut self, code: CodeRef) -> SResult<Value> {
        self.profile = self.heap.site_profile_enabled();
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let base = self.stack.len();
        self.stack.push(Value::FALSE);
        let result = self.exec_loop(code, base);
        self.stack.truncate(base);
        self.depth -= 1;
        result
    }

    /// Runs `code` in a fresh non-tail activation sharing the caller's
    /// environment (the staged analogue of the naive `eval` recursion,
    /// with the same depth guard).
    fn exec_sub(&mut self, code: &CodeRef, base: usize) -> SResult<Value> {
        if self.depth >= self.max_depth {
            return err(format!(
                "recursion too deep (max {} non-tail frames)",
                self.max_depth
            ));
        }
        self.depth += 1;
        let sub = self.stack.len();
        let env = self.stack.get(base);
        self.stack.push(env);
        let result = self.exec_loop(code.clone(), sub);
        self.stack.truncate(sub);
        self.depth -= 1;
        result
    }

    /// The frame `depth` levels out from `env` (field 0 is the parent).
    pub(crate) fn frame_at(&self, env: Value, depth: usize) -> Value {
        let mut frame = env;
        for _ in 0..depth {
            frame = self.heap.record_ref(frame, 0);
        }
        frame
    }

    /// The global value cell for a reference site, consulting and
    /// warming the site's one-entry inline cache. `None` means the
    /// symbol has never been defined.
    pub(crate) fn try_site_cell(&mut self, site: &GlobalSite) -> Option<Value> {
        if let Some(r) = site.cell.borrow().as_ref() {
            return Some(r.get());
        }
        let cell = SymbolTable::try_global_cell(&self.heap, site.sym.get())?;
        *site.cell.borrow_mut() = Some(self.heap.root(cell));
        Some(cell)
    }

    /// The staged trampoline: slot `base` holds the current environment
    /// frame; tail positions update the slot and loop.
    ///
    /// Each opcode's body lives in its own `step_*` method rather than
    /// inline match arms: a monolithic match gives every arm's locals a
    /// distinct slot in one giant frame (debug builds don't coalesce),
    /// and that frame sits on the non-tail recursion spine ~400 deep.
    /// Splitting keeps the spine paying only for the arms it executes.
    fn exec_loop(&mut self, mut code: CodeRef, base: usize) -> SResult<Value> {
        loop {
            self.stack.truncate(base + 1);
            match self.exec_step(&code, base)? {
                Applied::Value(v) => return Ok(v),
                Applied::Tail(next) => code = next,
            }
        }
    }

    /// Executes one opcode: a value, or the tail code to continue with.
    fn exec_step(&mut self, code: &CodeRef, base: usize) -> SResult<Applied> {
        if self.profile {
            // Attribute every allocation the opcode (or the primitives it
            // applies) performs to the opcode kind; see `site_of`.
            self.heap.set_alloc_site(site_of(code));
        }
        match &**code {
            Code::Imm(v) => Ok(Applied::Value(*v)),
            Code::Const(r) => Ok(Applied::Value(r.get())),
            Code::LocalRef { depth, slot, name } => self.step_local_ref(base, *depth, *slot, name),
            Code::GlobalRef(site) => self.step_global_ref(site),
            Code::LocalSet { depth, slot, value } => {
                self.step_local_set(base, *depth, *slot, value)
            }
            Code::GlobalSet { site, value } => self.step_global_set(base, site, value),
            Code::GlobalDefine { site, value } => self.step_global_define(base, site, value),
            Code::If { test, then_, else_ } => self.step_if(base, test, then_, else_),
            Code::Lambda { index, name } => self.step_lambda(base, *index, name),
            Code::Seq(parts) => self.step_seq(base, parts),
            Code::Let {
                n_slots,
                inits,
                body,
            } => self.step_let(base, *n_slots, inits, body),
            Code::NamedLet {
                index,
                name,
                args,
                bump_gensym,
            } => self.step_named_let(base, *index, name, args, *bump_gensym),
            Code::And(parts) => self.step_and(base, parts),
            Code::Or(parts) => self.step_or(base, parts),
            Code::When { test, want, body } => self.step_when(base, test, *want, body),
            Code::CondArrow { test, recv, rest } => self.step_cond_arrow(base, test, recv, rest),
            Code::Case { key, clauses } => self.step_case(base, key, clauses),
            Code::App { op, args } => self.step_app(base, op, args),
            Code::Quasi { template, sites } => {
                let t = template.get();
                let sites = sites.clone();
                let mut cursor = 0;
                self.exec_quasi(base, t, 1, &QuasiSites::Tree(&sites), &mut cursor)
                    .map(Applied::Value)
            }
        }
    }

    fn step_local_ref(
        &mut self,
        base: usize,
        depth: usize,
        slot: usize,
        name: &str,
    ) -> SResult<Applied> {
        let env = self.stack.get(base);
        let frame = self.frame_at(env, depth);
        debug_assert!(
            1 + slot < self.heap.record_len(frame),
            "frame-slot accounting: {name} resolved to slot {slot} in a frame of {} slots",
            self.heap.record_len(frame) - 1
        );
        let v = self.heap.record_ref(frame, 1 + slot);
        if v == Value::UNBOUND {
            return err(format!("variable {name} used before initialization"));
        }
        Ok(Applied::Value(v))
    }

    fn step_global_ref(&mut self, site: &GlobalSite) -> SResult<Applied> {
        let cell = match self.try_site_cell(site) {
            Some(c) => c,
            None => return err(format!("unbound variable: {}", site.name)),
        };
        let v = self.heap.box_ref(cell);
        if v == Value::UNBOUND {
            return err(format!("unbound variable: {}", site.name));
        }
        Ok(Applied::Value(v))
    }

    fn step_local_set(
        &mut self,
        base: usize,
        depth: usize,
        slot: usize,
        value: &CodeRef,
    ) -> SResult<Applied> {
        let v = self.exec_sub(value, base)?;
        let env = self.stack.get(base);
        let frame = self.frame_at(env, depth);
        debug_assert!(
            1 + slot < self.heap.record_len(frame),
            "frame-slot accounting: set! target slot {slot} in a frame of {} slots",
            self.heap.record_len(frame) - 1
        );
        self.heap.record_set(frame, 1 + slot, v);
        Ok(Applied::Value(Value::VOID))
    }

    fn step_global_set(
        &mut self,
        base: usize,
        site: &GlobalSite,
        value: &CodeRef,
    ) -> SResult<Applied> {
        // Value first, then the unbound check — the naive evaluator
        // evaluates before `set_var` fails.
        let v = self.exec_sub(value, base)?;
        let cell = match self.try_site_cell(site) {
            Some(c) if self.heap.box_ref(c) != Value::UNBOUND => c,
            _ => return err(format!("set!: unbound variable: {}", site.name)),
        };
        self.heap.box_set(cell, v);
        Ok(Applied::Value(Value::VOID))
    }

    fn step_global_define(
        &mut self,
        base: usize,
        site: &GlobalSite,
        value: &CodeRef,
    ) -> SResult<Applied> {
        // Value first, then cell creation, so `(define x x)` reports x
        // unbound exactly like the naive path.
        let v = self.exec_sub(value, base)?;
        let sym = site.sym.get();
        let cell = SymbolTable::global_cell(&mut self.heap, sym);
        self.heap.box_set(cell, v);
        if site.cell.borrow().is_none() {
            let rooted = self.heap.root(cell);
            *site.cell.borrow_mut() = Some(rooted);
        }
        Ok(Applied::Value(Value::VOID))
    }

    fn step_if(
        &mut self,
        base: usize,
        test: &CodeRef,
        then_: &CodeRef,
        else_: &Option<CodeRef>,
    ) -> SResult<Applied> {
        let c = self.exec_sub(test, base)?;
        if c.is_truthy() {
            Ok(Applied::Tail(then_.clone()))
        } else {
            match else_ {
                Some(e) => Ok(Applied::Tail(e.clone())),
                None => Ok(Applied::Value(Value::VOID)),
            }
        }
    }

    fn step_lambda(&mut self, base: usize, index: usize, name: &Rooted) -> SResult<Applied> {
        let env = self.stack.get(base);
        let idx = Value::fixnum(index as i64);
        let nm = name.get();
        Ok(Applied::Value(
            self.heap
                .make_record(rtags::compiled_closure(), &[idx, env, nm]),
        ))
    }

    fn step_seq(&mut self, base: usize, parts: &[CodeRef]) -> SResult<Applied> {
        let Some((last, init)) = parts.split_last() else {
            return Ok(Applied::Value(Value::VOID));
        };
        for p in init {
            self.exec_sub(p, base)?;
        }
        Ok(Applied::Tail(last.clone()))
    }

    fn step_let(
        &mut self,
        base: usize,
        n_slots: usize,
        inits: &[CodeRef],
        body: &CodeRef,
    ) -> SResult<Applied> {
        let vals_base = self.stack.len();
        for init in inits {
            let v = self.exec_sub(init, base)?;
            self.stack.push(v);
        }
        if self.profile {
            // The inits re-stamped the site; the frame is the `let`'s own.
            self.heap.set_alloc_site("scheme.let");
        }
        // Allocation never collects: the raw frame pointer stays valid
        // while the slots are filled.
        let frame = self
            .heap
            .make_record_filled(rtags::frame(), 1 + n_slots, Value::UNBOUND);
        let parent = self.stack.get(base);
        self.heap.record_set(frame, 0, parent);
        for i in 0..inits.len() {
            let v = self.stack.get(vals_base + i);
            self.heap.record_set(frame, 1 + i, v);
        }
        self.stack.set(base, frame);
        Ok(Applied::Tail(body.clone()))
    }

    fn step_named_let(
        &mut self,
        base: usize,
        index: usize,
        name: &Rooted,
        args: &[CodeRef],
        bump_gensym: bool,
    ) -> SResult<Applied> {
        if bump_gensym {
            // Lockstep with the naive `do` desugar's gensym.
            self.gensym_counter += 1;
        }
        let args_base = self.stack.len();
        for a in args {
            let v = self.exec_sub(a, base)?;
            self.stack.push(v);
        }
        let argc = args.len();
        if self.profile {
            self.heap.set_alloc_site("scheme.named-let");
        }
        // One-slot frame holding the loop closure (letrec-style
        // self-reference).
        let name_frame = self
            .heap
            .make_record_filled(rtags::frame(), 2, Value::UNBOUND);
        let parent = self.stack.get(base);
        self.heap.record_set(name_frame, 0, parent);
        let idx_v = Value::fixnum(index as i64);
        let nm = name.get();
        let closure = self
            .heap
            .make_record(rtags::compiled_closure(), &[idx_v, name_frame, nm]);
        self.heap.record_set(name_frame, 1, closure);
        let lc = self.code_tab[index].clone();
        let clause = select_staged_clause(&lc, argc)?;
        let frame =
            self.heap
                .make_record_filled(rtags::frame(), 1 + clause.n_slots, Value::UNBOUND);
        self.heap.record_set(frame, 0, name_frame);
        for i in 0..argc {
            let v = self.stack.get(args_base + i);
            self.heap.record_set(frame, 1 + i, v);
        }
        // No safe point here: the naive evaluator enters the loop body
        // via install_closure_call without passing through maybe_collect
        // either.
        self.stack.set(base, frame);
        Ok(Applied::Tail(clause.body.clone()))
    }

    fn step_and(&mut self, base: usize, parts: &[CodeRef]) -> SResult<Applied> {
        let (last, init) = parts.split_last().expect("analysis folds empty and");
        for p in init {
            let v = self.exec_sub(p, base)?;
            if !v.is_truthy() {
                return Ok(Applied::Value(v));
            }
        }
        Ok(Applied::Tail(last.clone()))
    }

    fn step_or(&mut self, base: usize, parts: &[CodeRef]) -> SResult<Applied> {
        let (last, init) = parts.split_last().expect("analysis folds empty or");
        for p in init {
            let v = self.exec_sub(p, base)?;
            if v.is_truthy() {
                return Ok(Applied::Value(v));
            }
        }
        Ok(Applied::Tail(last.clone()))
    }

    fn step_when(
        &mut self,
        base: usize,
        test: &CodeRef,
        want: bool,
        body: &CodeRef,
    ) -> SResult<Applied> {
        let c = self.exec_sub(test, base)?;
        if c.is_truthy() != want {
            return Ok(Applied::Value(Value::VOID));
        }
        Ok(Applied::Tail(body.clone()))
    }

    fn step_cond_arrow(
        &mut self,
        base: usize,
        test: &CodeRef,
        recv: &CodeRef,
        rest: &CodeRef,
    ) -> SResult<Applied> {
        let v = self.exec_sub(test, base)?;
        if v.is_truthy() {
            // Non-tail application of the receiver, exactly like the
            // naive `cond` arrow path.
            let v_slot = self.stack.push(v);
            let f = self.exec_sub(recv, base)?;
            let v = self.stack.get(v_slot);
            return self.apply(f, &[v]).map(Applied::Value);
        }
        Ok(Applied::Tail(rest.clone()))
    }

    fn step_case(
        &mut self,
        base: usize,
        key: &CodeRef,
        clauses: &[analyze::CaseClause],
    ) -> SResult<Applied> {
        let key_v = self.exec_sub(key, base)?;
        // Matching neither allocates nor collects, so the raw key stays
        // valid across the clause walk.
        for cl in clauses {
            let matched = match &cl.datums {
                None => true,
                Some(datums) => {
                    let mut d = datums.get();
                    let mut m = false;
                    while self.heap.is_pair(d) {
                        if self.heap.eqv(self.heap.car(d), key_v) {
                            m = true;
                            break;
                        }
                        d = self.heap.cdr(d);
                    }
                    m
                }
            };
            if matched {
                return Ok(Applied::Tail(cl.body.clone()));
            }
        }
        Ok(Applied::Value(Value::VOID))
    }

    fn step_app(&mut self, base: usize, op: &CodeRef, args: &[CodeRef]) -> SResult<Applied> {
        let op_v = self.exec_sub(op, base)?;
        let op_slot = self.stack.push(op_v);
        let args_base = self.stack.len();
        for a in args {
            let v = self.exec_sub(a, base)?;
            self.stack.push(v);
        }
        self.apply_staged(base, op_slot, args_base, args.len())
    }

    /// Applies the value in `op_slot` to the `argc` values starting at
    /// `args_base`. This is the staged collection safe point — placed at
    /// every application, exactly where the naive evaluator collects, so
    /// guardian and weak-pair observables match between modes.
    fn apply_staged(
        &mut self,
        base: usize,
        op_slot: usize,
        args_base: usize,
        argc: usize,
    ) -> SResult<Applied> {
        if self.profile {
            // Evaluating the operands re-stamped the site with their own
            // opcodes; the frame/prim allocations below belong to the
            // application itself.
            self.heap.set_alloc_site("scheme.app");
        }
        // Everything live is on the rooted stack: safe to collect.
        let collected = self.heap.maybe_collect().is_some();
        if collected && !self.in_collect_handler {
            if let Some(handler) = self.collect_handler.clone() {
                self.in_collect_handler = true;
                let result = self.apply(handler.get(), &[]);
                self.in_collect_handler = false;
                result?;
            }
        }
        let op = self.stack.get(op_slot);
        if self.heap.is_record(op) {
            let desc = self.heap.record_descriptor(op);
            if desc == rtags::compiled_closure() {
                let index = self.heap.record_ref(op, 0).as_fixnum() as usize;
                let lc = self.code_tab[index].clone();
                let clause = select_staged_clause(&lc, argc)?;
                let frame = self.heap.make_record_filled(
                    rtags::frame(),
                    1 + clause.n_slots,
                    Value::UNBOUND,
                );
                let op = self.stack.get(op_slot);
                let closure_env = self.heap.record_ref(op, 1);
                self.heap.record_set(frame, 0, closure_env);
                for i in 0..clause.n_req {
                    let v = self.stack.get(args_base + i);
                    self.heap.record_set(frame, 1 + i, v);
                }
                if clause.variadic {
                    let mut rest = Value::NIL;
                    for j in (clause.n_req..argc).rev() {
                        let v = self.stack.get(args_base + j);
                        rest = self.heap.cons(v, rest);
                    }
                    self.heap.record_set(frame, 1 + clause.n_req, rest);
                }
                self.stack.set(base, frame);
                return Ok(Applied::Tail(clause.body.clone()));
            }
            if desc == rtags::primitive() {
                let index = self.heap.record_ref(op, 0).as_fixnum() as usize;
                let args: Vec<Value> = (0..argc).map(|i| self.stack.get(args_base + i)).collect();
                let entry = &self.prims[index];
                if args.len() < entry.min_args || entry.max_args.is_some_and(|m| args.len() > m) {
                    return err(format!(
                        "{}: wrong number of arguments ({})",
                        entry.name,
                        args.len()
                    ));
                }
                let f = entry.func;
                return f(self, &args).map(Applied::Value);
            }
            if desc == rtags::guardian() {
                let tconc = self.heap.record_ref(op, 0);
                return match argc {
                    // (G) — retrieve, or #f.
                    0 => Ok(Applied::Value(
                        self.heap.tconc_pop(tconc).unwrap_or(Value::FALSE),
                    )),
                    // (G obj) — register.
                    1 => {
                        let obj = self.stack.get(args_base);
                        self.heap.guardian_register(tconc, obj, obj);
                        Ok(Applied::Value(Value::VOID))
                    }
                    // (G obj agent) — the Section 5 generalisation.
                    2 => {
                        let obj = self.stack.get(args_base);
                        let agent = self.stack.get(args_base + 1);
                        self.heap.guardian_register(tconc, obj, agent);
                        Ok(Applied::Value(Value::VOID))
                    }
                    _ => err("guardian: expects 0, 1, or 2 arguments"),
                };
            }
        }
        err(format!(
            "not a procedure: {}",
            guardians_runtime::printer::write_value(&self.heap, op)
        ))
    }

    /// Expands a quasiquote template at runtime, consuming the
    /// pre-analyzed unquote sites in walk order. This mirrors the naive
    /// `expand_quasiquote` walk exactly (same structure sharing, same
    /// splice semantics, same error messages) with site execution in
    /// place of `eval`.
    pub(crate) fn exec_quasi(
        &mut self,
        base: usize,
        template: Value,
        depth_qq: usize,
        sites: &QuasiSites<'_>,
        cursor: &mut usize,
    ) -> SResult<Value> {
        if self.depth >= self.max_depth {
            return err("quasiquote nesting too deep");
        }
        self.depth += 1;
        let result = self.exec_quasi_inner(base, template, depth_qq, sites, cursor);
        self.depth -= 1;
        result
    }

    /// Runs the next pre-analyzed unquote site, in whichever form the
    /// active tier carries it (opcode tree or bytecode), as a fresh
    /// non-tail activation sharing the current environment.
    fn run_quasi_site(
        &mut self,
        sites: &QuasiSites<'_>,
        cursor: &mut usize,
        base: usize,
    ) -> SResult<Value> {
        match sites {
            QuasiSites::Tree(s) => {
                let site = next_site(s, cursor)?;
                self.exec_sub(&site, base)
            }
            QuasiSites::Vm(s) => {
                let Some(site) = s.get(*cursor) else {
                    return err("quasiquote: template changed since analysis");
                };
                *cursor += 1;
                let site = site.clone();
                self.vm_sub(&site, base)
            }
        }
    }

    fn exec_quasi_inner(
        &mut self,
        base: usize,
        template: Value,
        depth_qq: usize,
        sites: &QuasiSites<'_>,
        cursor: &mut usize,
    ) -> SResult<Value> {
        let mark = self.stack.len();
        let result = (|| {
            if self.heap.is_vector(template) {
                // Expand the elements, then rebuild the vector.
                let t_slot = self.stack.push(template);
                let mut items = Vec::new();
                for i in 0..self.heap.vector_len(self.stack.get(t_slot)) {
                    let e = self.heap.vector_ref(self.stack.get(t_slot), i);
                    let v = self.exec_quasi(base, e, depth_qq, sites, cursor)?;
                    items.push(self.stack.push(v));
                }
                let v = self.heap.make_vector(items.len(), Value::NIL);
                for (i, slot) in items.iter().enumerate() {
                    let item = self.stack.get(*slot);
                    self.heap.vector_set(v, i, item);
                }
                return Ok(v);
            }
            if !self.heap.is_pair(template) {
                return Ok(template);
            }
            let head = self.heap.car(template);
            if self.heap.is_symbol(head) {
                if head == self.sf.unquote.get() {
                    let inner = self.nth(template, 1)?;
                    if depth_qq == 1 {
                        return self.run_quasi_site(sites, cursor, base);
                    }
                    let e_slot = {
                        let v = self.exec_quasi(base, inner, depth_qq - 1, sites, cursor)?;
                        self.stack.push(v)
                    };
                    let tail = self.heap.cons(self.stack.get(e_slot), Value::NIL);
                    return Ok(self.heap.cons(self.sf.unquote.get(), tail));
                }
                if head == self.sf.quasiquote.get() {
                    let inner = self.nth(template, 1)?;
                    let e_slot = {
                        let v = self.exec_quasi(base, inner, depth_qq + 1, sites, cursor)?;
                        self.stack.push(v)
                    };
                    let tail = self.heap.cons(self.stack.get(e_slot), Value::NIL);
                    return Ok(self.heap.cons(self.sf.quasiquote.get(), tail));
                }
            }
            // General list walk with splicing, building a reversed
            // accumulator on the rooted stack.
            let acc_slot = self.stack.push(Value::NIL);
            let rest_slot = self.stack.push(template);
            let tail_slot = self.stack.push(Value::NIL);
            loop {
                let rest = self.stack.get(rest_slot);
                if rest.is_nil() {
                    break;
                }
                if !self.heap.is_pair(rest) {
                    // Improper tail: expand it and finish.
                    let v = self.exec_quasi(base, rest, depth_qq, sites, cursor)?;
                    self.stack.set(tail_slot, v);
                    break;
                }
                // An unquote (or nested quasiquote) in tail position is
                // a dotted tail.
                let rest_head = self.heap.car(rest);
                if self.heap.is_symbol(rest_head)
                    && (rest_head == self.sf.unquote.get() || rest_head == self.sf.quasiquote.get())
                {
                    let v = self.exec_quasi(base, rest, depth_qq, sites, cursor)?;
                    self.stack.set(tail_slot, v);
                    break;
                }
                let e = self.heap.car(rest);
                let is_splice = depth_qq == 1
                    && self.heap.is_pair(e)
                    && self.heap.is_symbol(self.heap.car(e))
                    && self.heap.car(e) == self.sf.unquote_splicing.get();
                if is_splice {
                    let spliced = self.run_quasi_site(sites, cursor, base)?;
                    let sp_slot = self.stack.push(spliced);
                    loop {
                        let sp = self.stack.get(sp_slot);
                        if sp.is_nil() {
                            break;
                        }
                        if !self.heap.is_pair(sp) {
                            return err("unquote-splicing: not a list");
                        }
                        let item = self.heap.car(sp);
                        let acc = self.stack.get(acc_slot);
                        let cell = self.heap.cons(item, acc);
                        self.stack.set(acc_slot, cell);
                        let sp = self.stack.get(sp_slot);
                        self.stack.set(sp_slot, self.heap.cdr(sp));
                    }
                } else {
                    let v = self.exec_quasi(base, e, depth_qq, sites, cursor)?;
                    let acc = self.stack.get(acc_slot);
                    let cell = self.heap.cons(v, acc);
                    self.stack.set(acc_slot, cell);
                }
                let rest = self.stack.get(rest_slot);
                self.stack.set(rest_slot, self.heap.cdr(rest));
            }
            // Reverse the accumulator onto the tail.
            let mut out = self.stack.get(tail_slot);
            let mut acc = self.stack.get(acc_slot);
            while !acc.is_nil() {
                let item = self.heap.car(acc);
                out = self.heap.cons(item, out);
                acc = self.heap.cdr(acc);
            }
            Ok(out)
        })();
        self.stack.truncate(mark);
        result
    }
}

/// Result of a staged application: an immediate value (primitives,
/// guardians) or a tail call to run (compiled closures).
pub(crate) enum Applied {
    /// The application completed with this value.
    Value(Value),
    /// Run this body; the callee's frame is already installed at `base`.
    Tail(CodeRef),
}

/// The pre-analyzed unquote sites of a quasiquote template, in whichever
/// lowered form the active tier executes: opcode subtrees (staged) or
/// compiled code objects (VM). The runtime walk in `exec_quasi` is
/// shared; only site execution differs.
pub(crate) enum QuasiSites<'a> {
    /// Staged tier: analyzed subtrees.
    Tree(&'a [CodeRef]),
    /// VM tier: compiled site bodies.
    Vm(&'a [Rc<crate::compile::CodeObject>]),
}

/// Selects the clause matching `argc`, with the naive evaluator's error.
fn select_staged_clause(lc: &LambdaCode, argc: usize) -> SResult<&crate::analyze::ClauseCode> {
    for clause in &lc.clauses {
        if (clause.variadic && argc >= clause.n_req) || (!clause.variadic && argc == clause.n_req) {
            return Ok(clause);
        }
    }
    err(format!("no matching clause for {argc} arguments"))
}

/// The allocation-site label for an opcode, used by the heap's site
/// profile ([`Heap::set_alloc_site`]): every allocation made while the
/// opcode (or a primitive it applies) runs is attributed to this name.
/// Labels are `&'static str` so attribution costs one pointer store.
fn site_of(code: &Code) -> &'static str {
    match code {
        Code::Imm(_) => "scheme.imm",
        Code::Const(_) => "scheme.const",
        Code::LocalRef { .. } => "scheme.local-ref",
        Code::GlobalRef(_) => "scheme.global-ref",
        Code::LocalSet { .. } => "scheme.local-set",
        Code::GlobalSet { .. } => "scheme.global-set",
        Code::GlobalDefine { .. } => "scheme.define",
        Code::If { .. } => "scheme.if",
        Code::Lambda { .. } => "scheme.lambda",
        Code::Seq(_) => "scheme.seq",
        Code::Let { .. } => "scheme.let",
        Code::NamedLet { .. } => "scheme.named-let",
        Code::And(_) => "scheme.and",
        Code::Or(_) => "scheme.or",
        Code::When { .. } => "scheme.when",
        Code::CondArrow { .. } => "scheme.cond-arrow",
        Code::Case { .. } => "scheme.case",
        Code::App { .. } => "scheme.app",
        Code::Quasi { .. } => "scheme.quasiquote",
    }
}

/// The next pre-analyzed quasiquote site, in template walk order.
fn next_site(sites: &[CodeRef], cursor: &mut usize) -> SResult<CodeRef> {
    let Some(site) = sites.get(*cursor) else {
        return err("quasiquote: template changed since analysis");
    };
    *cursor += 1;
    Ok(site.clone())
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

impl std::fmt::Debug for Interp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interp")
            .field("heap", &self.heap)
            .field("primitives", &self.prims.len())
            .finish()
    }
}
