//! The reader: tokens → heap s-expressions.
//!
//! Reading allocates but never collects, so the returned values are valid
//! until the next collection; callers root them (the interpreter's
//! `eval_str` roots the whole form list before evaluating).

use crate::error::{err, SResult};
use crate::lexer::{tokenize, Token};
use guardians_gc::{Heap, Value};
use guardians_runtime::symtab::SymbolTable;

/// Reads every datum in `src`.
///
/// # Errors
///
/// Propagates lexer errors and reports unbalanced/dangling syntax.
pub fn read_all(heap: &mut Heap, symbols: &mut SymbolTable, src: &str) -> SResult<Vec<Value>> {
    let tokens = tokenize(src)?;
    let mut reader = Reader {
        heap,
        symbols,
        tokens,
        pos: 0,
    };
    let mut forms = Vec::new();
    while !reader.at_end() {
        forms.push(reader.read()?);
    }
    Ok(forms)
}

/// Reads exactly one datum.
///
/// # Errors
///
/// As for [`read_all`], plus an error if there is not exactly one datum.
pub fn read_one(heap: &mut Heap, symbols: &mut SymbolTable, src: &str) -> SResult<Value> {
    let forms = read_all(heap, symbols, src)?;
    match forms.as_slice() {
        [v] => Ok(*v),
        _ => err(format!("expected exactly one datum, found {}", forms.len())),
    }
}

struct Reader<'a> {
    heap: &'a mut Heap,
    symbols: &'a mut SymbolTable,
    tokens: Vec<Token>,
    pos: usize,
}

impl Reader<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> SResult<Token> {
        if self.at_end() {
            return err("unexpected end of input");
        }
        let t = self.tokens[self.pos].clone();
        self.pos += 1;
        Ok(t)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn read(&mut self) -> SResult<Value> {
        match self.next()? {
            Token::Fixnum(n) => Ok(Value::fixnum(n)),
            Token::Flonum(f) => Ok(self.heap.make_flonum(f)),
            Token::Bool(b) => Ok(Value::bool(b)),
            Token::Char(c) => Ok(Value::char(c)),
            Token::Str(s) => Ok(self.heap.make_string(&s)),
            Token::Symbol(s) => Ok(self.symbols.intern(self.heap, &s)),
            Token::Quote => self.wrap("quote"),
            Token::Backquote => self.wrap("quasiquote"),
            Token::Unquote => self.wrap("unquote"),
            Token::UnquoteSplicing => self.wrap("unquote-splicing"),
            Token::LParen => self.read_list(),
            Token::VecOpen => self.read_vector(),
            Token::RParen => err("unexpected )"),
            Token::Dot => err("unexpected ."),
        }
    }

    fn wrap(&mut self, tag: &str) -> SResult<Value> {
        let datum = self.read()?;
        let sym = self.symbols.intern(self.heap, tag);
        let tail = self.heap.cons(datum, Value::NIL);
        Ok(self.heap.cons(sym, tail))
    }

    fn read_list(&mut self) -> SResult<Value> {
        let mut items = Vec::new();
        let mut tail = Value::NIL;
        loop {
            match self.peek() {
                None => return err("unterminated list"),
                Some(Token::RParen) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                    tail = self.read()?;
                    match self.next()? {
                        Token::RParen => break,
                        _ => return err("malformed dotted pair"),
                    }
                }
                Some(_) => items.push(self.read()?),
            }
        }
        let mut out = tail;
        for &v in items.iter().rev() {
            out = self.heap.cons(v, out);
        }
        Ok(out)
    }

    fn read_vector(&mut self) -> SResult<Value> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return err("unterminated vector"),
                Some(Token::RParen) => {
                    self.pos += 1;
                    break;
                }
                Some(_) => items.push(self.read()?),
            }
        }
        let v = self.heap.make_vector(items.len(), Value::NIL);
        for (i, item) in items.iter().enumerate() {
            self.heap.vector_set(v, i, *item);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardians_runtime::printer::write_value;

    fn roundtrip(src: &str) -> String {
        let mut heap = Heap::default();
        let mut syms = SymbolTable::new();
        let v = read_one(&mut heap, &mut syms, src).unwrap();
        write_value(&heap, v)
    }

    #[test]
    fn atoms() {
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("#t"), "#t");
        assert_eq!(roundtrip("foo"), "foo");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
        assert_eq!(roundtrip("1.5"), "1.5");
    }

    #[test]
    fn lists_and_dots() {
        assert_eq!(roundtrip("(1 2 3)"), "(1 2 3)");
        assert_eq!(roundtrip("(a . b)"), "(a . b)");
        assert_eq!(roundtrip("(a b . c)"), "(a b . c)");
        assert_eq!(roundtrip("()"), "()");
        assert_eq!(roundtrip("((1) (2))"), "((1) (2))");
    }

    #[test]
    fn quote_expands() {
        assert_eq!(roundtrip("'x"), "(quote x)");
        assert_eq!(roundtrip("'(a b)"), "(quote (a b))");
    }

    #[test]
    fn vectors() {
        assert_eq!(roundtrip("#(1 2 3)"), "#(1 2 3)");
    }

    #[test]
    fn symbols_are_interned() {
        let mut heap = Heap::default();
        let mut syms = SymbolTable::new();
        let forms = read_all(&mut heap, &mut syms, "x x").unwrap();
        assert_eq!(forms[0], forms[1], "same symbol object");
    }

    #[test]
    fn figure_1_parses() {
        // The paper's Figure 1 code (cleaned of OCR damage) must parse.
        let src = r#"
(define make-guarded-hash-table
  (lambda (hash size)
    (let ([g (make-guardian)] [v (make-vector size '())])
      (lambda (key value)
        (let loop ([z (g)])
          (if z
              (let ([h (remainder (hash z) size)])
                (let ([bucket (vector-ref v h)])
                  (vector-set! v h (remq (assq z bucket) bucket))
                  (loop (g))))
              #f))
        (let ([h (remainder (hash key) size)])
          (let ([bucket (vector-ref v h)])
            (let ([a (assq key bucket)])
              (if a
                  (cdr a)
                  (let ([a (weak-cons key value)])
                    (vector-set! v h (cons a bucket))
                    value)))))))))
"#;
        let mut heap = Heap::default();
        let mut syms = SymbolTable::new();
        let forms = read_all(&mut heap, &mut syms, src).unwrap();
        assert_eq!(forms.len(), 1);
    }

    #[test]
    fn errors() {
        let mut heap = Heap::default();
        let mut syms = SymbolTable::new();
        assert!(read_all(&mut heap, &mut syms, "(").is_err());
        assert!(read_all(&mut heap, &mut syms, ")").is_err());
        assert!(read_all(&mut heap, &mut syms, "(a . )").is_err());
        assert!(read_one(&mut heap, &mut syms, "1 2").is_err());
    }
}
