//! Tokenizer for the Scheme reader.

use crate::error::{err, SResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `(` or `[`
    LParen,
    /// `)` or `]`
    RParen,
    /// `#(` — vector literal opener.
    VecOpen,
    /// `'`
    Quote,
    /// `` ` ``
    Backquote,
    /// `,`
    Unquote,
    /// `,@`
    UnquoteSplicing,
    /// `.` in dotted pairs.
    Dot,
    /// `#t` / `#f`
    Bool(bool),
    /// An exact integer literal.
    Fixnum(i64),
    /// An inexact (floating-point) literal.
    Flonum(f64),
    /// A string literal, unescaped.
    Str(String),
    /// A character literal.
    Char(char),
    /// An identifier.
    Symbol(String),
}

/// Tokenizes a whole source string.
///
/// # Errors
///
/// Returns an error on malformed strings, characters, or numbers.
pub fn tokenize(src: &str) -> SResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ';' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' | '[' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' | ']' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '\'' => {
                tokens.push(Token::Quote);
                i += 1;
            }
            '`' => {
                tokens.push(Token::Backquote);
                i += 1;
            }
            ',' => {
                if chars.get(i + 1) == Some(&'@') {
                    tokens.push(Token::UnquoteSplicing);
                    i += 2;
                } else {
                    tokens.push(Token::Unquote);
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return err("unterminated string literal");
                    }
                    match chars[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            if i >= chars.len() {
                                return err("unterminated escape in string");
                            }
                            s.push(match chars[i] {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                '\\' => '\\',
                                '"' => '"',
                                other => return err(format!("bad string escape: \\{other}")),
                            });
                            i += 1;
                        }
                        other => {
                            s.push(other);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '#' => {
                i += 1;
                if i >= chars.len() {
                    return err("lone # at end of input");
                }
                match chars[i] {
                    't' => {
                        tokens.push(Token::Bool(true));
                        i += 1;
                    }
                    'f' => {
                        tokens.push(Token::Bool(false));
                        i += 1;
                    }
                    '(' => {
                        tokens.push(Token::VecOpen);
                        i += 1;
                    }
                    '\\' => {
                        i += 1;
                        // Named characters first, then single characters.
                        let rest: String = chars[i..]
                            .iter()
                            .take_while(|c| c.is_alphanumeric() || **c == '-')
                            .collect();
                        let (ch, consumed) = match rest.as_str() {
                            "space" => (' ', 5),
                            "newline" => ('\n', 7),
                            "tab" => ('\t', 3),
                            "nul" => ('\0', 3),
                            _ => {
                                if i >= chars.len() {
                                    return err("unterminated character literal");
                                }
                                (chars[i], 1)
                            }
                        };
                        tokens.push(Token::Char(ch));
                        i += consumed;
                    }
                    other => return err(format!("unsupported # syntax: #{other}")),
                }
            }
            _ => {
                // Atom: number or symbol (Scheme identifiers are liberal).
                let start = i;
                while i < chars.len()
                    && !matches!(
                        chars[i],
                        ' ' | '\t'
                            | '\n'
                            | '\r'
                            | '('
                            | ')'
                            | '['
                            | ']'
                            | '"'
                            | ';'
                            | '\''
                            | '`'
                            | ','
                    )
                {
                    i += 1;
                }
                let atom: String = chars[start..i].iter().collect();
                tokens.push(classify_atom(&atom)?);
            }
        }
    }
    Ok(tokens)
}

fn classify_atom(atom: &str) -> SResult<Token> {
    if atom == "." {
        return Ok(Token::Dot);
    }
    // A number starts with a digit, or with +/- followed by a digit.
    let numeric_start = atom.chars().next().is_some_and(|c| c.is_ascii_digit())
        || (atom.len() > 1
            && (atom.starts_with('-') || atom.starts_with('+'))
            && atom
                .chars()
                .nth(1)
                .is_some_and(|c| c.is_ascii_digit() || c == '.'));
    if numeric_start {
        if atom.contains('.') || atom.contains('e') || atom.contains('E') {
            return match atom.parse::<f64>() {
                Ok(f) => Ok(Token::Flonum(f)),
                Err(_) => err(format!("malformed number: {atom}")),
            };
        }
        return match atom.parse::<i64>() {
            Ok(n) => Ok(Token::Fixnum(n)),
            Err(_) => err(format!("malformed number: {atom}")),
        };
    }
    Ok(Token::Symbol(atom.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_papers_example() {
        let toks = tokenize("(define G (make-guardian))").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Symbol("define".into()),
                Token::Symbol("G".into()),
                Token::LParen,
                Token::Symbol("make-guardian".into()),
                Token::RParen,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn numbers_and_signs() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Fixnum(42)]);
        assert_eq!(tokenize("-7").unwrap(), vec![Token::Fixnum(-7)]);
        assert_eq!(tokenize("3.5").unwrap(), vec![Token::Flonum(3.5)]);
        assert_eq!(tokenize("-0.25").unwrap(), vec![Token::Flonum(-0.25)]);
        assert_eq!(tokenize("+").unwrap(), vec![Token::Symbol("+".into())]);
        assert_eq!(tokenize("-").unwrap(), vec![Token::Symbol("-".into())]);
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Flonum(1000.0)]);
    }

    #[test]
    fn strings_chars_bools() {
        assert_eq!(
            tokenize("\"a\\nb\"").unwrap(),
            vec![Token::Str("a\nb".into())]
        );
        assert_eq!(
            tokenize("#t #f").unwrap(),
            vec![Token::Bool(true), Token::Bool(false)]
        );
        assert_eq!(tokenize("#\\a").unwrap(), vec![Token::Char('a')]);
        assert_eq!(tokenize("#\\space").unwrap(), vec![Token::Char(' ')]);
        assert_eq!(tokenize("#\\newline").unwrap(), vec![Token::Char('\n')]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            tokenize("; a comment\n42 ; trailing\n").unwrap(),
            vec![Token::Fixnum(42)]
        );
    }

    #[test]
    fn brackets_work_like_parens() {
        // The paper's code uses (let ([p ...]) ...) bracket style.
        let toks = tokenize("[a]").unwrap();
        assert_eq!(
            toks,
            vec![Token::LParen, Token::Symbol("a".into()), Token::RParen]
        );
    }

    #[test]
    fn dots_and_quotes() {
        assert_eq!(
            tokenize("'(a . b)").unwrap(),
            vec![
                Token::Quote,
                Token::LParen,
                Token::Symbol("a".into()),
                Token::Dot,
                Token::Symbol("b".into()),
                Token::RParen
            ]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("#q").is_err());
    }
}
