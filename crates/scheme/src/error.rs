//! Scheme-level errors.
//!
//! The paper makes a point of error behaviour: with collector-invoked
//! finalizers, "errors that occur within the thunk are problematic …
//! error signals must be suppressed or somehow delayed". With guardians,
//! clean-up runs as ordinary mutator code, so an error is an ordinary
//! [`SchemeError`] propagating to the ordinary handler — one of the
//! properties the integration tests demonstrate.

use std::fmt;

/// An error raised while reading or evaluating Scheme code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeError {
    message: String,
}

impl SchemeError {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> SchemeError {
        SchemeError {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheme error: {}", self.message)
    }
}

impl std::error::Error for SchemeError {}

/// Convenience alias.
pub type SResult<T> = Result<T, SchemeError>;

/// Builds an error.
pub fn err<T>(message: impl Into<String>) -> SResult<T> {
    Err(SchemeError::new(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = SchemeError::new("car: not a pair");
        assert_eq!(e.to_string(), "scheme error: car: not a pair");
        assert_eq!(e.message(), "car: not a pair");
    }
}
