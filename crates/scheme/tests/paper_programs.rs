//! The paper's Scheme programs, run as written (modulo 1993 typesetting)
//! on the reproduced collector.

use guardians_scheme::Interp;

fn ev(i: &mut Interp, src: &str) -> String {
    i.eval_to_string(src)
        .unwrap_or_else(|e| panic!("eval of {src:?} failed: {e}"))
}

/// Section 3, first transcript.
#[test]
fn transcript_basic() {
    let mut i = Interp::new();
    ev(&mut i, "(define G (make-guardian))");
    ev(&mut i, "(define x (cons 'a 'b))");
    ev(&mut i, "(G x)");
    assert_eq!(ev(&mut i, "(G)"), "#f");
    ev(&mut i, "(set! x #f)");
    ev(&mut i, "(collect 3)");
    assert_eq!(ev(&mut i, "(G)"), "(a . b)");
    assert_eq!(ev(&mut i, "(G)"), "#f");
}

/// Section 3: "An object may be registered with a guardian more than
/// once, in which case it is retrievable more than once."
#[test]
fn transcript_double_registration() {
    let mut i = Interp::new();
    ev(&mut i, "(define G (make-guardian))");
    ev(&mut i, "(define x (cons 'a 'b))");
    ev(&mut i, "(G x) (G x)");
    ev(&mut i, "(set! x #f)");
    ev(&mut i, "(collect 3)");
    assert_eq!(ev(&mut i, "(G)"), "(a . b)");
    assert_eq!(ev(&mut i, "(G)"), "(a . b)");
    assert_eq!(ev(&mut i, "(G)"), "#f");
}

/// Section 3: "It may also be registered with more than one guardian."
#[test]
fn transcript_two_guardians() {
    let mut i = Interp::new();
    ev(
        &mut i,
        "(define G (make-guardian)) (define H (make-guardian))",
    );
    ev(&mut i, "(define x (cons 'a 'b))");
    ev(&mut i, "(G x) (H x)");
    ev(&mut i, "(set! x #f)");
    ev(&mut i, "(collect 3)");
    assert_eq!(ev(&mut i, "(G)"), "(a . b)");
    assert_eq!(ev(&mut i, "(H)"), "(a . b)");
}

/// Section 3: "One can even register one guardian with another" — the
/// `((G))` transcript, including the paper's own warning that the double
/// call is "dangerous" unless the inner retrieval is known to succeed.
#[test]
fn transcript_guardian_in_guardian() {
    let mut i = Interp::new();
    ev(&mut i, "(define G (make-guardian))");
    ev(&mut i, "(define H (make-guardian))");
    ev(&mut i, "(define x (cons 'a 'b))");
    ev(&mut i, "(G H)");
    ev(&mut i, "(H x)");
    ev(&mut i, "(set! x #f)");
    ev(&mut i, "(set! H #f)");
    ev(&mut i, "(collect 3)");
    assert_eq!(ev(&mut i, "((G))"), "(a . b)");
}

/// The Section 3 guarded-port library, verbatim (with `collect` standing
/// in for Chez's automatic collections).
#[test]
fn guarded_ports_library() {
    let mut i = Interp::new();
    i.eval_str(
        r#"
(define port-guardian (make-guardian))

(define close-dropped-ports
  (lambda ()
    (let ([p (port-guardian)])
      (if p
          (begin
            (if (output-port? p)
                (begin (flush-output-port p) (close-output-port p))
                (close-input-port p))
            (close-dropped-ports))
          #f))))

(define guarded-open-input-file
  (lambda (pathname)
    (close-dropped-ports)
    (let ([p (open-input-file pathname)])
      (port-guardian p)
      p)))

(define guarded-open-output-file
  (lambda (pathname)
    (close-dropped-ports)
    (let ([p (open-output-file pathname)])
      (port-guardian p)
      p)))

(define guarded-exit
  (lambda ()
    (close-dropped-ports)))
"#,
    )
    .unwrap();

    // Open a port, write, and drop the reference without closing.
    i.eval_str(
        r#"
(define p (guarded-open-output-file "/log"))
(write-string "precious bytes" p)
(set! p #f)
"#,
    )
    .unwrap();
    assert_eq!(i.os().open_count(), 1, "port leaked for now");
    assert_eq!(
        i.os().file_contents("/log").unwrap(),
        b"",
        "data still buffered"
    );

    // A collection proves it dropped; the next guarded open cleans up.
    i.eval_str("(collect 3)").unwrap();
    i.eval_str(r#"(define q (guarded-open-output-file "/other"))"#)
        .unwrap();
    assert_eq!(i.os().open_count(), 1, "dropped port closed, new port open");
    assert_eq!(
        i.os().file_contents("/log").unwrap(),
        b"precious bytes",
        "flushed by close-dropped-ports"
    );

    // guarded-exit flushes the rest.
    i.eval_str(r#"(write-string "bye" q) (set! q #f) (collect 3) (guarded-exit)"#)
        .unwrap();
    assert_eq!(i.os().open_count(), 0);
    assert_eq!(i.os().file_contents("/other").unwrap(), b"bye");
}

/// Figure 1: `make-guarded-hash-table`, verbatim except for OCR repairs
/// and `(remainder (hash z) size)` in place of the two-argument `hash`.
#[test]
fn figure_1_guarded_hash_table() {
    let mut i = Interp::new();
    i.eval_str(
        r#"
(define make-guarded-hash-table
  (lambda (hash size)
    (let ([g (make-guardian)]
          [v (make-vector size '())])
      (lambda (key value)
        (let loop ([z (g)])
          (if z
              (begin
                (let ([h (remainder (hash z) size)])
                  (let ([bucket (vector-ref v h)])
                    (vector-set! v h (remq (assq z bucket) bucket))))
                (loop (g)))
              #f))
        (let ([h (remainder (hash key) size)])
          (let ([bucket (vector-ref v h)])
            (let ([a (assq key bucket)])
              (if a
                  (cdr a)
                  (let ([a (weak-cons key value)])
                    (vector-set! v h (cons a bucket))
                    value)))))))))

(define table (make-guarded-hash-table equal-hash 8))
"#,
    )
    .unwrap();

    // Insert entries with keys we keep and keys we drop.
    i.eval_str(
        r#"
(define k1 (cons 'key 1))
(define k2 (cons 'key 2))
(define k3 (cons 'key 3))
(table k1 'v1)
(table k2 'v2)
(table k3 'v3)
"#,
    )
    .unwrap();
    // Existing key returns the existing value.
    assert_eq!(ev(&mut i, "(table k1 'other)"), "v1");

    // Drop k2; after a collection the next access scrubs its entry.
    i.eval_str("(set! k2 #f) (collect 3)").unwrap();
    assert_eq!(ev(&mut i, "(table k1 'probe)"), "v1");
    assert_eq!(ev(&mut i, "(table k3 'probe)"), "v3");
    // k2's association is gone: a fresh key with the same contents gets
    // the new value (eq-based table).
    assert_eq!(ev(&mut i, "(table (cons 'key 2) 'fresh)"), "fresh");
}

/// Section 3: `make-transport-guardian`, verbatim (the `*` don't-care in
/// the paper's weak-cons becomes `#f`).
#[test]
fn transport_guardian_program() {
    let mut i = Interp::new();
    i.eval_str(
        r#"
(define make-transport-guardian
  (lambda ()
    (let ([g (make-guardian)])
      (case-lambda
        [(x) (g (weak-cons x #f))]
        [() (let loop ([m (g)])
              (if m
                  (if (car m)
                      (begin (g m) (car m))
                      (loop (g)))
                  #f))]))))

(define tg (make-transport-guardian))
(define obj (cons 'tracked 42))
(tg obj)
"#,
    )
    .unwrap();
    // Before any collection, nothing has moved.
    assert_eq!(ev(&mut i, "(tg)"), "#f");
    // A collection moves obj (it is still referenced): reported.
    i.eval_str("(collect 0)").unwrap();
    assert_eq!(ev(&mut i, "(tg)"), "(tracked . 42)");
    assert_eq!(ev(&mut i, "(tg)"), "#f");
    // Dead objects are never reported.
    i.eval_str("(set! obj #f) (collect 3)").unwrap();
    assert_eq!(ev(&mut i, "(tg)"), "#f");
}

/// The Section 5 agent interface, via the interpreter's `(G obj agent)`.
#[test]
fn agent_registration_in_scheme() {
    let mut i = Interp::new();
    ev(&mut i, "(define G (make-guardian))");
    ev(&mut i, "(define x (cons 'resource 7))");
    ev(&mut i, "(G x (cdr x))"); // agent: just the number
    ev(&mut i, "(set! x #f)");
    ev(&mut i, "(collect 3)");
    assert_eq!(ev(&mut i, "(G)"), "7", "the agent, not the object");
}

/// "The program has full control over the timing of clean-up actions":
/// clean-up code may allocate freely and raise ordinary errors — the two
/// restrictions the paper's Section 2 pins on collector-invoked
/// finalizers.
#[test]
fn cleanup_actions_may_allocate_and_raise() {
    let mut i = Interp::new();
    i.eval_str(
        r#"
(define G (make-guardian))
(define x (cons 'a 'b))
(G x)
(set! x #f)
(collect 3)
(define cleaned
  (let ([dead (G)])
    ;; allocation inside a clean-up action: build a report structure
    (list 'finalized dead (make-vector 100 'fill))))
"#,
    )
    .unwrap();
    assert_eq!(ev(&mut i, "(car cleaned)"), "finalized");

    // Errors in clean-up propagate normally and do not corrupt anything.
    i.eval_str("(define y (cons 1 2)) (G y) (set! y #f) (collect 3)")
        .unwrap();
    let e = i
        .eval_str("(let ([dead (G)]) (error \"cleanup failed for\" dead))")
        .unwrap_err();
    assert!(e.to_string().contains("cleanup failed"), "got {e}");
    assert_eq!(
        ev(&mut i, "(+ 1 1)"),
        "2",
        "interpreter healthy after the error"
    );
    i.heap().verify().unwrap();
}

/// Guarded hash table under churn with collections forced mid-run.
#[test]
fn guarded_table_under_churn() {
    let mut i = Interp::new();
    i.eval_str(
        r#"
(define make-guarded-hash-table
  (lambda (hash size)
    (let ([g (make-guardian)]
          [v (make-vector size '())])
      (lambda (key value)
        (let loop ([z (g)])
          (if z
              (begin
                (let ([h (remainder (hash z) size)])
                  (let ([bucket (vector-ref v h)])
                    (vector-set! v h (remq (assq z bucket) bucket))))
                (loop (g)))
              #f))
        (let ([h (remainder (hash key) size)])
          (let ([bucket (vector-ref v h)])
            (let ([a (assq key bucket)])
              (if a
                  (cdr a)
                  (let ([a (weak-cons key value)])
                    (vector-set! v h (cons a bucket))
                    value)))))))))
(define table (make-guarded-hash-table equal-hash 16))
(define keep '())
(let loop ([n 0])
  (if (= n 200)
      'done
      (begin
        (let ([k (cons 'k n)])
          (table k n)
          (when (zero? (remainder n 10))
            (set! keep (cons k keep))))
        (when (zero? (remainder n 50)) (collect))
        (loop (+ n 1)))))
(collect 3)
"#,
    )
    .unwrap();
    // Kept keys still map to their values (access returns existing).
    assert_eq!(ev(&mut i, "(table (car keep) 'probe)"), "190");
    i.heap().verify().unwrap();
}
