//! Differential tests: the three evaluation tiers — naive cons-walking,
//! staged opcode tree, and the bytecode VM — must be observationally
//! identical: same results, same error messages, same printed output,
//! and same guardian / weak-pair observables, since all three place
//! their collection safe point at every procedure application.
//!
//! The staged and VM tiers additionally allocate *identically* (the
//! bytecode compiler is pure, so lowering changes no allocation
//! sequence), which is pinned down by comparing the heap's deterministic
//! counters after every run. The naive tier allocates differently by
//! design (association-list environments), so it is compared on
//! observables only.
//!
//! Random programs are produced by a byte-driven builder that only emits
//! well-formed, terminating forms with correct scoping (so the staged
//! evaluator's analysis-time error reporting — a documented divergence
//! for malformed input — never comes into play). Runtime errors (type
//! errors, arity, unbound globals) are fair game and must match byte for
//! byte.

use guardians_scheme::{Interp, InterpConfig};
use proptest::prelude::*;

/// The deterministic (non-timing) heap counters: collections, alloc
/// counts, guardian and weak-sweep totals. Wall-clock fields are
/// excluded — they never repeat.
#[derive(Debug, PartialEq, Eq)]
struct GcCounters {
    collections: u64,
    pairs_allocated: u64,
    objects_allocated: u64,
    words_allocated: u64,
    guardian_registrations: u64,
    guardian_polls: u64,
    total_words_copied: u64,
    total_guardian_entries_visited: u64,
    total_weak_pairs_scanned: u64,
}

fn counters(it: &Interp) -> GcCounters {
    let s = it.heap().stats();
    GcCounters {
        collections: s.collections,
        pairs_allocated: s.pairs_allocated,
        objects_allocated: s.objects_allocated,
        words_allocated: s.words_allocated,
        guardian_registrations: s.guardian_registrations,
        guardian_polls: s.guardian_polls,
        total_words_copied: s.total_words_copied,
        total_guardian_entries_visited: s.total_guardian_entries_visited,
        total_weak_pairs_scanned: s.total_weak_pairs_scanned,
    }
}

/// Evaluates `forms` one at a time, collecting each printed result or
/// error string, everything written to the simulated OS, and the final
/// deterministic GC counters.
fn run_mode(
    config: InterpConfig,
    forms: &[String],
) -> (Vec<Result<String, String>>, String, GcCounters) {
    let mut it = Interp::with_interp_config(config);
    let mut results = Vec::new();
    for f in forms {
        results.push(it.eval_to_string(f).map_err(|e| e.to_string()));
    }
    let gc = counters(&it);
    (results, it.take_output(), gc)
}

/// All three tiers agree on observables; staged and VM also agree on
/// every deterministic GC counter.
fn assert_identical(forms: &[String]) {
    let staged = run_mode(InterpConfig::staged(), forms);
    let naive = run_mode(InterpConfig::naive(), forms);
    let vm = run_mode(InterpConfig::vm(), forms);
    assert_eq!(
        (&staged.0, &staged.1),
        (&naive.0, &naive.1),
        "staged/naive diverged on:\n{}",
        forms.join("\n")
    );
    assert_eq!(
        (&staged.0, &staged.1),
        (&vm.0, &vm.1),
        "staged/vm diverged on:\n{}",
        forms.join("\n")
    );
    assert_eq!(
        staged.2,
        vm.2,
        "staged/vm GC counters diverged on:\n{}",
        forms.join("\n")
    );
}

/// Observables only (no counter comparison): for programs that exhaust
/// the non-tail depth budget *inside* an operand, where the staged
/// tier's transient sub-expression depth bumps make it error a couple of
/// recursion levels earlier than the VM (same message, same observables,
/// slightly different allocation totals).
fn assert_identical_observables(forms: &[String]) {
    let staged = run_mode(InterpConfig::staged(), forms);
    let naive = run_mode(InterpConfig::naive(), forms);
    let vm = run_mode(InterpConfig::vm(), forms);
    assert_eq!(
        (&staged.0, &staged.1),
        (&naive.0, &naive.1),
        "staged/naive diverged on:\n{}",
        forms.join("\n")
    );
    assert_eq!(
        (&staged.0, &staged.1),
        (&vm.0, &vm.1),
        "staged/vm diverged on:\n{}",
        forms.join("\n")
    );
}

// ---------------------------------------------------------------------
// Byte-driven program builder
// ---------------------------------------------------------------------

/// Consumes fuel bytes and emits well-formed Scheme. Scoping is tracked
/// so every variable reference is bound; loops are bounded by small
/// literal counters, so every program terminates.
struct Gen<'a> {
    bytes: &'a [u8],
    pos: usize,
    scope: Vec<String>,
    next_var: usize,
}

impl<'a> Gen<'a> {
    fn new(bytes: &'a [u8]) -> Gen<'a> {
        Gen {
            bytes,
            pos: 0,
            scope: vec!["g0".into(), "g1".into()],
            next_var: 0,
        }
    }

    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn fresh(&mut self) -> String {
        let v = format!("v{}", self.next_var);
        self.next_var += 1;
        v
    }

    fn atom(&mut self) -> String {
        let b = self.next();
        match b % 8 {
            0 => format!("{}", (b as i64) - 128),
            1 => "#t".into(),
            2 => "#f".into(),
            3 => "'sym".into(),
            4 => "\"str\"".into(),
            5 => "'(1 2 3)".into(),
            _ => {
                // A bound variable; the scope is never empty.
                let i = (b as usize) % self.scope.len();
                self.scope[i].clone()
            }
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return self.atom();
        }
        let b = self.next();
        match b % 16 {
            0 => self.atom(),
            1 => format!(
                "(if {} {} {})",
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            2 => {
                let v = self.fresh();
                let init = self.expr(depth - 1);
                self.scope.push(v.clone());
                let body = self.expr(depth - 1);
                self.scope.pop();
                format!("(let (({v} {init})) {body})")
            }
            3 => {
                let v = self.fresh();
                let arg = self.expr(depth - 1);
                self.scope.push(v.clone());
                let body = self.expr(depth - 1);
                self.scope.pop();
                format!("((lambda ({v}) {body}) {arg})")
            }
            4 => {
                // Bounded named let: counts down from a small literal.
                let i = self.fresh();
                let n = (b % 3) + 1;
                self.scope.push(i.clone());
                let body = self.expr(depth - 1);
                self.scope.pop();
                format!("(let lp (({i} {n})) (if (< {i} 1) {body} (lp (- {i} 1))))")
            }
            5 => format!("(+ {} {})", self.expr(depth - 1), self.expr(depth - 1)),
            6 => format!("(cons {} {})", self.expr(depth - 1), self.expr(depth - 1)),
            7 => format!("(car (cons {} 0))", self.expr(depth - 1)),
            8 => format!(
                "`(a ,{} ,@(list {}) c)",
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            9 => format!("(and {} {})", self.expr(depth - 1), self.expr(depth - 1)),
            10 => format!("(or {} {})", self.expr(depth - 1), self.expr(depth - 1)),
            11 => format!(
                "(cond ((pair? {}) => car) ({} {}) (else {}))",
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            12 => format!(
                "(case {} ((1 2) {}) ((sym) 'hit) (else {}))",
                self.expr(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1)
            ),
            13 => {
                // set! on a bound variable, then read it back.
                let i = (b as usize) % self.scope.len();
                let var = self.scope[i].clone();
                let val = self.expr(depth - 1);
                format!("(begin (set! {var} {val}) {var})")
            }
            14 => {
                // Bounded do loop accumulating into a second variable.
                let i = self.fresh();
                let acc = self.fresh();
                let n = (b % 3) + 1;
                self.scope.push(acc.clone());
                let step = self.expr(depth - 1);
                self.scope.pop();
                format!(
                    "(do (({i} 0 (+ {i} 1)) ({acc} 0 (begin {step} {acc}))) \
                     ((= {i} {n}) {acc}))"
                )
            }
            _ => {
                let parts: Vec<String> = (0..2 + (b % 2)).map(|_| self.expr(depth - 1)).collect();
                format!("(begin {})", parts.join(" "))
            }
        }
    }

    /// A whole program: global defines (establishing `g0`/`g1`), a guard
    /// of expression forms, and a display so output is compared too.
    fn program(&mut self) -> Vec<String> {
        let mut forms = vec![
            format!("(define g0 {})", self.expr(1)),
            format!("(define g1 {})", self.expr(2)),
        ];
        let n_forms = 1 + (self.next() % 4);
        for _ in 0..n_forms {
            forms.push(self.expr(3));
        }
        forms.push(format!("(display {})", self.expr(2)));
        forms
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Random well-formed programs evaluate identically in both modes.
    #[test]
    fn staged_and_naive_agree(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let forms = Gen::new(&bytes).program();
        assert_identical(&forms);
    }

    /// Random guardian workloads: register objects, drop references,
    /// collect, and drain — the resurrection order and weak-pair
    /// breaking must match between modes, since both collect at the
    /// same safe points.
    #[test]
    fn guardian_observables_agree(
        n_objs in 1usize..6,
        drop_mask in any::<u8>(),
        gens in proptest::collection::vec(0usize..5, 1..4),
    ) {
        let mut forms = vec![
            "(define G (make-guardian))".to_string(),
            "(define W '())".to_string(),
        ];
        for i in 0..n_objs {
            forms.push(format!("(define x{i} (cons {i} 'payload))"));
            forms.push(format!("(G x{i})"));
            forms.push(format!("(set! W (cons (weak-cons x{i} {i}) W))"));
        }
        for i in 0..n_objs {
            if drop_mask & (1 << i) != 0 {
                forms.push(format!("(set! x{i} #f)"));
            }
        }
        for g in &gens {
            forms.push(format!("(collect {g})"));
            forms.push(
                "(let lp ((v (G))) (when v (display v) (display \" \") (lp (G))))"
                    .to_string(),
            );
            forms.push("(for-each (lambda (w) (display (car w))) W)".to_string());
        }
        assert_identical(&forms);
    }
}

// ---------------------------------------------------------------------
// Fixed differential transcripts (paper §2–§3 shapes)
// ---------------------------------------------------------------------

#[test]
fn paper_first_transcript_agrees() {
    assert_identical(&[
        "(define G (make-guardian))".into(),
        "(define x (cons 'a 'b))".into(),
        "(G x)".into(),
        "(G)".into(),
        "(set! x #f)".into(),
        "(collect 3)".into(),
        "(G)".into(),
        "(G)".into(),
    ]);
}

#[test]
fn weak_pairs_and_guardians_interact_identically() {
    assert_identical(&[
        "(define G (make-guardian))".into(),
        "(define w (weak-cons (cons 1 2) 'tail))".into(),
        "(G (car w))".into(),
        "(collect 3)".into(),
        "(car w)".into(), // guardian keeps it alive: still (1 . 2)
        "(define saved (G))".into(),
        "saved".into(),
        "(collect 3)".into(),
        "(car w)".into(), // saved still references it
        "(set! saved #f)".into(),
        "(collect 3)".into(),
        "(car w)".into(), // now broken
    ]);
}

#[test]
fn collect_request_handler_runs_identically() {
    assert_identical(&[
        "(define count 0)".into(),
        "(collect-request-handler (lambda () (set! count (+ count 1)) (collect)))".into(),
        "(define (churn n) (if (zero? n) '() (cons (make-string 64 #\\x) (churn (- n 1)))))".into(),
        "(define sink #f)".into(),
        "(let lp ((i 40)) (unless (zero? i) (set! sink (churn 100)) (lp (- i 1))))".into(),
        "(> count 0)".into(),
        "(begin count #t)".into(), // handler ran the same number of times
    ]);
}

#[test]
fn runtime_errors_match_byte_for_byte() {
    for src in [
        "nope",
        "(set! nope 1)",
        "(1 2)",
        "(car 1 2)",
        "((lambda (a) a) 1 2)",
        "(let lp ((i 0)) (lp))",
        "(letrec ((a b) (b 1)) a)",
        "(define (f) (g)) (f)",
        "(+ 'a 1)",
        "(vector-ref (vector 1) 5)",
    ] {
        let forms = vec![src.to_string()];
        assert_identical(&forms);
    }
}

#[test]
fn deep_recursion_error_matches() {
    assert_identical_observables(&[
        "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))".into(),
        "(sum 100000)".into(),
        "(+ 1 2)".into(), // both interpreters recover
    ]);
}

/// The acceptance matrix for the VM tier: a guardian/weak/tconc-heavy
/// transcript run by all three tiers under the serial engine, the
/// 4-worker parallel engine, and the 100µs incremental engine, with
/// byte-identical observables in every cell (and identical deterministic
/// counters between staged and VM).
#[test]
fn three_tiers_agree_across_gc_engines() {
    use guardians_gc::GcConfig;
    use guardians_scheme::EvalMode;
    use std::time::Duration;

    let forms: Vec<String> = [
        "(define G (make-guardian))",
        "(define H (make-guardian))",
        "(define W '())",
        "(define (churn n) (if (zero? n) '() (cons (make-string 64 #\\x) (churn (- n 1)))))",
        "(define keep '())",
        "(let lp ((i 0)) (when (< i 24) \
           (let ((x (cons i 'payload))) \
             (G x) \
             (when (even? i) (H x x)) \
             (set! W (cons (weak-cons x i) W)) \
             (when (zero? (modulo i 3)) (set! keep (cons x keep)))) \
           (set! keep (cons (churn 40) keep)) \
           (when (> (length keep) 4) (set! keep (list (car keep)))) \
           (lp (+ i 1))))",
        "(collect 3)",
        "(let lp ((v (G))) (when v (display v) (display \" \") (lp (G))))",
        "(let lp ((v (H))) (when v (display v) (display \" \") (lp (H))))",
        "(for-each (lambda (w) (display (car w)) (display \" \")) W)",
        "(collect 3)",
        "(let lp ((v (G))) (when v (display v) (display \" \") (lp (G))))",
        "(for-each (lambda (w) (display (car w)) (display \" \")) W)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let engines: [(&str, GcConfig); 3] = [
        ("serial", GcConfig::default()),
        (
            "workers=4",
            GcConfig {
                workers: 4,
                ..GcConfig::default()
            },
        ),
        (
            "pause_budget=100us",
            GcConfig {
                pause_budget: Some(Duration::from_micros(100)),
                ..GcConfig::default()
            },
        ),
    ];
    for (engine, gc) in engines {
        let cfg = |mode: EvalMode| InterpConfig {
            gc: gc.clone(),
            mode,
        };
        let staged = run_mode(cfg(EvalMode::Staged), &forms);
        let naive = run_mode(cfg(EvalMode::Naive), &forms);
        let vm = run_mode(cfg(EvalMode::Vm), &forms);
        assert_eq!(
            (&staged.0, &staged.1),
            (&naive.0, &naive.1),
            "staged/naive diverged under {engine}"
        );
        assert_eq!(
            (&staged.0, &staged.1),
            (&vm.0, &vm.1),
            "staged/vm diverged under {engine}"
        );
        assert_eq!(
            staged.2, vm.2,
            "staged/vm GC counters diverged under {engine}"
        );
    }
}

#[test]
fn tail_calls_do_not_grow_either_stack() {
    assert_identical(&[
        "(define (count n acc) (if (zero? n) acc (count (- n 1) (+ acc 1))))".into(),
        "(count 100000 0)".into(),
        "(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 1000) s))".into(),
    ]);
}
