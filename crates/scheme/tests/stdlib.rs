//! The extended primitive library: higher-order procedures, list
//! utilities, and the collect-request-handler hook.

use guardians_gc::GcConfig;
use guardians_scheme::Interp;

fn eval(src: &str) -> String {
    let mut i = Interp::new();
    i.eval_to_string(src)
        .unwrap_or_else(|e| panic!("eval of {src:?} failed: {e}"))
}

#[test]
fn map_and_for_each() {
    assert_eq!(eval("(map (lambda (x) (* x x)) '(1 2 3 4))"), "(1 4 9 16)");
    assert_eq!(eval("(map + '(1 2 3) '(10 20 30))"), "(11 22 33)");
    assert_eq!(eval("(map cons '(a b) '(1 2 3))"), "((a . 1) (b . 2))");
    assert_eq!(eval("(map car '())"), "()");
    assert_eq!(
        eval("(define sum 0) (for-each (lambda (x) (set! sum (+ sum x))) '(1 2 3)) sum"),
        "6"
    );
    // map over a primitive that allocates, to exercise rooting.
    assert_eq!(eval("(map list '(1 2) '(3 4))"), "((1 3) (2 4))");
}

#[test]
fn map_survives_collections_mid_walk() {
    let mut i = Interp::with_config(GcConfig {
        trigger_bytes: 4096,
        ..GcConfig::new()
    });
    let out = i
        .eval_to_string(
            "(define (iota n)
               (let loop ([i 0] [acc '()])
                 (if (= i n) (reverse acc) (loop (+ i 1) (cons i acc)))))
             (length (map (lambda (x) (cons x (iota 5))) (iota 500)))",
        )
        .unwrap();
    assert_eq!(out, "500");
    assert!(
        i.heap().collection_count() > 0,
        "collections happened mid-map"
    );
    i.heap().verify().unwrap();
}

#[test]
fn assoc_family() {
    assert_eq!(eval("(assv 2 '((1 . a) (2 . b)))"), "(2 . b)");
    assert_eq!(eval("(assoc \"k\" (list (cons \"k\" 1)))"), "(\"k\" . 1)");
    assert_eq!(
        eval("(assq \"k\" (list (cons \"k\" 1)))"),
        "#f",
        "assq is eq?"
    );
    assert_eq!(eval("(member \"b\" '(\"a\" \"b\"))"), "(\"b\")");
    assert_eq!(eval("(memv 1.5 '(1.0 1.5))"), "(1.5)");
}

#[test]
fn cxr_and_list_utilities() {
    assert_eq!(eval("(cadr '(1 2 3))"), "2");
    assert_eq!(eval("(caddr '(1 2 3))"), "3");
    assert_eq!(eval("(caar '((1 2)))"), "1");
    assert_eq!(eval("(cdar '((1 2)))"), "(2)");
    assert_eq!(eval("(cddr '(1 2 3))"), "(3)");
    assert_eq!(eval("(list-tail '(1 2 3 4) 2)"), "(3 4)");
    assert_eq!(eval("(list? '(1 2))"), "#t");
    assert_eq!(eval("(list? '(1 . 2))"), "#f");
    assert_eq!(eval("(list? 5)"), "#f");
    assert_eq!(
        eval("(define l (list 1)) (set-cdr! l l) (list? l)"),
        "#f",
        "cycle-safe list?"
    );
    assert_eq!(eval("(vector->list #(1 2 3))"), "(1 2 3)");
    assert_eq!(eval("(list->vector '(a b))"), "#(a b)");
    assert_eq!(eval("(even? 4)"), "#t");
    assert_eq!(eval("(odd? 4)"), "#f");
    assert_eq!(eval("(string<? \"abc\" \"abd\")"), "#t");
    assert_eq!(eval("(char=? #\\a #\\a)"), "#t");
}

#[test]
fn collect_request_handler_runs_after_automatic_collections() {
    // The paper's Chez idiom: "(collect-request-handler (lambda ()
    // (collect) (close-dropped-ports)))" — here the handler counts its
    // invocations and drains a guardian automatically.
    let mut i = Interp::with_config(GcConfig {
        trigger_bytes: 16 * 1024,
        ..GcConfig::new()
    });
    let out = i
        .eval_to_string(
            r#"
(define G (make-guardian))
(define cleaned 0)
(define handler-runs 0)
(collect-request-handler
  (lambda ()
    (set! handler-runs (+ handler-runs 1))
    (let loop ([x (G)])
      (if x
          (begin (set! cleaned (+ cleaned 1)) (loop (G)))
          #f))))
;; Register garbage and churn until automatic collections fire.
(let loop ([n 0])
  (if (= n 2000)
      'done
      (begin
        (G (cons n n))
        (loop (+ n 1)))))
(list (> handler-runs 0) (> cleaned 0))
"#,
        )
        .unwrap();
    assert_eq!(out, "(#t #t)");
    assert!(i.heap().collection_count() > 0);
    i.heap().verify().unwrap();
}

#[test]
fn collect_request_handler_can_be_uninstalled() {
    let mut i = Interp::with_config(GcConfig {
        trigger_bytes: 8 * 1024,
        ..GcConfig::new()
    });
    i.eval_str(
        "(define runs 0)
         (collect-request-handler (lambda () (set! runs (+ runs 1))))
         (let loop ([n 0]) (if (= n 1000) 'ok (begin (cons n n) (loop (+ n 1)))))",
    )
    .unwrap();
    let runs_with: i64 = i.eval_str("runs").unwrap().as_fixnum();
    assert!(runs_with > 0);
    // The uninstall call itself crosses one safe point where the handler
    // may still fire; baseline after it completes.
    i.eval_str("(collect-request-handler #f)").unwrap();
    let baseline: i64 = i.eval_str("runs").unwrap().as_fixnum();
    i.eval_str("(let loop ([n 0]) (if (= n 2000) 'ok (begin (cons n n) (loop (+ n 1)))))")
        .unwrap();
    let runs_after: i64 = i.eval_str("runs").unwrap().as_fixnum();
    assert_eq!(baseline, runs_after, "no more runs after uninstalling");
}

#[test]
fn handler_errors_propagate_as_ordinary_errors() {
    let mut i = Interp::with_config(GcConfig {
        trigger_bytes: 4096,
        ..GcConfig::new()
    });
    let e = i
        .eval_str(
            "(collect-request-handler (lambda () (error \"handler failed\")))
             (let loop ([n 0]) (if (= n 5000) 'ok (begin (cons n n) (loop (+ n 1)))))",
        )
        .unwrap_err();
    assert!(e.to_string().contains("handler failed"), "got {e}");
    // The interpreter survives; uninstall and continue.
    i.eval_str("(collect-request-handler #f)").unwrap();
    assert_eq!(i.eval_to_string("(+ 1 2)").unwrap(), "3");
    i.heap().verify().unwrap();
}

#[test]
fn case_special_form() {
    assert_eq!(eval("(case 2 [(1) 'one] [(2 3) 'few] [else 'many])"), "few");
    assert_eq!(eval("(case 9 [(1) 'one] [else 'many])"), "many");
    assert_eq!(eval("(case 9 [(1) 'one])"), "#<void>");
    assert_eq!(eval("(case 'b [(a) 1] [(b) 2])"), "2");
    // eqv? comparison: flonums match by value.
    assert_eq!(eval("(case 1.5 [(1.5) 'hit] [else 'miss])"), "hit");
    // Tail position: a million-iteration loop through case.
    assert_eq!(
        eval("(define (spin n) (case n [(0) 'done] [else (spin (- n 1))])) (spin 100000)"),
        "done"
    );
}

#[test]
fn do_special_form() {
    assert_eq!(
        eval("(do ([i 0 (+ i 1)] [acc 1 (* acc 2)]) ((= i 5) acc))"),
        "32"
    );
    assert_eq!(
        eval(
            "(define v (make-vector 4 0))
              (do ([i 0 (+ i 1)]) ((= i 4) v) (vector-set! v i (* i i)))"
        ),
        "#(0 1 4 9)"
    );
    // Variables without steps keep their values.
    assert_eq!(eval("(do ([i 0 (+ i 1)] [x 'fixed]) ((= i 2) x))"), "fixed");
    // Constant-stack iteration.
    assert_eq!(eval("(do ([i 0 (+ i 1)]) ((= i 200000) 'done))"), "done");
}

#[test]
fn cond_arrow() {
    assert_eq!(
        eval("(cond [(assq 'b '((a . 1) (b . 2))) => cdr] [else 'none])"),
        "2"
    );
    assert_eq!(
        eval("(cond [(assq 'z '((a . 1))) => cdr] [else 'none])"),
        "none"
    );
    assert_eq!(eval("(cond [(memq 'c '(a b c)) => car])"), "c");
}

#[test]
fn quasiquote() {
    assert_eq!(eval("`(1 2 3)"), "(1 2 3)");
    assert_eq!(eval("(define x 5) `(a ,x c)"), "(a 5 c)");
    assert_eq!(eval("`(1 ,(+ 1 1) ,@(list 3 4) 5)"), "(1 2 3 4 5)");
    assert_eq!(eval("`(a . ,(+ 1 2))"), "(a . 3)");
    assert_eq!(eval("(define xs '(b c)) `(a ,@xs d)"), "(a b c d)");
    assert_eq!(eval("`#(1 ,(+ 2 3))"), "#(1 5)");
    // Nesting: inner quasiquote shields one level of unquote.
    assert_eq!(eval("`(a `(b ,(c)))"), "(a (quasiquote (b (unquote (c)))))");
    assert_eq!(
        eval("(define y 7) `(a `(b ,,y))"),
        "(a (quasiquote (b (unquote 7))))"
    );
    // Splicing an empty list vanishes.
    assert_eq!(eval("`(1 ,@'() 2)"), "(1 2)");
    // Errors.
    let mut i = Interp::new();
    assert!(i.eval_str(",x").is_err(), "unquote outside quasiquote");
    assert!(i.eval_str("`(1 ,@2)").is_err(), "splicing a non-list");
}

#[test]
fn quasiquote_under_gc_stress() {
    let mut i = Interp::with_config(GcConfig {
        trigger_bytes: 4096,
        ..GcConfig::new()
    });
    let out = i
        .eval_to_string(
            "(define (iota n)
               (let loop ([i 0] [acc '()])
                 (if (= i n) (reverse acc) (loop (+ i 1) (cons i acc)))))
             (length `(start ,@(iota 500) ,(length (iota 100)) end))",
        )
        .unwrap();
    assert_eq!(out, "503");
    assert!(i.heap().collection_count() > 0);
    i.heap().verify().unwrap();
}

#[test]
fn define_record_type() {
    assert_eq!(
        eval(
            "(define-record-type point
               (make-point x y)
               point?
               (x point-x set-point-x!)
               (y point-y))
             (define p (make-point 3 4))
             (list (point? p) (point? 5) (point-x p) (point-y p))"
        ),
        "(#t #f 3 4)"
    );
    assert_eq!(
        eval(
            "(define-record-type point
               (make-point x y) point?
               (x point-x set-point-x!) (y point-y))
             (define p (make-point 3 4))
             (set-point-x! p 30)
             (point-x p)"
        ),
        "30"
    );
    // Constructor argument order may differ from field order.
    assert_eq!(
        eval(
            "(define-record-type pair-ish
               (kons kdr kar) pair-ish?
               (kar kar-of) (kdr kdr-of))
             (define k (kons 'second 'first))
             (list (kar-of k) (kdr-of k))"
        ),
        "(first second)"
    );
    // Fields not in the constructor start as #f.
    assert_eq!(
        eval(
            "(define-record-type cell (make-cell a) cell? (a cell-a) (b cell-b set-cell-b!))
             (define c (make-cell 1))
             (list (cell-a c) (cell-b c))"
        ),
        "(1 #f)"
    );
    // Distinct record types do not satisfy each other's predicates.
    assert_eq!(
        eval(
            "(define-record-type t1 (mk1 v) t1? (v v1))
             (define-record-type t2 (mk2 v) t2? (v v2))
             (list (t1? (mk2 9)) (t2? (mk2 9)))"
        ),
        "(#f #t)"
    );
    // Wrong-type access errors.
    let mut i = Interp::new();
    let e = i
        .eval_str(
            "(define-record-type t1 (mk1 v) t1? (v v1))
             (v1 (cons 1 2))",
        )
        .unwrap_err();
    assert!(e.to_string().contains("wrong record type"), "got {e}");
}

#[test]
fn records_interact_with_guardians() {
    // The paper's external-memory pattern written in Scheme with records:
    // a handle record guarding an external id.
    assert_eq!(
        eval(
            "(define-record-type extmem (make-extmem id) extmem? (id extmem-id))
             (define G (make-guardian))
             (define h (make-extmem 42))
             (G h (extmem-id h))  ; agent = just the id
             (set! h #f)
             (collect 3)
             (G)"
        ),
        "42"
    );
}
