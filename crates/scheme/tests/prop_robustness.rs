//! Robustness property tests: the lexer, reader, and evaluator must never
//! panic — arbitrary input produces either a value or a `SchemeError`.

use guardians_runtime::symtab::SymbolTable;
use guardians_scheme::{read_all, tokenize, Interp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = tokenize(&src);
    }

    #[test]
    fn reader_never_panics(src in ".{0,200}") {
        let mut heap = guardians_gc::Heap::default();
        let mut syms = SymbolTable::new();
        let _ = read_all(&mut heap, &mut syms, &src);
    }

    /// Random-ish s-expression soup built from a safe token alphabet —
    /// anything goes except nontermination.
    #[test]
    fn evaluator_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("(".to_string()),
                Just(")".to_string()),
                Just("'".to_string()),
                Just("car".to_string()),
                Just("cons".to_string()),
                Just("if".to_string()),
                Just("lambda".to_string()),
                Just("let".to_string()),
                Just("define".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just("#t".to_string()),
                Just("\"s\"".to_string()),
                Just("make-guardian".to_string()),
                Just("weak-cons".to_string()),
                Just("collect".to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let mut interp = Interp::new();
        let _ = interp.eval_str(&src); // Ok or Err, never panic
        interp.heap().verify().expect("heap always valid afterwards");
    }

    /// Round trip: printing a read value and re-reading it yields an
    /// equal printed form (for the printable subset).
    #[test]
    fn read_print_read_is_stable(n in any::<i64>(), s in "[a-z]{1,10}") {
        let n = n % 1_000_000;
        let mut interp = Interp::new();
        for src in [format!("{n}"), format!("'{s}"), format!("'({n} {s})"), format!("\"{s}\"")] {
            let first = interp.eval_to_string(&src).unwrap();
            let again = interp.eval_to_string(&format!("'{first}"))
                .or_else(|_| interp.eval_to_string(&first));
            prop_assert_eq!(again.unwrap(), first);
        }
    }
}
