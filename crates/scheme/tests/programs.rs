//! Classic Scheme programs as interpreter (and collector) stress tests —
//! each run both normally and with a tiny GC trigger that forces
//! collections throughout evaluation.

use guardians_gc::GcConfig;
use guardians_scheme::Interp;

fn run_both(src: &str, expected: &str) {
    let mut normal = Interp::new();
    assert_eq!(normal.eval_to_string(src).unwrap(), expected, "normal heap");

    let mut stressed = Interp::with_config(GcConfig {
        trigger_bytes: 8192,
        ..GcConfig::new()
    });
    assert_eq!(
        stressed.eval_to_string(src).unwrap(),
        expected,
        "stressed heap"
    );
    assert!(
        stressed.heap().collection_count() > 0,
        "stress collections really ran"
    );
    stressed.heap().verify().unwrap();
}

#[test]
fn tak() {
    run_both(
        "(define (tak x y z)
           (if (not (< y x))
               z
               (tak (tak (- x 1) y z)
                    (tak (- y 1) z x)
                    (tak (- z 1) x y))))
         (tak 14 10 4)",
        "5",
    );
}

#[test]
fn fibonacci() {
    run_both(
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
         (fib 15)",
        "610",
    );
}

#[test]
fn ackermann_small() {
    run_both(
        "(define (ack m n)
           (cond [(= m 0) (+ n 1)]
                 [(= n 0) (ack (- m 1) 1)]
                 [else (ack (- m 1) (ack m (- n 1)))]))
         (ack 2 3)",
        "9",
    );
}

#[test]
fn merge_sort() {
    run_both(
        "(define (merge a b)
           (cond [(null? a) b]
                 [(null? b) a]
                 [(< (car a) (car b)) (cons (car a) (merge (cdr a) b))]
                 [else (cons (car b) (merge a (cdr b)))]))
         (define (split ls)
           (if (or (null? ls) (null? (cdr ls)))
               (cons ls '())
               (let ([rest (split (cddr ls))])
                 (cons (cons (car ls) (car rest))
                       (cons (cadr ls) (cdr rest))))))
         (define (msort ls)
           (if (or (null? ls) (null? (cdr ls)))
               ls
               (let ([halves (split ls)])
                 (merge (msort (car halves)) (msort (cdr halves))))))
         (msort '(5 3 8 1 9 2 7 4 6 0))",
        "(0 1 2 3 4 5 6 7 8 9)",
    );
}

#[test]
fn quicksort_with_filter() {
    run_both(
        "(define (filter p ls)
           (cond [(null? ls) '()]
                 [(p (car ls)) (cons (car ls) (filter p (cdr ls)))]
                 [else (filter p (cdr ls))]))
         (define (qsort ls)
           (if (null? ls)
               '()
               (let ([pivot (car ls)] [rest (cdr ls)])
                 (append
                   (qsort (filter (lambda (x) (< x pivot)) rest))
                   (list pivot)
                   (qsort (filter (lambda (x) (not (< x pivot))) rest))))))
         (qsort '(3 1 4 1 5 9 2 6 5 3 5))",
        "(1 1 2 3 3 4 5 5 5 6 9)",
    );
}

#[test]
fn church_encoding() {
    run_both(
        "(define zero (lambda (f) (lambda (x) x)))
         (define (succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
         (define (church->int n) ((n (lambda (k) (+ k 1))) 0))
         (define (plus a b) (lambda (f) (lambda (x) ((a f) ((b f) x)))))
         (define three (succ (succ (succ zero))))
         (church->int (plus three (succ three)))",
        "7",
    );
}

#[test]
fn association_list_interpreter() {
    // A meta-circular-flavoured expression evaluator over assq
    // environments — the shape real symbol-table clients take.
    run_both(
        "(define (lookup x env)
           (let ([hit (assq x env)])
             (if hit (cdr hit) (error \"unbound\" x))))
         (define (ev e env)
           (cond [(number? e) e]
                 [(symbol? e) (lookup e env)]
                 [(eq? (car e) 'add) (+ (ev (cadr e) env) (ev (caddr e) env))]
                 [(eq? (car e) 'mul) (* (ev (cadr e) env) (ev (caddr e) env))]
                 [(eq? (car e) 'let1)
                  (ev (car (cdddr e))
                      (cons (cons (cadr e) (ev (caddr e) env)) env))]
                 [else (error \"bad form\")]))
         (define (cdddr x) (cdr (cddr x)))
         (ev '(let1 a 7 (add (mul a a) a)) '())",
        "56",
    );
}

#[test]
fn string_building_churn() {
    run_both(
        "(define (repeat s n)
           (do ([i 0 (+ i 1)] [acc \"\" (string-append acc s)])
               ((= i n) acc)))
         (string-length (repeat \"abcde\" 100))",
        "500",
    );
}

#[test]
fn higher_order_pipeline() {
    run_both(
        "(define (compose f g) (lambda (x) (f (g x))))
         (define inc (lambda (x) (+ x 1)))
         (define dbl (lambda (x) (* x 2)))
         (map (compose inc dbl) '(1 2 3 4 5))",
        "(3 5 7 9 11)",
    );
}

#[test]
fn guardians_inside_a_recursive_workload() {
    // Guardians registered deep inside a recursion, polled at the top.
    run_both(
        "(define G (make-guardian))
         (define (work n)
           (if (zero? n)
               'done
               (begin (G (cons n n)) (work (- n 1)))))
         (work 300)
         (collect 3)
         (let drain ([n 0])
           (if (G) (drain (+ n 1)) n))",
        "300",
    );
}
