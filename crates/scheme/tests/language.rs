//! Core language behaviour of the interpreter.

use guardians_gc::GcConfig;
use guardians_scheme::{Interp, InterpConfig};

fn eval(src: &str) -> String {
    let mut i = Interp::new();
    i.eval_to_string(src)
        .unwrap_or_else(|e| panic!("eval of {src:?} failed: {e}"))
}

#[test]
fn self_evaluating_and_quote() {
    assert_eq!(eval("42"), "42");
    assert_eq!(eval("#t"), "#t");
    assert_eq!(eval("\"hi\""), "\"hi\"");
    assert_eq!(eval("'sym"), "sym");
    assert_eq!(eval("'(1 2 3)"), "(1 2 3)");
    assert_eq!(eval("3.25"), "3.25");
    assert_eq!(eval("#\\a"), "#\\a");
}

#[test]
fn arithmetic() {
    assert_eq!(eval("(+ 1 2 3)"), "6");
    assert_eq!(eval("(- 10 3 2)"), "5");
    assert_eq!(eval("(- 5)"), "-5");
    assert_eq!(eval("(* 2 3 4)"), "24");
    assert_eq!(eval("(quotient 17 5)"), "3");
    assert_eq!(eval("(remainder 17 5)"), "2");
    assert_eq!(eval("(modulo -7 3)"), "2");
    assert_eq!(eval("(+ 1 2.5)"), "3.5");
    assert_eq!(eval("(max 3 1 4 1 5)"), "5");
    assert_eq!(eval("(min 3 1 4)"), "1");
    assert_eq!(eval("(abs -9)"), "9");
}

#[test]
fn comparisons_and_predicates() {
    assert_eq!(eval("(< 1 2 3)"), "#t");
    assert_eq!(eval("(< 1 3 2)"), "#f");
    assert_eq!(eval("(= 2 2 2)"), "#t");
    assert_eq!(eval("(>= 3 3 2)"), "#t");
    assert_eq!(eval("(zero? 0)"), "#t");
    assert_eq!(eval("(eq? 'a 'a)"), "#t");
    assert_eq!(eval("(eq? (cons 1 2) (cons 1 2))"), "#f");
    assert_eq!(eval("(equal? (list 1 2) (list 1 2))"), "#t");
    assert_eq!(eval("(equal? #(1 2) #(1 2))"), "#t");
    assert_eq!(eval("(eqv? 1.5 1.5)"), "#t");
    assert_eq!(eval("(not #f)"), "#t");
    assert_eq!(eval("(pair? '(1))"), "#t");
    assert_eq!(eval("(null? '())"), "#t");
    assert_eq!(eval("(symbol? 'x)"), "#t");
    assert_eq!(eval("(procedure? car)"), "#t");
    assert_eq!(eval("(procedure? (lambda (x) x))"), "#t");
}

#[test]
fn definitions_and_assignment() {
    assert_eq!(eval("(define x 10) (set! x (+ x 1)) x"), "11");
    assert_eq!(eval("(define (square n) (* n n)) (square 7)"), "49");
    assert_eq!(
        eval("(define (f a . rest) (cons a rest)) (f 1 2 3)"),
        "(1 2 3)"
    );
}

#[test]
fn lambdas_and_closures() {
    assert_eq!(eval("((lambda (x y) (+ x y)) 3 4)"), "7");
    assert_eq!(
        eval("(define (adder n) (lambda (m) (+ n m))) ((adder 10) 5)"),
        "15"
    );
    // Closures share mutable state through their environment.
    assert_eq!(
        eval(
            "(define (counter)
               (let ([n 0])
                 (lambda () (set! n (+ n 1)) n)))
             (define c (counter))
             (c) (c) (c)"
        ),
        "3"
    );
}

#[test]
fn case_lambda_as_in_the_papers_make_guardian() {
    assert_eq!(
        eval(
            "(define f (case-lambda
               [() 'none]
               [(x) x]
               [(x . rest) (cons x rest)]))
             (list (f) (f 1) (f 1 2 3))"
        ),
        "(none 1 (1 2 3))"
    );
}

#[test]
fn let_forms() {
    assert_eq!(eval("(let ([x 1] [y 2]) (+ x y))"), "3");
    assert_eq!(eval("(let* ([x 1] [y (+ x 1)]) (* x y))"), "2");
    assert_eq!(
        eval(
            "(letrec ([even? (lambda (n) (if (zero? n) #t (odd? (- n 1))))]
                       [odd? (lambda (n) (if (zero? n) #f (even? (- n 1))))])
               (even? 10))"
        ),
        "#t"
    );
    // Named let — the loop idiom Figure 1 depends on.
    assert_eq!(
        eval(
            "(let loop ([i 0] [acc '()])
               (if (= i 5) (reverse acc) (loop (+ i 1) (cons i acc))))"
        ),
        "(0 1 2 3 4)"
    );
    // let bindings do not see each other (unlike let*).
    assert_eq!(
        eval("(define x 'outer) (let ([x 'inner] [y x]) y)"),
        "outer"
    );
}

#[test]
fn conditionals() {
    assert_eq!(eval("(if #t 1 2)"), "1");
    assert_eq!(eval("(if #f 1 2)"), "2");
    assert_eq!(eval("(if #f 1)"), "#<void>");
    assert_eq!(eval("(if '() 'nil-is-true 'nope)"), "nil-is-true");
    assert_eq!(eval("(cond [#f 1] [(= 1 1) 2] [else 3])"), "2");
    assert_eq!(eval("(cond [#f 1] [else 3])"), "3");
    assert_eq!(eval("(cond [42])"), "42");
    assert_eq!(eval("(and 1 2 3)"), "3");
    assert_eq!(eval("(and 1 #f 3)"), "#f");
    assert_eq!(eval("(and)"), "#t");
    assert_eq!(eval("(or #f 2)"), "2");
    assert_eq!(eval("(or #f #f)"), "#f");
    assert_eq!(eval("(or)"), "#f");
    assert_eq!(eval("(when (= 1 1) 'a 'b)"), "b");
    assert_eq!(eval("(unless (= 1 1) 'a)"), "#<void>");
}

#[test]
fn proper_tail_calls_run_in_constant_stack() {
    // 100k iterations would blow the Rust stack without TCO.
    assert_eq!(
        eval("(let loop ([i 0]) (if (= i 100000) 'done (loop (+ i 1))))"),
        "done"
    );
    // Mutual recursion through tail position in `if`.
    assert_eq!(
        eval(
            "(define (ping n) (if (zero? n) 'ping (pong (- n 1))))
             (define (pong n) (if (zero? n) 'pong (ping (- n 1))))
             (ping 50001)"
        ),
        "pong"
    );
}

#[test]
fn lists_and_vectors() {
    assert_eq!(eval("(length '(a b c))"), "3");
    assert_eq!(eval("(append '(1 2) '(3) '())"), "(1 2 3)");
    assert_eq!(eval("(memq 'c '(a b c d))"), "(c d)");
    assert_eq!(eval("(assq 'b '((a . 1) (b . 2)))"), "(b . 2)");
    assert_eq!(eval("(remq 'b '(a b c b))"), "(a c)");
    assert_eq!(eval("(list-ref '(a b c) 1)"), "b");
    assert_eq!(
        eval("(define v (make-vector 3 0)) (vector-set! v 1 'x) v"),
        "#(0 x 0)"
    );
    assert_eq!(eval("(vector-length (vector 1 2 3))"), "3");
}

#[test]
fn strings_symbols_chars() {
    assert_eq!(eval("(string-append \"foo\" \"bar\")"), "\"foobar\"");
    assert_eq!(eval("(string-length \"hello\")"), "5");
    assert_eq!(eval("(substring \"hello\" 1 3)"), "\"el\"");
    assert_eq!(eval("(string=? \"a\" \"a\")"), "#t");
    assert_eq!(eval("(symbol->string 'abc)"), "\"abc\"");
    assert_eq!(eval("(eq? (string->symbol \"x\") 'x)"), "#t");
    assert_eq!(eval("(char->integer #\\a)"), "97");
    assert_eq!(eval("(integer->char 98)"), "#\\b");
    assert_eq!(eval("(eq? (gensym) (gensym))"), "#f");
}

#[test]
fn boxes() {
    assert_eq!(eval("(define b (box 1)) (set-box! b 2) (unbox b)"), "2");
}

#[test]
fn apply_and_error() {
    assert_eq!(eval("(apply + 1 2 '(3 4))"), "10");
    assert_eq!(eval("(apply car '((a b)))"), "a");
    let mut i = Interp::new();
    let e = i.eval_str("(error \"boom\" 1 2)").unwrap_err();
    assert!(e.to_string().contains("boom 1 2"), "got {e}");
}

#[test]
fn output_capture() {
    let mut i = Interp::new();
    i.eval_str("(display \"x = \") (write \"s\") (newline)")
        .unwrap();
    assert_eq!(i.take_output(), "x = \"s\"\n");
}

#[test]
fn error_reporting() {
    let mut i = Interp::new();
    for (src, needle) in [
        ("undefined-var", "unbound variable"),
        ("(car 5)", "not a pair"),
        ("((lambda (x) x))", "no matching clause"),
        ("(1 2)", "not a procedure"),
        ("(vector-ref (vector 1) 5)", "out of range"),
        ("(quotient 1 0)", "division by zero"),
        ("(set! nope 1)", "unbound"),
    ] {
        let e = i.eval_str(src).unwrap_err();
        assert!(e.to_string().contains(needle), "{src}: got {e}");
    }
    // The interpreter still works after errors.
    assert_eq!(i.eval_to_string("(+ 1 1)").unwrap(), "2");
}

#[test]
fn collections_during_evaluation_are_transparent() {
    // A tiny trigger forces many collections in the middle of evaluation;
    // all interpreter state must survive.
    let config = GcConfig {
        trigger_bytes: 16 * 1024,
        ..GcConfig::new()
    };
    let mut i = Interp::with_config(config);
    let result = i
        .eval_to_string(
            "(define (build n)
               (let loop ([i 0] [acc '()])
                 (if (= i n) acc (loop (+ i 1) (cons i acc)))))
             (define big (build 3000))
             (length big)",
        )
        .unwrap();
    assert_eq!(result, "3000");
    assert!(
        i.heap().collection_count() > 0,
        "collections really happened"
    );
    i.heap().verify().unwrap();
    // Data integrity after all those moves.
    assert_eq!(i.eval_to_string("(car big)").unwrap(), "2999");
    assert_eq!(i.eval_to_string("(list-ref big 2999)").unwrap(), "0");
}

#[test]
fn explicit_collect_and_introspection() {
    let mut i = Interp::new();
    assert_eq!(i.eval_to_string("(collection-count)").unwrap(), "0");
    i.eval_str("(collect)").unwrap();
    assert_eq!(i.eval_to_string("(collection-count)").unwrap(), "1");
    assert_eq!(
        i.eval_to_string("(define x (cons 1 2)) (collect 0) (generation-of x)")
            .unwrap(),
        "1"
    );
    assert!(i.eval_str("(collect 99)").is_err());
}

#[test]
fn deep_nontail_recursion_within_reason() {
    assert_eq!(
        eval("(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 300)"),
        "45150"
    );
}

#[test]
fn excessive_nontail_recursion_errors_cleanly() {
    let mut i = Interp::new();
    let e = i
        .eval_str("(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 100000)")
        .unwrap_err();
    assert!(e.to_string().contains("recursion too deep"), "got {e}");
    // Still usable afterwards.
    assert_eq!(i.eval_to_string("(+ 1 2)").unwrap(), "3");
}

#[test]
fn shadowing_and_scope() {
    assert_eq!(
        eval(
            "(define x 'global)
              (define (f) x)
              (let ([x 'local]) (f))"
        ),
        "global",
        "lexical, not dynamic, scope"
    );
    assert_eq!(eval("(define car 'shadowed) car"), "shadowed");
}

#[test]
fn staged_evaluator_attributes_allocation_sites() {
    let mut i = Interp::new();
    i.heap_mut().enable_site_profile();
    i.eval_str(
        "(define (build n acc)
           (if (zero? n) acc (build (- n 1) (cons n acc))))
         (build 50 '())
         (let ([v (make-vector 8 0)]) v)
         `(a ,(+ 1 2))",
    )
    .unwrap();
    let profile = i.heap_mut().take_site_profile();
    assert!(!profile.is_empty());
    let words_of = |name: &str| {
        profile
            .iter()
            .find(|(s, _)| *s == name)
            .map(|(_, st)| st.words)
            .unwrap_or(0)
    };
    // The conses happen while applying `cons`/`build`: App opcodes.
    assert!(words_of("scheme.app") >= 100, "{profile:?}");
    // `let` allocates its environment frame record.
    assert!(words_of("scheme.let") > 0, "{profile:?}");
    // The quasiquote walk conses the template skeleton.
    assert!(words_of("scheme.quasiquote") > 0, "{profile:?}");
    // Turned off again by take_site_profile: later evals attribute nothing.
    i.eval_str("(cons 1 2)").unwrap();
    assert!(i.heap_mut().take_site_profile().is_empty());
}

#[test]
fn vm_attributes_sites_and_counts_dispatches() {
    let mut i = Interp::with_interp_config(InterpConfig::vm());
    i.heap_mut().enable_site_profile();
    i.eval_str(
        "(define (build n acc)
           (if (zero? n) acc (build (- n 1) (cons n acc))))
         (build 50 '())
         (let ([v (make-vector 8 0)]) v)
         `(a ,(+ 1 2))",
    )
    .unwrap();
    let profile = i.heap_mut().take_site_profile();
    let words_of = |name: &str| {
        profile
            .iter()
            .find(|(s, _)| *s == name)
            .map(|(_, st)| st.words)
            .unwrap_or(0)
    };
    // Same attribution labels as the staged evaluator's `site_of`.
    assert!(words_of("scheme.app") >= 100, "{profile:?}");
    assert!(words_of("scheme.let") > 0, "{profile:?}");
    assert!(words_of("scheme.quasiquote") > 0, "{profile:?}");
    // The per-opcode dispatch counters land in the metrics registry
    // (only while the tracing flag is on; off by default).
    let json = i.heap_mut().metrics_json();
    assert!(json.contains("\"vm.dispatch.imm\""), "{json}");
    assert!(json.contains("\"vm.dispatch.jmp-if-false\""), "{json}");

    // Off by default: a fresh VM interp records no dispatch counters.
    let mut cold = Interp::with_interp_config(InterpConfig::vm());
    cold.eval_str("(+ 1 2)").unwrap();
    assert!(!cold.heap_mut().metrics_json().contains("vm.dispatch."));
}
