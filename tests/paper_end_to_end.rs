//! End-to-end integration: Scheme programs from the paper drive the
//! collector while Rust-side substrates (simulated OS) and counters
//! verify the externally visible effects.

use guardians::gc::GcConfig;
use guardians::scheme::Interp;

/// The full guarded-port story through the interpreter, with the OS
/// observed from outside.
#[test]
fn scheme_guarded_ports_with_os_observation() {
    let mut i = Interp::new();
    i.eval_str(
        r#"
(define port-guardian (make-guardian))
(define (close-dropped-ports)
  (let ([p (port-guardian)])
    (if p
        (begin
          (if (output-port? p)
              (begin (flush-output-port p) (close-output-port p))
              (close-input-port p))
          (close-dropped-ports))
        #f)))
(define (guarded-open-output-file pathname)
  (close-dropped-ports)
  (let ([p (open-output-file pathname)])
    (port-guardian p)
    p))
"#,
    )
    .unwrap();

    // Simulate many short-lived writers (each drops its port).
    i.eval_str(
        r#"
(define (writer n)
  (let ([p (guarded-open-output-file (string-append "/w" (number->string n)))])
    (write-string "payload" p)))
(let loop ([n 0])
  (if (= n 20)
      'done
      (begin
        (writer n)
        (when (= (remainder n 5) 4) (collect 3))
        (loop (+ n 1)))))
(collect 3)
(close-dropped-ports)
"#,
    )
    .unwrap();

    assert_eq!(i.os().open_count(), 0, "every dropped port was closed");
    for n in 0..20 {
        assert_eq!(
            i.os().file_contents(&format!("/w{n}")).unwrap(),
            b"payload",
            "writer {n}'s buffered data was flushed by clean-up"
        );
    }
    i.heap().verify().unwrap();
}

/// The interpreter itself is a guardian client: its data structures churn
/// across many collections while guardians fire, with a tiny trigger to
/// force collections at interpreter safe points too.
#[test]
fn guardians_fire_correctly_under_interpreter_churn() {
    let config = GcConfig {
        trigger_bytes: 32 * 1024,
        ..GcConfig::new()
    };
    let mut i = Interp::with_config(config);
    let result = i
        .eval_to_string(
            r#"
(define G (make-guardian))
(define registered 0)
(define retrieved 0)
;; Register 500 short-lived pairs while churning.
(let loop ([n 0])
  (if (= n 500)
      'ok
      (begin
        (G (cons n n))
        (set! registered (+ registered 1))
        ;; churn: transient garbage
        (let inner ([k 0] [acc '()])
          (if (= k 20) acc (inner (+ k 1) (cons k acc))))
        (loop (+ n 1)))))
(collect 3)
(collect 3)
;; Drain.
(let drain ()
  (let ([x (G)])
    (if x
        (begin (set! retrieved (+ retrieved 1)) (drain))
        #f)))
(list registered retrieved)
"#,
        )
        .unwrap();
    assert_eq!(
        result, "(500 500)",
        "every dead registered object came back exactly once"
    );
    assert!(i.heap().collection_count() >= 2);
    i.heap().verify().unwrap();
}

/// Figure 1's table and the printer's shared-structure client working
/// together on cyclic data — finalizable cycles being a headline claim.
#[test]
fn cyclic_structures_are_guarded_and_printable() {
    let mut i = Interp::new();
    let out = i
        .eval_to_string(
            r#"
(define G (make-guardian))
(define a (cons 'a #f))
(define b (cons 'b a))
(set-cdr! a b)        ; a <-> b cycle
(G a)
(G b)
(set! a #f)
(set! b #f)
(collect 3)
;; The program decides the order: process 'a-side first regardless of
;; which comes out when.
(define first (G))
(define second (G))
(list (car first) (car second) (eq? (cdr first) second))
"#,
        )
        .unwrap();
    // FIFO from one collection preserves registration order: a then b.
    assert_eq!(out, "(a b #t)");
    // And the cycle prints with labels rather than looping forever.
    let printed = i.eval_to_string("first").unwrap();
    assert!(
        printed.contains('#'),
        "cycle printed with datum labels: {printed}"
    );
}

/// Weak symbol table (Friedman–Wise) exercised from Scheme via gensyms:
/// the interpreter's own uninterned symbols die like any object.
#[test]
fn gensyms_die_interned_symbols_do_not() {
    let mut i = Interp::new();
    let out = i
        .eval_to_string(
            r#"
(define G (make-guardian))
(define kept 'permanent)
(G kept)              ; interned: never collected
(G (gensym))          ; uninterned and dropped: collected
(collect 3)
(collect 3)
(define got (G))
(list (symbol? got) (eq? got kept))
"#,
        )
        .unwrap();
    assert_eq!(
        out, "(#t #f)",
        "the gensym died; the interned symbol did not"
    );
}

/// The whole stack at once: ports + guardians + weak pairs + tables in
/// one program, with verification after every collection.
#[test]
fn kitchen_sink_program() {
    let config = GcConfig {
        trigger_bytes: 64 * 1024,
        ..GcConfig::new()
    };
    let mut i = Interp::with_config(config);
    i.os_mut().create_file("/input", b"abc");
    let out = i
        .eval_to_string(
            r#"
(define results '())
(define (note x) (set! results (cons x results)))

;; 1. weak pair over a dying object
(define w (weak-cons (cons 1 2) 'tail))
;; 2. a guardian watching a vector
(define G (make-guardian))
(G (make-vector 10 'v))
;; 3. buffered input
(define in (open-input-file "/input"))
(note (read-char in))
(note (read-char in))
(collect 3)
(note (if (eq? (car w) #f) 'weak-broken 'weak-alive))
(note (if (vector? (G)) 'guarded-returned 'guardian-empty))
(note (read-char in))
(close-input-port in)
(reverse results)
"#,
        )
        .unwrap();
    assert_eq!(out, "(#\\a #\\b weak-broken guarded-returned #\\c)");
    i.heap().verify().unwrap();
    assert_eq!(i.os().open_count(), 0);
}
