//! Cross-mechanism integration: guardians, the Dickey-baseline registry,
//! weak sets, weak hashing, and transport guardians observing the *same*
//! objects simultaneously — each mechanism must see exactly the behaviour
//! its contract promises, in one heap.

use guardians::baselines::{FinalizationRegistry, WeakHasher, WeakSet};
use guardians::gc::{Heap, Value};
use guardians::runtime::TransportGuardian;
use std::cell::Cell;
use std::rc::Rc;

#[test]
fn five_mechanisms_one_object() {
    let mut heap = Heap::default();
    let g = heap.make_guardian();
    let mut reg = FinalizationRegistry::new();
    let mut set = WeakSet::new(&mut heap);
    let mut hasher = WeakHasher::new(&mut heap);
    let tg = TransportGuardian::new(&mut heap);

    let obj = heap.cons(Value::fixnum(42), Value::NIL);
    let root = heap.root(obj);

    g.register(&mut heap, obj);
    let dickey_ran = Rc::new(Cell::new(false));
    let flag = Rc::clone(&dickey_ran);
    reg.register_for_finalization(&mut heap, obj, move |_| {
        flag.set(true);
        Ok(())
    });
    set.add(&mut heap, obj);
    let id = hasher.hash(&mut heap, obj);
    tg.register(&mut heap, obj);
    let w = heap.weak_cons(obj, Value::NIL);
    let wr = heap.root(w);

    // Phase 1: object alive and moving.
    heap.collect(0);
    heap.verify().unwrap();
    reg.run_pending(&mut heap);
    assert!(!dickey_ran.get(), "alive: no finalization");
    assert_eq!(g.poll(&mut heap), None, "alive: guardian silent");
    assert_eq!(
        set.members(&mut heap),
        vec![root.get()],
        "alive: in the weak set"
    );
    assert_eq!(
        hasher.unhash(&mut heap, id),
        Some(root.get()),
        "alive: unhash resolves"
    );
    assert_eq!(
        tg.poll(&mut heap),
        Some(root.get()),
        "it DID move: transport reports"
    );
    assert_eq!(heap.car(wr.get()), root.get(), "weak car forwarded");

    // Phase 2: drop it.
    drop(root);
    heap.collect(heap.config().max_generation());
    heap.verify().unwrap();

    // Guardians resurrect — and the guardian pass runs before everything
    // that breaks weak pointers, so every weak view still sees the
    // salvaged object.
    let saved = g.poll(&mut heap).expect("guardian saved it");
    assert_eq!(heap.car(saved), Value::fixnum(42));
    assert_eq!(
        heap.car(wr.get()),
        saved,
        "weak pair kept the salvaged object"
    );
    assert_eq!(set.members(&mut heap), vec![saved], "weak set too");
    assert_eq!(
        hasher.unhash(&mut heap, id),
        Some(saved),
        "weak hashing too"
    );
    reg.run_pending(&mut heap);
    assert!(
        !dickey_ran.get(),
        "guardian resurrection means Dickey sees it alive"
    );

    // Phase 3: drop the last reference (the guardian already delivered).
    heap.collect(heap.config().max_generation());
    heap.verify().unwrap();
    assert_eq!(g.poll(&mut heap), None);
    assert_eq!(
        heap.car(wr.get()),
        Value::FALSE,
        "now the weak pointer breaks"
    );
    assert!(set.members(&mut heap).is_empty());
    assert_eq!(hasher.unhash(&mut heap, id), None);
    reg.run_pending(&mut heap);
    assert!(dickey_ran.get(), "and the Dickey thunk finally fires");
}

#[test]
fn guardian_beats_dickey_on_error_handling() {
    // The same clean-up written both ways; the error surfaces only where
    // the paper says it can.
    let mut heap = Heap::default();

    // Dickey: the error is swallowed into the suppressed list.
    let mut reg = FinalizationRegistry::new();
    let a = heap.cons(Value::NIL, Value::NIL);
    reg.register_for_finalization(&mut heap, a, |_| Err("cleanup exploded".into()));
    heap.collect(heap.config().max_generation());
    reg.run_pending(&mut heap);
    assert_eq!(reg.suppressed_errors, vec!["cleanup exploded".to_string()]);

    // Guardian: the clean-up runs as ordinary code; the error is an
    // ordinary Result the caller handles where it chooses.
    let g = heap.make_guardian();
    let b = heap.cons(Value::NIL, Value::NIL);
    g.register(&mut heap, b);
    heap.collect(heap.config().max_generation());
    let outcome: Result<(), String> = match g.poll(&mut heap) {
        Some(_dead) => Err("cleanup exploded".into()),
        None => Ok(()),
    };
    assert_eq!(
        outcome.unwrap_err(),
        "cleanup exploded",
        "handled at program level"
    );
}

#[test]
#[should_panic(expected = "allocation is forbidden")]
fn dickey_thunks_cannot_allocate_but_guardian_cleanups_can() {
    let mut heap = Heap::default();
    // Guardian clean-up allocating: fine (this is the paper's selling
    // point; no restriction applies).
    let g = heap.make_guardian();
    let x = heap.cons(Value::NIL, Value::NIL);
    g.register(&mut heap, x);
    heap.collect(heap.config().max_generation());
    if g.poll(&mut heap).is_some() {
        let _report = heap.make_vector(64, Value::TRUE); // allocation OK
    }

    // Dickey thunk allocating: panics, demonstrating the restriction.
    // (FinalizationRegistry only hands the thunk &Heap; we simulate a
    // thunk smuggling mutable access by toggling the flag directly, which
    // is what the registry enforces around every thunk run.)
    heap.set_allocation_forbidden(true);
    let _ = heap.cons(Value::NIL, Value::NIL);
}

#[test]
fn transport_and_guardian_compose_on_the_same_object() {
    let mut heap = Heap::default();
    let g = heap.make_guardian();
    let tg = TransportGuardian::new(&mut heap);
    let obj = heap.cons(Value::fixnum(5), Value::NIL);
    let root = heap.root(obj);
    g.register(&mut heap, obj);
    tg.register(&mut heap, obj);

    // Move it twice while alive: transport reports each time.
    heap.collect(0);
    assert_eq!(tg.poll(&mut heap), Some(root.get()));
    heap.collect(1);
    assert_eq!(tg.poll(&mut heap), Some(root.get()));
    assert_eq!(g.poll(&mut heap), None);

    // Kill it: the guardian reports, transport goes silent.
    drop(root);
    heap.collect(heap.config().max_generation());
    let saved = g.poll(&mut heap).expect("guardian");
    assert_eq!(heap.car(saved), Value::fixnum(5));
    // The transport marker saw its referent die before resurrection...
    // conservatively it may or may not report once more; drain and verify
    // silence afterwards.
    let _ = tg.drain(&mut heap);
    heap.collect(heap.config().max_generation());
    heap.collect(heap.config().max_generation());
    assert_eq!(tg.poll(&mut heap), None);
    heap.verify().unwrap();
}
