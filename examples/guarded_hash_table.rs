//! Figure 1 as a library: a symbol-property table whose entries vanish
//! when their keys do, compared live against the weak-pairs-only table
//! the paper says "does not support removal of the values".
//!
//! Run with: `cargo run --example guarded_hash_table`

use guardians::gc::{Heap, Rooted, Value};
use guardians::runtime::hashtab::content_hash;
use guardians::runtime::{GuardedHashTable, WeakKeyTable};

fn main() {
    let mut heap = Heap::default();
    let mut guarded = GuardedHashTable::new(&mut heap, 64, content_hash);
    let mut weak_only = WeakKeyTable::new(&mut heap, 64, content_hash);

    println!("phase 1: interning 1000 session keys, keeping every tenth\n");
    // Each table gets its own key objects (sharing them would let the
    // guarded table's resurrections delay the weak table's breaks — a
    // real interaction, but not the one this example is about).
    let mut kept: Vec<Rooted> = Vec::new();
    let mut kept_weak: Vec<Rooted> = Vec::new();
    for i in 0..1000i64 {
        let value = Value::fixnum(i * 100);
        let key = heap.make_string(&format!("session-{i:04}"));
        guarded.access(&mut heap, key, value);
        let wkey = heap.make_string(&format!("session-{i:04}"));
        weak_only.access(&mut heap, wkey, value);
        if i % 10 == 0 {
            kept.push(heap.root(key)); // long-lived sessions
            kept_weak.push(heap.root(wkey));
        }
        // Periodic collections, as a real system would have.
        if i % 250 == 249 {
            heap.collect(heap.config().max_generation());
        }
    }
    heap.collect(heap.config().max_generation());

    // One access scrubs the guarded table.
    let probe = kept[0].get();
    assert_eq!(guarded.get(&mut heap, probe), Some(Value::fixnum(0)));

    println!(
        "guarded table   : {:>4} entries ({} clean-ups performed)",
        guarded.len(),
        guarded.removals
    );
    println!(
        "weak-only table : {:>4} entries physically present",
        weak_only.physical_len()
    );
    println!("live sessions   : {:>4}", kept.len());

    println!("\nphase 2: the weak-only table needs a full scan to catch up");
    let removed = weak_only.scrub_full_scan(&mut heap);
    println!(
        "full scan removed {removed} dead entries, touching {} entries to do it",
        weak_only.entries_scanned
    );
    println!(
        "(the guarded table touched exactly {} — one per dead key)",
        guarded.removals
    );

    // Correctness: every kept session still maps correctly in both.
    for (j, (r, rw)) in kept.iter().zip(&kept_weak).enumerate() {
        let expected = Some(Value::fixnum(j as i64 * 10 * 100));
        assert_eq!(guarded.get(&mut heap, r.get()), expected);
        assert_eq!(weak_only.get(&mut heap, rw.get()), expected);
    }
    heap.verify().expect("heap intact");
    println!("\nall live lookups verified; heap verified.");
}
