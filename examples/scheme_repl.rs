//! A minimal REPL over the embedded Scheme — try the paper's examples
//! interactively.
//!
//! Run with: `cargo run --example scheme_repl`
//!
//! ```text
//! guardians> (define G (make-guardian))
//! guardians> (define x (cons 'a 'b))
//! guardians> (G x)
//! guardians> (set! x #f)
//! guardians> (collect 3)
//! guardians> (G)
//! (a . b)
//! ```
//!
//! With `--dump-bytecode [FILE]` the driver compiles the source (FILE,
//! or stdin to EOF) through the bytecode tier and prints each form's
//! disassembly — insns, operands, resolved pool entries, source sites —
//! instead of evaluating it:
//!
//! ```text
//! $ echo '(define (f x) (+ x 1))' | cargo run --example scheme_repl -- --dump-bytecode
//! ;; form 0:
//!    0  make-closure 0            ; code[0] f  ; scheme.lambda
//!    ...
//! ```

use guardians::scheme::Interp;
use std::io::{self, BufRead, Read, Write};

fn main() {
    let mut interp = Interp::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--dump-bytecode") {
        let src = match args.get(1) {
            Some(path) => {
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
            }
            None => {
                let mut buf = String::new();
                io::stdin().read_to_string(&mut buf).expect("reading stdin");
                buf
            }
        };
        match interp.dump_bytecode(&src) {
            Ok(listing) => print!("{listing}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    } else if let Some(other) = args.first() {
        eprintln!("unknown argument {other:?} (supported: --dump-bytecode [FILE])");
        std::process::exit(2);
    }
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("guardians scheme — the PLDI'93 reproduction. Ctrl-D to exit.");
    println!("primitives include: make-guardian, weak-cons, collect, open-output-file, ...");
    loop {
        print!("guardians> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let src = line.trim();
        if src.is_empty() {
            continue;
        }
        match interp.eval_str(src) {
            Ok(v) => {
                let out = interp.take_output();
                if !out.is_empty() {
                    print!("{out}");
                }
                let shown = interp.write(v);
                if shown != "#<void>" {
                    println!("{shown}");
                }
            }
            Err(e) => println!("{e}"),
        }
    }
    println!();
}
