//! A minimal REPL over the embedded Scheme — try the paper's examples
//! interactively.
//!
//! Run with: `cargo run --example scheme_repl`
//!
//! ```text
//! guardians> (define G (make-guardian))
//! guardians> (define x (cons 'a 'b))
//! guardians> (G x)
//! guardians> (set! x #f)
//! guardians> (collect 3)
//! guardians> (G)
//! (a . b)
//! ```

use guardians::scheme::Interp;
use std::io::{self, BufRead, Write};

fn main() {
    let mut interp = Interp::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("guardians scheme — the PLDI'93 reproduction. Ctrl-D to exit.");
    println!("primitives include: make-guardian, weak-cons, collect, open-output-file, ...");
    loop {
        print!("guardians> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let src = line.trim();
        if src.is_empty() {
            continue;
        }
        match interp.eval_str(src) {
            Ok(v) => {
                let out = interp.take_output();
                if !out.is_empty() {
                    print!("{out}");
                }
                let shown = interp.write(v);
                if shown != "#<void>" {
                    println!("{shown}");
                }
            }
            Err(e) => println!("{e}"),
        }
    }
    println!();
}
