//! Transport guardians in action (paper Section 3): an eq hash table that
//! rehashes only the keys a conservative transport guardian reports as
//! moved, compared with the classic rehash-everything-after-GC policy.
//!
//! Run with: `cargo run --example transport_rehash`

use guardians::gc::{Heap, Rooted, Value};
use guardians::runtime::{EqHashTable, TransportEqHashTable};

fn main() {
    let mut heap = Heap::default();
    const N: usize = 5_000;

    println!("building two eq tables of {N} pair keys each\n");
    let mut classic = EqHashTable::new(&mut heap, 512);
    let mut transport = TransportEqHashTable::new(&mut heap, 512);
    let mut keys: Vec<Rooted> = Vec::with_capacity(N);
    for i in 0..N {
        let k = heap.cons(Value::fixnum(i as i64), Value::NIL);
        keys.push(heap.root(k));
        classic.insert(&mut heap, k, Value::fixnum(i as i64));
        transport.insert(&mut heap, k, Value::fixnum(i as i64));
    }

    // Let everything age into an old generation (both tables settle).
    println!("aging the keys into generation 2...");
    heap.collect(0);
    let _ = classic.get(&mut heap, keys[0].get());
    let _ = transport.get(&mut heap, keys[0].get());
    heap.collect(1);
    let _ = classic.get(&mut heap, keys[0].get());
    let _ = transport.get(&mut heap, keys[0].get());
    heap.collect(1);
    let _ = classic.get(&mut heap, keys[0].get());
    let _ = transport.get(&mut heap, keys[0].get());
    let classic_settled = classic.entries_rehashed;
    let transport_settled = transport.entries_rehashed;

    // Young collections with unrelated churn: the keys never move again.
    println!("running 10 young collections with fresh churn...\n");
    for round in 0..10 {
        for _ in 0..2_000 {
            let _ = heap.cons(Value::NIL, Value::NIL);
        }
        heap.collect(0);
        let probe = keys[round * 37 % N].get();
        assert!(classic.get(&mut heap, probe).is_some());
        assert!(transport.get(&mut heap, probe).is_some());
    }

    let classic_work = classic.entries_rehashed - classic_settled;
    let transport_work = transport.entries_rehashed - transport_settled;
    println!("entries re-bucketed during the young-collection phase:");
    println!("  classic rehash-after-GC : {classic_work:>8}  (N × collections)");
    println!("  transport guardian      : {transport_work:>8}  (nothing moved, nothing touched)");

    // Correctness: every key still resolves in both tables.
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(
            classic.get(&mut heap, k.get()),
            Some(Value::fixnum(i as i64))
        );
        assert_eq!(
            transport.get(&mut heap, k.get()),
            Some(Value::fixnum(i as i64))
        );
    }
    heap.verify().expect("heap intact");
    println!("\nall {N} keys verified in both tables; heap verified.");
    assert_eq!(transport_work, 0);
    assert!(classic_work >= (N * 10) as u64);
}
