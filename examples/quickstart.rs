//! Quickstart: the guardian mechanism in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use guardians::gc::{Heap, Value};
use guardians::runtime::printer::write_value;

fn main() {
    let mut heap = Heap::default();

    // The paper's Section 3 session, as Rust:
    //
    // > (define G (make-guardian))
    let g = heap.make_guardian();

    // > (define x (cons 'a 'b))
    let a = heap.make_symbol("a");
    let b = heap.make_symbol("b");
    let x = heap.cons(a, b);
    let x_binding = heap.root(x); // the "x" binding

    // > (G x)
    g.register(&mut heap, x);
    println!("registered {} with the guardian", write_value(&heap, x));

    // > (G)  =>  #f — still accessible through the binding.
    heap.collect(heap.config().max_generation());
    println!("while accessible, (G) => {:?}", g.poll(&mut heap));

    // > (set! x #f) — drop the only reference.
    x_binding.set(Value::FALSE);

    // After a collection proves the pair inaccessible, the guardian
    // yields it back — intact, "saved from destruction".
    heap.collect(heap.config().max_generation());
    let saved = g.poll(&mut heap).expect("proven inaccessible");
    println!("after dropping it, (G) => {}", write_value(&heap, saved));

    // The retrieved object has no special status: use it, re-register it.
    let recycled = heap.make_symbol("recycled");
    heap.set_car(saved, recycled);
    g.register(&mut heap, saved);
    heap.collect(heap.config().max_generation());
    let again = g.poll(&mut heap).expect("second life, second death");
    println!(
        "re-registered and re-retrieved: {}",
        write_value(&heap, again)
    );

    // Weak pairs: the complementary mechanism.
    let obj = heap.cons(Value::fixnum(1), Value::fixnum(2));
    let weak = heap.weak_cons(obj, Value::NIL);
    let weak_root = heap.root(weak);
    println!(
        "\nweak pair before collection: {}",
        write_value(&heap, weak_root.get())
    );
    heap.collect(heap.config().max_generation());
    println!(
        "weak pair after its referent died: {}",
        write_value(&heap, weak_root.get())
    );

    let report = heap.last_report().unwrap();
    println!(
        "\nlast collection: gen {} -> gen {}, {} words copied, {} guardian entries visited",
        report.collected_generation,
        report.target_generation,
        report.words_copied,
        report.guardian_entries_visited
    );
}
