//! External-resource clean-up with agents (paper Sections 1 and 5):
//! Scheme-side headers own `malloc`ed blocks; dropping a header frees its
//! block, and the Section 5 *agent* interface means the header itself is
//! never resurrected — only the block id survives.
//!
//! Run with: `cargo run --example external_resources`

use guardians::gc::{Heap, Value};
use guardians::runtime::GuardedArena;

fn main() {
    let mut heap = Heap::default();
    let mut arena = GuardedArena::new(&mut heap);

    // A burst of external allocations, most of them transient.
    println!("allocating 500 external blocks; keeping 20 handles\n");
    let mut kept = Vec::new();
    for i in 0..500 {
        let header = arena.alloc(&mut heap, 256 + i % 64);
        if i % 25 == 0 {
            kept.push(heap.root(header));
        }
    }
    println!(
        "live external blocks before clean-up: {}",
        arena.arena.live_blocks()
    );
    println!(
        "external bytes held:                  {}",
        arena.arena.live_bytes()
    );

    heap.collect(heap.config().max_generation());
    let freed = arena.free_dropped(&mut heap).expect("clean-up");
    println!("\nclean-up freed {freed} blocks");
    println!(
        "live external blocks after clean-up:  {}",
        arena.arena.live_blocks()
    );
    assert_eq!(arena.arena.live_blocks(), kept.len());

    // Kept handles still resolve to live blocks.
    for r in &kept {
        let id = arena.block_of(&heap, r.get());
        assert!(arena.arena.is_live(id));
    }
    println!("all {} kept handles still own live blocks", kept.len());

    // Show the Section 5 point: a weak pointer proves the header itself
    // was reclaimed even though its clean-up ran.
    let header = arena.alloc(&mut heap, 1024);
    let witness = heap.weak_cons(header, Value::NIL);
    let witness_root = heap.root(witness);
    heap.collect(heap.config().max_generation());
    arena.free_dropped(&mut heap).expect("clean-up");
    let broken = heap.car(witness_root.get()).is_false();
    println!(
        "\nagent-registered header reclaimed (weak pointer broken): {broken}\n\
         total allocs {} / frees {} — no leaks",
        arena.arena.total_allocs, arena.arena.total_frees
    );
    assert!(broken);
    assert_eq!(
        arena.arena.total_allocs - arena.arena.total_frees,
        kept.len() as u64
    );
}
