//! Runs the paper's Section 3 Scheme transcripts, verbatim, on the
//! embedded interpreter — printing each interaction as a REPL session.
//!
//! Run with: `cargo run --example paper_session`

use guardians::scheme::Interp;

fn session(interp: &mut Interp, title: &str, interactions: &[&str]) {
    println!(";;; {title}");
    for src in interactions {
        match interp.eval_str(src) {
            Ok(v) => {
                let shown = interp.write(v);
                if shown == "#<void>" {
                    println!("> {src}");
                } else {
                    println!("> {src}\n{shown}");
                }
            }
            Err(e) => println!("> {src}\nerror: {e}"),
        }
        let output = interp.take_output();
        if !output.is_empty() {
            print!("{output}");
        }
    }
    println!();
}

fn main() {
    let mut interp = Interp::new();

    session(
        &mut interp,
        "Section 3, basic registration and retrieval",
        &[
            "(define G (make-guardian))",
            "(define x (cons 'a 'b))",
            "(G x)",
            "(G)",
            "(set! x #f)",
            "(collect 3)",
            "(G)",
            "(G)",
        ],
    );

    session(
        &mut interp,
        "Section 3, multiple registration",
        &[
            "(define G (make-guardian))",
            "(define x (cons 'a 'b))",
            "(G x)",
            "(G x)",
            "(set! x #f)",
            "(collect 3)",
            "(G)",
            "(G)",
        ],
    );

    session(
        &mut interp,
        "Section 3, two guardians",
        &[
            "(define G (make-guardian))",
            "(define H (make-guardian))",
            "(define x (cons 'a 'b))",
            "(G x)",
            "(H x)",
            "(set! x #f)",
            "(collect 3)",
            "(G)",
            "(H)",
        ],
    );

    session(
        &mut interp,
        "Section 3, a guardian registered with another guardian",
        &[
            "(define G (make-guardian))",
            "(define H (make-guardian))",
            "(define x (cons 'a 'b))",
            "(G H)",
            "(H x)",
            "(set! x #f)",
            "(set! H #f)",
            "(collect 3)",
            "((G))",
        ],
    );

    session(
        &mut interp,
        "Section 5, the agent generalisation",
        &[
            "(define G (make-guardian))",
            "(define x (cons 'resource 7))",
            "(G x (cdr x))",
            "(set! x #f)",
            "(collect 3)",
            "(G)",
        ],
    );

    println!(
        ";;; heap after the sessions: {} collections, {} registrations",
        interp.heap().collection_count(),
        interp.heap().stats().guardian_registrations
    );
    interp.heap().verify().expect("heap intact");
}
