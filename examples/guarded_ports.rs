//! The paper's motivating example: ports that flush and close themselves
//! after being dropped — "because of exceptions and nonlocal exits, a
//! port may not be closed explicitly by a user program before the last
//! reference to it is dropped."
//!
//! Run with: `cargo run --example guarded_ports`

use guardians::gc::Heap;
use guardians::runtime::{ports, GuardedPorts, SimOs};

/// A "web request handler" that writes a log line and then fails before
/// reaching its close call — the nonlocal exit of the paper's story.
fn flaky_handler(
    heap: &mut Heap,
    os: &mut SimOs,
    gp: &mut GuardedPorts,
    request: usize,
) -> Result<(), String> {
    let port = gp
        .open_output(heap, os, &format!("/logs/request-{request}"))
        .map_err(|e| e.to_string())?;
    ports::write_string(heap, os, port, &format!("handling request {request}... "))
        .map_err(|e| e.to_string())?;
    if request.is_multiple_of(3) {
        // The handler aborts: `port` is dropped, open and unflushed.
        return Err(format!("request {request} exploded"));
    }
    ports::write_string(heap, os, port, "ok").map_err(|e| e.to_string())?;
    ports::close_port(heap, os, port).map_err(|e| e.to_string())?;
    Ok(())
}

fn main() {
    let mut heap = Heap::default();
    let mut os = SimOs::with_fd_limit(8);
    let mut gp = GuardedPorts::new(&mut heap);

    let mut failures = 0;
    for request in 0..30 {
        // Pretend the allocator crossed its threshold now and then.
        if request % 5 == 4 {
            heap.collect(heap.config().max_generation());
        }
        if let Err(e) = flaky_handler(&mut heap, &mut os, &mut gp, request) {
            failures += 1;
            eprintln!("  handler error: {e}");
        }
    }

    println!("\n30 requests handled, {failures} aborted mid-flight");
    println!("open descriptors before exit: {}", os.open_count());
    let closed = gp.exit(&mut heap, &mut os).expect("clean exit");
    println!("guarded-exit closed {closed} dropped ports");
    println!("open descriptors after exit:  {}", os.open_count());
    println!(
        "bytes rescued from dropped buffers: {} (ports closed by clean-up in total: {})",
        gp.bytes_rescued, gp.dropped_closed
    );

    // Every aborted request's partial log line survived thanks to the
    // flush performed by close-dropped-ports:
    let sample = os.file_contents("/logs/request-3").expect("file exists");
    println!(
        "\ncontents of an aborted request's log: {:?}",
        String::from_utf8_lossy(sample)
    );
    assert_eq!(os.open_count(), 0);
    assert_eq!(
        os.stats().rejected_opens,
        0,
        "never hit the descriptor limit"
    );
}
