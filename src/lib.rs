//! Umbrella crate for the reproduction of *Guardians in a Generation-Based
//! Garbage Collector* (Dybvig, Bruggeman, Eby — PLDI 1993).
//!
//! This crate re-exports the workspace members so the examples and
//! integration tests can use a single dependency. See the individual crates
//! for the real APIs:
//!
//! * [`gc`] — the collector, heap, values, guardians, and weak pairs.
//! * [`runtime`] — ports, hash tables, transport guardians, object pools,
//!   and the simulated OS / external-memory substrates.
//! * [`scheme`] — an embedded Scheme interpreter running on the collected
//!   heap, able to execute the paper's examples verbatim.
//! * [`baselines`] — the Background-section mechanisms used as comparison
//!   points (weak sets, weak hashing, collector-invoked finalizers,
//!   indirection headers).
//! * [`workloads`] — deterministic workload generators for the benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use guardians::gc::{Heap, Value};
//!
//! let mut heap = Heap::default();
//! let guardian = heap.make_guardian();
//! let pair = heap.cons(Value::fixnum(1), Value::fixnum(2));
//! guardian.register(&mut heap, pair);
//! // `pair` is not rooted, so a collection proves it inaccessible:
//! heap.collect(0);
//! let saved = guardian.poll(&mut heap).expect("pair was saved for us");
//! assert_eq!(heap.car(saved), Value::fixnum(1));
//! ```

pub use guardians_baselines as baselines;
pub use guardians_gc as gc;
pub use guardians_runtime as runtime;
pub use guardians_scheme as scheme;
pub use guardians_segments as segments;
pub use guardians_workloads as workloads;
