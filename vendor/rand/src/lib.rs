//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *small* slice of the
//! `rand 0.8` API it actually uses: [`rngs::SmallRng`] (here a
//! xoshiro256++ generator seeded with splitmix64), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen` / `gen_range` for the primitive
//! types the workloads sample.
//!
//! The streams are deterministic and stable across builds — which is all
//! the workload generators require — but they are **not** bit-compatible
//! with the real `rand` crate.

#![warn(missing_docs)]

use core::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly sampled value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is irrelevant at workload scale.
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * f64::sample(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let n = r.gen_range(0usize..17);
            assert!(n < 17);
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn uniform_f64_covers_the_unit_interval() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut low = 0;
        for _ in 0..1000 {
            if r.gen_range(0.0f64..1.0) < 0.5 {
                low += 1;
            }
        }
        assert!((350..650).contains(&low), "got {low}");
    }
}
