//! Deterministic RNG and run configuration for the stub runner.

/// Run configuration, mirroring the `proptest` fields this workspace sets.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection sampling is not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A splitmix64 stream, seeded from the test's name so every test draws an
/// independent, stable sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let mut c = TestRng::deterministic("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
