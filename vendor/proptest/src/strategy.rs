//! Value-generation strategies: the composable core of the stub.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Object-safe: combinators that consume `self` carry `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!` to mix arm types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// The `prop_map` combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always producing a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed alternatives (see `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds the choice from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered the whole range")
    }
}

/// The `any::<T>()` whole-domain strategy.
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a whole-domain generator, for [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // A mix of ordinary unit-interval values and interesting extremes.
        match rng.next_u64() % 8 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (unit - 0.5) * 2e9
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            // Bias toward ASCII half the time; otherwise any scalar value.
            let raw = if rng.next_u64() & 1 == 0 {
                rng.next_u64() % 0x80
            } else {
                rng.next_u64() % 0x11_0000
            };
            if let Some(c) = char::from_u32(raw as u32) {
                return c;
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

// ---------------------------------------------------------------------
// Regex-literal string strategies (the subset the workspace uses)
// ---------------------------------------------------------------------

/// One parsed pattern element: an atom plus a repetition count range.
#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

#[derive(Clone, Debug)]
enum Atom {
    /// `.` — any scalar value except newline-ish controls.
    Dot,
    /// `[a-z...]` — alternatives collected from the class.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("unterminated class range");
                            ranges.push((lo, hi));
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                ranges.push((p, p));
                            }
                        }
                        None => panic!("unterminated character class in {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Lit(chars.next().expect("dangling escape")),
            other => Atom::Lit(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for ch in chars.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition min"),
                    hi.trim().parse().expect("bad repetition max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else if chars.peek() == Some(&'*') {
            chars.next();
            (0, 8)
        } else if chars.peek() == Some(&'+') {
            chars.next();
            (1, 8)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Dot => loop {
            let raw = if rng.next_u64() & 1 == 0 {
                0x20 + rng.next_u64() % 0x5F
            } else {
                rng.next_u64() % 0x11_0000
            };
            if let Some(c) = char::from_u32(raw as u32) {
                if c != '\n' && c != '\r' {
                    return c;
                }
            }
        },
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + (rng.next_u64() % span as u64) as u32)
                .expect("class ranges stay inside valid scalars")
        }
    }
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                out.push(gen_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate("[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(".{0,200}", &mut rng);
            assert!(t.chars().count() <= 200);
            let lit = Strategy::generate("ab{2}c", &mut rng);
            assert_eq!(lit, "abbc");
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s: OneOf<u8> = OneOf::new(vec![(9, boxed(Just(0u8))), (1, boxed(Just(1u8)))]);
        let mut rng = TestRng::deterministic("weights");
        let ones: u32 = (0..1000).map(|_| s.generate(&mut rng) as u32).sum();
        assert!(ones < 250, "weight-1 arm fired {ones}/1000 times");
    }
}
