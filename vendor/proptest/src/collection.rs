//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A size specification for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// A strategy generating `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below(self.size.max - self.size.min);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_the_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let s = vec(any::<u8>(), 3usize);
        let mut rng = TestRng::deterministic("vec3");
        assert_eq!(s.generate(&mut rng).len(), 3);
    }
}
