//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the slice of proptest it uses: the [`Strategy`]
//! trait with `prop_map`, range / tuple / [`Just`] / `any::<T>()` /
//! weighted-`prop_oneof!` / `collection::vec` / regex-literal strategies,
//! the [`proptest!`] test macro with `#![proptest_config]`, and the
//! `prop_assert*` macros.
//!
//! Inputs are generated from a deterministic per-test RNG (seeded from the
//! test's name), so failures are reproducible run-to-run. **Shrinking is
//! not implemented** — a failing case panics with the generated input's
//! `Debug` form instead of a minimised one.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Builds a strategy choosing among several alternatives, optionally
/// weighted (`weight => strategy`). All arms must produce the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])+
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = || $body;
                    // One closure call per case keeps `return`-free bodies
                    // from aborting the whole loop.
                    let _ = case;
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tiny() -> impl Strategy<Value = u8> {
        prop_oneof![3 => 0u8..10, 1 => 200u8..255]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in any::<u16>()) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
        }

        #[test]
        fn maps_and_vecs_compose(
            v in crate::collection::vec(tiny().prop_map(|x| x as u32 + 1), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x >= 1));
        }

        #[test]
        fn regex_lite_strings(s in "[a-z]{1,10}", t in ".{0,200}") {
            prop_assert!(!s.is_empty() && s.len() <= 10);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 200);
        }

        #[test]
        fn tuples_and_just(pair in (0u8..4, Just(7i64))) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1, 7);
        }
    }
}
