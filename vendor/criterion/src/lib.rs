//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the benchmarking surface it uses: `Criterion`,
//! `benchmark_group` with `warm_up_time` / `measurement_time` /
//! `sample_size`, `bench_function`, `Bencher::iter` / `iter_batched`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine, each benchmark runs a small
//! bounded number of iterations and prints the mean wall-clock time — fast
//! enough for CI smoke runs, stable enough to spot order-of-magnitude
//! regressions. Honouring `--bench`-style CLI filters is out of scope.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped; accepted for API compatibility.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for compatibility with generated mains; a no-op.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let id = id.into();
        run_one(&id, 10, f);
        self
    }

    /// Accepted for compatibility; a no-op in the stub.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub always warms up one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub runs a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one benchmark closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size.min(10), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // One warm-up pass, then the measured passes.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let mean = if iters > 0 {
        total / iters as u32
    } else {
        Duration::ZERO
    };
    println!("{id:<60} time: {mean:>12.3?}   ({iters} iterations, stub-criterion)");
}

/// Runs the timed closure(s) for one measurement sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// An identity function the optimiser must assume reads its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a set of benchmark functions as a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group
            .sample_size(3)
            .bench_function("direct", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("top", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs > 0);
    }
}
