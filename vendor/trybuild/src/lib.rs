//! Offline stand-in for the `trybuild` compile-fail test harness.
//!
//! The real trybuild builds a scratch cargo project per UI test; with no
//! registry access this stand-in drives `rustc` directly instead,
//! resolving `--extern` crates against the rlibs cargo already built for
//! the host test binary (they live next to the binary, in
//! `target/<profile>/deps`). Each `*.rs` case declares its expected
//! diagnostics as `//~ ERROR <substring>` lines; the case passes when
//! compilation *fails* and stderr contains every declared substring.
//!
//! API shape follows trybuild (`TestCases::new().compile_fail(glob)`,
//! run-on-drop) with one addition: [`TestCases::extern_crate`] names the
//! crates the cases link against, which the real harness infers from the
//! host manifest.
//!
//! Caveat: the newest rlib per crate name wins. After toolchain or
//! feature changes a stale `target/` can leave mismatched metadata; the
//! resulting E0460-style diagnostics will not match any expected
//! substring and the case fails loudly — `cargo clean` resolves it.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A batch of compile-fail cases, executed on drop (as in trybuild).
#[derive(Default)]
pub struct TestCases {
    externs: Vec<String>,
    cases: Vec<PathBuf>,
    ran: bool,
}

impl TestCases {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> TestCases {
        TestCases::default()
    }

    /// Adds a crate (by its lib name, underscores) to `--extern` for
    /// every case.
    pub fn extern_crate(&mut self, name: &str) -> &mut TestCases {
        self.externs.push(name.to_owned());
        self
    }

    /// Adds every `.rs` file matching `glob` (a literal path, a
    /// directory, or a single-`*` pattern like `tests/ui/*.rs`),
    /// relative to `CARGO_MANIFEST_DIR`.
    pub fn compile_fail(&mut self, glob: &str) -> &mut TestCases {
        let base = std::env::var_os("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let pattern = base.join(glob);
        let mut matched = expand(&pattern);
        matched.sort();
        assert!(
            !matched.is_empty(),
            "no UI test cases match {}",
            pattern.display()
        );
        self.cases.extend(matched);
        self
    }

    /// Runs the batch now instead of on drop.
    pub fn run(&mut self) {
        self.ran = true;
        let deps = deps_dir();
        let mut failures = Vec::new();
        for case in &self.cases {
            if let Err(msg) = run_case(case, &self.externs, &deps) {
                failures.push(msg);
            }
        }
        assert!(
            failures.is_empty(),
            "{} of {} UI cases failed:\n\n{}",
            failures.len(),
            self.cases.len(),
            failures.join("\n\n")
        );
    }
}

impl Drop for TestCases {
    fn drop(&mut self) {
        if !self.ran && !std::thread::panicking() {
            self.run();
        }
    }
}

/// Expands the supported pattern forms into concrete `.rs` paths.
fn expand(pattern: &Path) -> Vec<PathBuf> {
    let s = pattern.to_string_lossy();
    if !s.contains('*') {
        if pattern.is_dir() {
            return list_rs(pattern);
        }
        return vec![pattern.to_path_buf()];
    }
    let dir = pattern.parent().expect("pattern has a parent dir");
    let file = pattern
        .file_name()
        .expect("pattern has a file part")
        .to_string_lossy();
    let (prefix, suffix) = file.split_once('*').expect("single-star pattern");
    list_rs(dir)
        .into_iter()
        .filter(|p| {
            let name = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            name.starts_with(prefix) && name.ends_with(suffix)
        })
        .collect()
}

fn list_rs(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out
}

/// The directory holding the host test binary's dependency rlibs.
fn deps_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    let dir = exe.parent().expect("test binary dir");
    // Integration test binaries live in `deps/` directly; doctest-style
    // layouts put the binary one level up.
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.to_path_buf()
    } else {
        dir.join("deps")
    }
}

/// Newest rlib for `crate_name` in `deps`, if any.
fn find_rlib(deps: &Path, crate_name: &str) -> Option<PathBuf> {
    let prefix = format!("lib{crate_name}-");
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for e in fs::read_dir(deps).ok()?.flatten() {
        let p = e.path();
        let name = p.file_name()?.to_string_lossy().into_owned();
        if !name.starts_with(&prefix) || !name.ends_with(".rlib") {
            continue;
        }
        let mtime = e.metadata().and_then(|m| m.modified()).ok()?;
        if best.as_ref().is_none_or(|(t, _)| mtime > *t) {
            best = Some((mtime, p));
        }
    }
    best.map(|(_, p)| p)
}

/// `//~ ERROR <substring>` annotations in a case source.
fn expected_errors(src: &str) -> Vec<String> {
    src.lines()
        .filter_map(|l| l.split("//~ ERROR").nth(1))
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

fn run_case(case: &Path, externs: &[String], deps: &Path) -> Result<(), String> {
    let src =
        fs::read_to_string(case).map_err(|e| format!("{}: unreadable: {e}", case.display()))?;
    let expected = expected_errors(&src);
    if expected.is_empty() {
        return Err(format!(
            "{}: no `//~ ERROR <substring>` annotations — a compile-fail case must document why it fails",
            case.display()
        ));
    }

    let stem = case
        .file_stem()
        .unwrap_or_default()
        .to_string_lossy()
        .into_owned();
    let out_dir =
        std::env::temp_dir().join(format!("guardians-trybuild-{}-{stem}", std::process::id()));
    let _ = fs::create_dir_all(&out_dir);

    let rustc = std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into());
    let mut cmd = Command::new(rustc);
    cmd.arg("--edition=2021")
        .arg("--emit=metadata")
        .arg("--crate-name")
        .arg(format!("uitest_{stem}"))
        .arg(case)
        .arg("--out-dir")
        .arg(&out_dir)
        .arg("-L")
        .arg(format!("dependency={}", deps.display()));
    for name in externs {
        let rlib = find_rlib(deps, name).ok_or_else(|| {
            format!(
                "{}: no rlib for `{name}` under {} — build the workspace first",
                case.display(),
                deps.display()
            )
        })?;
        cmd.arg("--extern")
            .arg(format!("{name}={}", rlib.display()));
    }

    let output = cmd
        .output()
        .map_err(|e| format!("{}: rustc failed to spawn: {e}", case.display()))?;
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    let _ = fs::remove_dir_all(&out_dir);

    if output.status.success() {
        return Err(format!(
            "{}: expected a compile failure, but it compiled cleanly",
            case.display()
        ));
    }
    let missing: Vec<&String> = expected
        .iter()
        .filter(|e| !stderr.contains(e.as_str()))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "{}: compile failed, but not for the documented reason.\nmissing substrings: {missing:?}\n--- rustc stderr ---\n{stderr}",
            case.display()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_parse() {
        let src =
            "fn main() {} //~ ERROR E0502\n// plain comment\nlet x; //~ ERROR cannot borrow\n";
        assert_eq!(
            expected_errors(src),
            vec!["E0502".to_owned(), "cannot borrow".to_owned()]
        );
    }

    #[test]
    fn star_patterns_filter_by_affixes() {
        let dir = std::env::temp_dir().join(format!("trybuild-glob-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        fs::write(dir.join("a_case.rs"), "").unwrap();
        fs::write(dir.join("notes.txt"), "").unwrap();
        let hits = expand(&dir.join("*.rs"));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].ends_with("a_case.rs"));
        let _ = fs::remove_dir_all(&dir);
    }
}
